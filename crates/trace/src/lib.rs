//! Per-rank structured tracing for the BaGuaLu reproduction.
//!
//! Every scaling table ultimately answers "where does the step time go";
//! this crate is the single source of truth for that question. It provides
//! **nestable spans** (`forward`, `backward`, `grad_sync`, `a2a_dispatch`,
//! `a2a_combine`, `checkpoint`, `recovery`, …) and **monotonic counters**
//! (bytes/messages per collective family, ring-allreduce progress, fault
//! drops, restarts), recorded into a fixed-capacity **per-rank ring
//! buffer** with negligible overhead when tracing is disabled (one relaxed
//! atomic load per call site).
//!
//! Key types and data flow:
//!
//! * [`TraceCollector`] — created by the driver (one per training run);
//!   each rank thread calls [`TraceCollector::install`] so the thread-local
//!   [`span`]/[`count`] free functions record into that rank's lane,
//! * [`span`] — RAII guard marking a nested phase; [`count`] — add to a
//!   named monotonic counter,
//! * [`Trace`] — the merged result ([`TraceCollector::finish`]): per-rank
//!   event logs plus analysis helpers ([`Trace::counter_total`],
//!   [`Trace::span_total_ns`], [`Trace::overlap_fraction`]),
//! * [`chrome`] — export as Chrome trace-event JSON (loadable in
//!   `chrome://tracing` / Perfetto) and as a per-rank text summary table.
//!
//! Upstream, `bagualu-comm` counts transport traffic, `bagualu-parallel`
//! marks the MoE all-to-all and the overlapped gradient sync, and the
//! `bagualu` trainer marks step phases and recovery; downstream, the CLI's
//! `--trace` flag and experiment E23 consume the export. See
//! `docs/OBSERVABILITY.md` for the span/counter taxonomy.

#![warn(missing_docs)]

pub mod chrome;
pub mod names;
pub mod ring;
pub mod straggler;
pub mod trace;
pub mod tracer;

pub use ring::Ring;
pub use straggler::StragglerDetector;
pub use trace::{Event, EventKind, RankTrace, Trace};
pub use tracer::{count, enabled, span, InstallGuard, SpanGuard, TraceCollector, DRIVER_LANE};
