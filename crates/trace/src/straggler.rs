//! Online straggler detection from per-rank timing samples.
//!
//! At BaGuaLu's target scale a rank that has slowed down — thermal
//! throttling, a degraded NIC, a noisy neighbor — is far more common than
//! a rank that has died, and under lockstep collectives one sick rank sets
//! the pace for all of them. The [`StragglerDetector`] consumes one timing
//! sample per rank per step (the trainer feeds it the all-reduced
//! send-occupancy deltas from `Communicator::send_occupancy_ns`) and flags
//! a rank whose windowed mean exceeds a robust, median-based threshold.
//!
//! The detector is **pure and deterministic**: its verdict is a function of
//! the samples fed to it, nothing else. Every rank feeds it the same
//! all-reduced sample vectors, so every rank reaches the same verdict on
//! the same step with no extra coordination — the same trick the
//! collectives themselves rely on.
//!
//! Why a median and not a mean: with one straggler among R ranks the mean
//! is dragged toward the straggler, shrinking the very gap being tested.
//! The median of per-rank windowed means is unaffected by a minority of
//! sick ranks (up to ⌊(R−1)/2⌋ of them), so the threshold
//! `factor × median` stays anchored to healthy behavior.

use std::collections::VecDeque;

/// Robust median-based straggler detector over per-rank timing samples.
///
/// Feed it one `f64` sample per rank per step via
/// [`StragglerDetector::observe`]; it answers with the flagged rank once a
/// rank's windowed mean exceeds `factor ×` the median of all ranks'
/// windowed means (and an absolute floor, so idle noise can't trip it).
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    factor: f64,
    window: usize,
    min_signal: f64,
    /// Rolling window of the last `window` samples, per rank.
    recent: Vec<VecDeque<f64>>,
    steps_seen: usize,
}

impl StragglerDetector {
    /// A detector for `nranks` ranks flagging a rank whose windowed mean
    /// exceeds `factor` × the median windowed mean, averaged over `window`
    /// consecutive samples.
    ///
    /// `factor` must be > 1 (a factor ≤ 1 would flag a healthy rank on
    /// noise alone) and `window` ≥ 1. The absolute floor defaults to
    /// 50 µs per sample; tune it with
    /// [`StragglerDetector::with_min_signal_ns`].
    pub fn new(nranks: usize, factor: f64, window: usize) -> StragglerDetector {
        assert!(factor > 1.0, "straggler factor must exceed 1.0");
        assert!(window >= 1, "window must hold at least one sample");
        StragglerDetector {
            factor,
            window,
            min_signal: 50_000.0,
            recent: (0..nranks)
                .map(|_| VecDeque::with_capacity(window))
                .collect(),
            steps_seen: 0,
        }
    }

    /// Replace the absolute floor (nanoseconds): a rank is only flagged
    /// when its windowed mean also exceeds this, so near-zero healthy
    /// timings with incidental jitter never produce a flag.
    pub fn with_min_signal_ns(mut self, ns: f64) -> StragglerDetector {
        self.min_signal = ns;
        self
    }

    /// Number of ranks this detector watches.
    pub fn nranks(&self) -> usize {
        self.recent.len()
    }

    /// Feed one sample per rank (nanoseconds, or any common unit) and get
    /// the flagged rank, if any. Returns `None` until `window` samples have
    /// accumulated; with several ranks over threshold the worst one is
    /// flagged. Deterministic: same sample history, same verdict.
    pub fn observe(&mut self, sample_per_rank: &[f64]) -> Option<usize> {
        assert_eq!(
            sample_per_rank.len(),
            self.recent.len(),
            "sample vector must have one entry per rank"
        );
        for (win, &s) in self.recent.iter_mut().zip(sample_per_rank) {
            if win.len() == self.window {
                win.pop_front();
            }
            win.push_back(s);
        }
        self.steps_seen += 1;
        if self.steps_seen < self.window || self.recent.len() < 2 {
            return None;
        }
        let means: Vec<f64> = self
            .recent
            .iter()
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let med = median(&means);
        let threshold = (self.factor * med).max(self.min_signal);
        means
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > threshold)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("timing samples are finite"))
            .map(|(r, _)| r)
    }

    /// Forget all accumulated samples (e.g. after a migration changed the
    /// world so old timings no longer describe it).
    pub fn reset(&mut self) {
        for w in &mut self.recent {
            w.clear();
        }
        self.steps_seen = 0;
    }
}

/// Median of a non-empty slice (mean of the two middle elements when even).
fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timing samples are finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_ranks_are_never_flagged() {
        let mut d = StragglerDetector::new(4, 2.0, 3);
        for step in 0..20 {
            let jitter = (step % 3) as f64 * 1e5;
            let v = vec![1e6 + jitter, 1.1e6, 0.9e6, 1e6 - jitter];
            assert_eq!(d.observe(&v), None, "flagged at step {step}");
        }
    }

    #[test]
    fn sustained_outlier_is_flagged_after_the_window_fills() {
        let mut d = StragglerDetector::new(4, 2.0, 3);
        let sick = vec![1e6, 5e6, 1e6, 1e6];
        assert_eq!(d.observe(&sick), None, "one sample is not a pattern");
        assert_eq!(d.observe(&sick), None);
        assert_eq!(d.observe(&sick), Some(1), "window full: flag rank 1");
    }

    #[test]
    fn a_single_spike_fades_out_of_the_window() {
        let mut d = StragglerDetector::new(4, 3.0, 4);
        let healthy = vec![1e6; 4];
        let spike = vec![1e6, 1e6, 40e6, 1e6];
        for _ in 0..4 {
            d.observe(&healthy);
        }
        // One spike inside a window of healthy samples: mean is 10.75e6 vs
        // threshold 3e6 — flags while the spike is in the window...
        assert_eq!(d.observe(&spike), Some(2));
        // ...and clears once healthy samples push it out.
        let mut verdicts = Vec::new();
        for _ in 0..4 {
            verdicts.push(d.observe(&healthy));
        }
        assert_eq!(verdicts.last(), Some(&None), "spike aged out, no flag");
    }

    #[test]
    fn absolute_floor_suppresses_idle_noise() {
        // All ranks near zero: relative ratios are huge but meaningless.
        let mut d = StragglerDetector::new(4, 2.0, 2);
        for _ in 0..10 {
            assert_eq!(d.observe(&[10.0, 500.0, 12.0, 9.0]), None);
        }
    }

    #[test]
    fn worst_offender_wins_when_several_exceed() {
        let mut d = StragglerDetector::new(5, 1.5, 1).with_min_signal_ns(0.0);
        assert_eq!(d.observe(&[1e6, 4e6, 9e6, 1e6, 1e6]), Some(2));
    }

    #[test]
    fn median_resists_a_minority_of_sick_ranks() {
        // 2 sick ranks out of 5: median stays at the healthy level.
        let mut d = StragglerDetector::new(5, 2.0, 1).with_min_signal_ns(0.0);
        assert_eq!(d.observe(&[1e6, 8e6, 9e6, 1e6, 1e6]), Some(2));
    }

    #[test]
    fn single_rank_never_flags_and_reset_clears_history() {
        let mut solo = StragglerDetector::new(1, 2.0, 1);
        assert_eq!(solo.observe(&[9e9]), None);

        // With 2 ranks the median is the midpoint of healthy and sick, so
        // the workable factor range is tighter than at R >= 3.
        let mut d = StragglerDetector::new(2, 1.5, 2).with_min_signal_ns(0.0);
        d.observe(&[1e6, 9e6]);
        d.observe(&[1e6, 9e6]);
        d.reset();
        assert_eq!(d.observe(&[1e6, 9e6]), None, "window must refill");
        assert_eq!(d.observe(&[1e6, 9e6]), Some(1));
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut d = StragglerDetector::new(3, 2.0, 2);
            (0..8)
                .map(|i| d.observe(&[1e6, 1e6 + i as f64 * 2e6, 1e6]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
