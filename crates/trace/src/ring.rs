//! Fixed-capacity event ring buffer.

/// A bounded ring: pushes past capacity overwrite the oldest entries and
/// are counted, so a runaway trace degrades gracefully (newest events win)
/// instead of growing without bound.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index of the logical first element once the ring has wrapped.
    head: usize,
    /// Number of pushes that evicted an older element.
    overwritten: u64,
    capacity: usize,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` elements (min 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(1);
        Ring {
            buf: Vec::new(),
            head: 0,
            overwritten: 0,
            capacity,
        }
    }

    /// Append, evicting the oldest element when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many pushes evicted an older element.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drain into a `Vec` in logical (oldest-first) order, resetting the
    /// ring to empty while keeping the eviction count.
    pub fn drain_ordered(&mut self) -> Vec<T> {
        let head = std::mem::take(&mut self.head);
        let mut buf = std::mem::take(&mut self.buf);
        if head > 0 {
            buf.rotate_left(head);
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.drain_ordered(), vec![2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 2, "eviction count survives the drain");
    }

    #[test]
    fn under_capacity_preserves_order() {
        let mut r = Ring::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.drain_ordered(), vec!['a', 'b']);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.drain_ordered(), vec![2]);
    }
}
