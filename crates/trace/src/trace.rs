//! The merged trace: per-rank event logs plus analysis helpers.

use crate::names;
use std::collections::BTreeMap;

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (pushed onto the rank's span stack).
    Enter,
    /// A span closed (popped; must match the most recent open `Enter`).
    Exit,
    /// A monotonic counter advanced by the carried delta.
    Count(u64),
}

/// One recorded event: a timestamp (nanoseconds since the collector's
/// epoch), a static name, and the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the owning [`crate::TraceCollector`]'s epoch.
    pub t_ns: u64,
    /// Span or counter name (see [`crate::names`]).
    pub name: &'static str,
    /// Enter / Exit / Count.
    pub kind: EventKind,
}

/// One rank's (or the driver lane's) recorded events, oldest first.
#[derive(Debug, Clone)]
pub struct RankTrace {
    /// Lane id: the rank, or [`crate::DRIVER_LANE`] for the driver.
    pub lane: usize,
    /// Events in record order (timestamps are monotonic within a lane).
    pub events: Vec<Event>,
    /// Events evicted because the rank's ring buffer wrapped.
    pub dropped: u64,
}

impl RankTrace {
    /// Verify that every `Enter` has a matching `Exit` in stack order and
    /// nothing is left open. Returns the offending description on failure.
    pub fn check_balanced(&self) -> Result<(), String> {
        let mut stack: Vec<&'static str> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::Enter => stack.push(e.name),
                EventKind::Exit => match stack.pop() {
                    Some(top) if top == e.name => {}
                    Some(top) => {
                        return Err(format!(
                            "lane {}: exit '{}' while '{}' was open",
                            self.lane, e.name, top
                        ))
                    }
                    None => {
                        return Err(format!(
                            "lane {}: exit '{}' with no open span",
                            self.lane, e.name
                        ))
                    }
                },
                EventKind::Count(_) => {}
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!("lane {}: span '{}' never exited", self.lane, open));
        }
        Ok(())
    }

    /// Total nanoseconds spent inside spans named `name` on this lane
    /// (outermost instances only, so self-nesting is not double-counted).
    pub fn span_total_ns(&self, name: &'static str) -> u64 {
        let mut total = 0u64;
        let mut depth = 0usize;
        let mut opened_at = 0u64;
        for e in &self.events {
            if e.name != name {
                continue;
            }
            match e.kind {
                EventKind::Enter => {
                    if depth == 0 {
                        opened_at = e.t_ns;
                    }
                    depth += 1;
                }
                EventKind::Exit => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        total += e.t_ns.saturating_sub(opened_at);
                    }
                }
                EventKind::Count(_) => {}
            }
        }
        total
    }

    /// Number of completed spans named `name` on this lane.
    pub fn span_count(&self, name: &'static str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name && e.kind == EventKind::Exit)
            .count() as u64
    }

    /// Final value of the monotonic counter `name` on this lane.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Count(delta) if e.name == name => delta,
                _ => 0,
            })
            .sum()
    }

    /// Distinct span names seen on this lane, in first-appearance order.
    pub fn span_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for e in &self.events {
            if matches!(e.kind, EventKind::Enter) && !out.contains(&e.name) {
                out.push(e.name);
            }
        }
        out
    }

    /// Distinct counter names seen on this lane, sorted.
    pub fn counter_names(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for e in &self.events {
            if matches!(e.kind, EventKind::Count(_)) && !out.contains(&e.name) {
                out.push(e.name);
            }
        }
        out.sort_unstable();
        out
    }
}

/// A completed run's merged trace: one [`RankTrace`] per lane, rank lanes
/// first (ascending), then the driver lane if it recorded anything.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-lane event logs.
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// The lane for `rank`, if it recorded anything.
    pub fn lane(&self, rank: usize) -> Option<&RankTrace> {
        self.ranks.iter().find(|r| r.lane == rank)
    }

    /// Sum of the monotonic counter `name` over every lane.
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.ranks.iter().map(|r| r.counter_total(name)).sum()
    }

    /// Sum of time spent in spans named `name` over every lane, ns.
    pub fn span_total_ns(&self, name: &'static str) -> u64 {
        self.ranks.iter().map(|r| r.span_total_ns(name)).sum()
    }

    /// Completed spans named `name` over every lane.
    pub fn span_count(&self, name: &'static str) -> u64 {
        self.ranks.iter().map(|r| r.span_count(name)).sum()
    }

    /// The communication/computation overlap fraction derived purely from
    /// trace counters: ring all-reduce steps that completed under backward
    /// compute over all ring steps, pooled over every lane. `None` when the
    /// overlapped sync never ran (no ring steps recorded).
    pub fn overlap_fraction(&self) -> Option<f64> {
        let total = self.counter_total(names::RING_STEPS);
        if total == 0 {
            return None;
        }
        let overlapped = self.counter_total(names::RING_STEPS_OVERLAPPED);
        Some(overlapped as f64 / total as f64)
    }

    /// Per-family transport byte totals derived from trace counters:
    /// `(family name, bytes sent)` for every `comm.sent.<family>.bytes`
    /// counter present, sorted by family name.
    pub fn sent_bytes_by_family(&self) -> Vec<(&'static str, u64)> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for lane in &self.ranks {
            for e in &lane.events {
                if let EventKind::Count(delta) = e.kind {
                    if let Some(fam) = e
                        .name
                        .strip_prefix("comm.sent.")
                        .and_then(|rest| rest.strip_suffix(".bytes"))
                    {
                        *totals.entry(fam).or_default() += delta;
                    }
                }
            }
        }
        totals.into_iter().collect()
    }

    /// Events evicted by ring-buffer wrap, summed over lanes. Non-zero
    /// means span balance and counter totals are no longer trustworthy for
    /// the wrapped lanes (raise the collector capacity).
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, name: &'static str, kind: EventKind) -> Event {
        Event { t_ns, name, kind }
    }

    fn lane(events: Vec<Event>) -> RankTrace {
        RankTrace {
            lane: 0,
            events,
            dropped: 0,
        }
    }

    #[test]
    fn balanced_stack_passes() {
        let t = lane(vec![
            ev(0, "step", EventKind::Enter),
            ev(1, "forward", EventKind::Enter),
            ev(2, "forward", EventKind::Exit),
            ev(3, "step", EventKind::Exit),
        ]);
        assert!(t.check_balanced().is_ok());
    }

    #[test]
    fn crossed_spans_fail() {
        let t = lane(vec![
            ev(0, "a", EventKind::Enter),
            ev(1, "b", EventKind::Enter),
            ev(2, "a", EventKind::Exit),
        ]);
        assert!(t.check_balanced().is_err());
    }

    #[test]
    fn unclosed_span_fails() {
        let t = lane(vec![ev(0, "a", EventKind::Enter)]);
        assert!(t.check_balanced().is_err());
    }

    #[test]
    fn span_totals_ignore_self_nesting() {
        let t = lane(vec![
            ev(0, "a", EventKind::Enter),
            ev(10, "a", EventKind::Enter),
            ev(20, "a", EventKind::Exit),
            ev(100, "a", EventKind::Exit),
        ]);
        assert_eq!(t.span_total_ns("a"), 100);
        assert_eq!(t.span_count("a"), 2);
    }

    #[test]
    fn counters_accumulate() {
        let t = lane(vec![
            ev(0, "c", EventKind::Count(3)),
            ev(1, "c", EventKind::Count(4)),
            ev(2, "d", EventKind::Count(10)),
        ]);
        assert_eq!(t.counter_total("c"), 7);
        assert_eq!(t.counter_total("d"), 10);
        assert_eq!(t.counter_total("missing"), 0);
    }

    #[test]
    fn overlap_fraction_pools_lanes() {
        let mut trace = Trace::default();
        for lane_id in 0..2 {
            trace.ranks.push(RankTrace {
                lane: lane_id,
                events: vec![
                    ev(0, names::RING_STEPS, EventKind::Count(10)),
                    ev(1, names::RING_STEPS_OVERLAPPED, EventKind::Count(4)),
                ],
                dropped: 0,
            });
        }
        assert_eq!(trace.overlap_fraction(), Some(8.0 / 20.0));
        assert_eq!(Trace::default().overlap_fraction(), None);
    }
}
