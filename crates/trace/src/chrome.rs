//! Chrome trace-event export and the per-rank text summary.
//!
//! The JSON array produced by [`Trace::to_chrome_json`] follows the
//! Trace Event Format (`ph: "B"/"E"` duration events, `ph: "C"` counters,
//! `ph: "M"` metadata) and loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>. Events are emitted lane by lane — all of
//! rank 0, then all of rank 1, … — so per-thread streams never interleave
//! in the file; viewers key on `(pid, tid)` anyway, but the grouping keeps
//! the export diffable and the balance checks local.

use crate::trace::{EventKind, Trace};
use crate::DRIVER_LANE;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Display id for a lane: ranks keep their index; the driver lane gets the
/// next id after the highest rank so viewers show it as one more row.
fn tid_of(lane: usize, max_rank: usize) -> usize {
    if lane == DRIVER_LANE {
        max_rank + 1
    } else {
        lane
    }
}

fn lane_label(lane: usize) -> String {
    if lane == DRIVER_LANE {
        "driver".to_string()
    } else {
        format!("rank {lane}")
    }
}

fn push_event(out: &mut String, name: &str, ph: char, ts_us: f64, tid: usize) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":0,\"tid\":{tid}}}"
    );
}

impl Trace {
    /// Export as Chrome trace-event JSON (one array, self-contained).
    pub fn to_chrome_json(&self) -> String {
        let max_rank = self
            .ranks
            .iter()
            .map(|r| r.lane)
            .filter(|&l| l != DRIVER_LANE)
            .max()
            .unwrap_or(0);
        let mut out = String::from("[\n");
        let sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
        };

        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"bagualu\"}}}}"
        );
        let mut first = false;

        for lane in &self.ranks {
            let tid = tid_of(lane.lane, max_rank);
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane_label(lane.lane)
            );
            // Running totals for this lane's counters.
            let mut totals: HashMap<&'static str, u64> = HashMap::new();
            // Skip orphan exits (possible after ring wrap) so the export
            // stays loadable even on a truncated trace.
            let mut depth: HashMap<&'static str, usize> = HashMap::new();
            for e in &lane.events {
                let ts_us = e.t_ns as f64 / 1000.0;
                match e.kind {
                    EventKind::Enter => {
                        *depth.entry(e.name).or_default() += 1;
                        sep(&mut out, &mut first);
                        push_event(&mut out, e.name, 'B', ts_us, tid);
                    }
                    EventKind::Exit => {
                        let d = depth.entry(e.name).or_default();
                        if *d == 0 {
                            continue; // orphan exit after a wrapped ring
                        }
                        *d -= 1;
                        sep(&mut out, &mut first);
                        push_event(&mut out, e.name, 'E', ts_us, tid);
                    }
                    EventKind::Count(delta) => {
                        let total = totals.entry(e.name).or_default();
                        *total += delta;
                        let total = *total;
                        sep(&mut out, &mut first);
                        let _ = write!(
                            out,
                            "{{\"name\":\"{} ({})\",\"ph\":\"C\",\"ts\":{ts_us:.3},\
                             \"pid\":0,\"tid\":{tid},\"args\":{{\"value\":{total}}}}}",
                            e.name,
                            lane_label(lane.lane)
                        );
                    }
                }
            }
            // Close spans the ring wrap left open, at the lane's last
            // timestamp, so viewers do not extend them to infinity.
            let t_end = lane.events.last().map(|e| e.t_ns).unwrap_or(0) as f64 / 1000.0;
            for (name, open) in depth {
                for _ in 0..open {
                    sep(&mut out, &mut first);
                    push_event(&mut out, name, 'E', t_end, tid);
                }
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Per-rank text summary: span counts and total time, plus final
    /// counter values — the quick look that doesn't need a trace viewer.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for lane in &self.ranks {
            let _ = writeln!(out, "{}:", lane_label(lane.lane));
            let names = lane.span_names();
            if !names.is_empty() {
                let _ = writeln!(out, "  {:<14} {:>8} {:>12}", "span", "count", "total");
                for name in names {
                    let _ = writeln!(
                        out,
                        "  {:<14} {:>8} {:>9.3} ms",
                        name,
                        lane.span_count(name),
                        lane.span_total_ns(name) as f64 / 1e6
                    );
                }
            }
            let counters = lane.counter_names();
            if !counters.is_empty() {
                let _ = writeln!(out, "  {:<40} {:>14}", "counter", "total");
                for name in counters {
                    let _ = writeln!(out, "  {:<40} {:>14}", name, lane.counter_total(name));
                }
            }
            if lane.dropped > 0 {
                let _ = writeln!(out, "  ({} events dropped by ring wrap)", lane.dropped);
            }
        }
        out
    }
}

/// Minimal structural validation of a Chrome trace JSON string: every
/// event object parses as `key:value` pairs we emitted and B/E events
/// balance per tid. Used by tests (the workspace has no JSON parser).
pub fn validate_chrome_json(json: &str) -> Result<usize, String> {
    let body = json
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("not a JSON array")?;
    let mut n = 0usize;
    let mut stacks: HashMap<String, Vec<String>> = HashMap::new();
    for line in body.split(",\n") {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("event is not an object: {line}"));
        }
        let get = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            if let Some(quoted) = rest.strip_prefix('"') {
                // String value: runs to the closing quote (we never emit
                // escaped quotes).
                Some(quoted[..quoted.find('"')?].to_string())
            } else {
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                Some(rest[..end].to_string())
            }
        };
        let ph = get("ph").ok_or_else(|| format!("event without ph: {line}"))?;
        let tid = get("tid").unwrap_or_default();
        let name = get("name").unwrap_or_default();
        match ph.as_str() {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks.entry(tid.clone()).or_default().pop();
                if top.as_deref() != Some(name.as_str()) {
                    return Err(format!(
                        "tid {tid}: exit '{name}' does not match open '{top:?}'"
                    ));
                }
            }
            "C" | "M" => {}
            other => return Err(format!("unknown ph '{other}'")),
        }
        n += 1;
    }
    for (tid, stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: spans left open: {stack:?}"));
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, RankTrace};

    fn ev(t_ns: u64, name: &'static str, kind: EventKind) -> Event {
        Event { t_ns, name, kind }
    }

    fn two_rank_trace() -> Trace {
        let mut trace = Trace::default();
        for lane in 0..2usize {
            trace.ranks.push(RankTrace {
                lane,
                events: vec![
                    ev(0, "step", EventKind::Enter),
                    ev(100, "forward", EventKind::Enter),
                    ev(150, "bytes", EventKind::Count(64)),
                    ev(200, "forward", EventKind::Exit),
                    ev(900, "step", EventKind::Exit),
                ],
                dropped: 0,
            });
        }
        trace
    }

    #[test]
    fn export_is_structurally_valid_and_grouped_by_lane() {
        let json = two_rank_trace().to_chrome_json();
        let n = validate_chrome_json(&json).expect("valid chrome trace");
        // 1 process meta + per lane: 1 thread meta + 2 B + 2 E + 1 C.
        assert_eq!(n, 1 + 2 * 6);
        // Lane grouping: once tid 1 appears, tid 0 never recurs.
        let first_t1 = json.find("\"tid\":1").unwrap();
        assert!(!json[first_t1..].contains("\"tid\":0"));
    }

    #[test]
    fn orphan_exits_are_skipped_and_open_spans_closed() {
        let mut trace = Trace::default();
        trace.ranks.push(RankTrace {
            lane: 0,
            events: vec![
                ev(5, "lost", EventKind::Exit),   // orphan from a wrapped ring
                ev(10, "step", EventKind::Enter), // never exited
                ev(20, "bytes", EventKind::Count(1)),
            ],
            dropped: 3,
        });
        let json = trace.to_chrome_json();
        validate_chrome_json(&json).expect("sanitized export still valid");
    }

    #[test]
    fn driver_lane_renders_after_ranks() {
        let mut trace = two_rank_trace();
        trace.ranks.push(RankTrace {
            lane: DRIVER_LANE,
            events: vec![
                ev(0, "recovery", EventKind::Enter),
                ev(50, "recovery", EventKind::Exit),
            ],
            dropped: 0,
        });
        let json = trace.to_chrome_json();
        validate_chrome_json(&json).expect("valid");
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("driver"));
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let s = two_rank_trace().summary();
        assert!(s.contains("rank 0:"));
        assert!(s.contains("step"));
        assert!(s.contains("bytes"));
    }
}
