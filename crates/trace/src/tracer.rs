//! The recording side: a shared collector, per-thread lanes, and the
//! [`span`]/[`count`] free functions instrumentation sites call.
//!
//! Cost model: when no collector is installed anywhere, every call site
//! pays one relaxed atomic load and returns. When a collector exists but
//! the calling thread holds no lane (e.g. a helper thread), the cost is
//! one thread-local probe. Only installed threads pay for recording —
//! an `Instant` read and a ring-buffer push, no locks.

use crate::ring::Ring;
use crate::trace::{Event, EventKind, RankTrace, Trace};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lane id the fault-tolerant driver records on (it is not a rank).
pub const DRIVER_LANE: usize = usize::MAX;

/// Number of live [`InstallGuard`]s across all threads; the global fast
/// path for [`enabled`].
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// True when at least one thread currently records a trace. Call sites
/// with non-trivial argument preparation should check this first; [`span`]
/// and [`count`] check it themselves.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Default per-lane ring capacity, in events. A training step records on
/// the order of tens of span events and a few hundred counter events per
/// rank, so this holds thousands of steps before wrapping.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

struct Lane {
    lane: usize,
    ring: Ring<Event>,
    epoch: Instant,
    shared: Arc<Shared>,
}

thread_local! {
    static LOCAL: RefCell<Option<Lane>> = const { RefCell::new(None) };
}

struct Shared {
    epoch: Instant,
    capacity: usize,
    /// Finished lanes, appended as rank threads uninstall. A rank that
    /// appears more than once (checkpoint-restart attempts) is merged by
    /// [`TraceCollector::finish`].
    done: Mutex<Vec<RankTrace>>,
}

/// Owns a run's trace while it is being recorded. Cheap to clone (shared
/// handle); create one per run, hand clones to rank threads, then call
/// [`TraceCollector::finish`] once every rank has uninstalled.
#[derive(Clone)]
pub struct TraceCollector {
    shared: Arc<Shared>,
}

impl TraceCollector {
    /// A collector with the default per-lane ring capacity.
    pub fn new() -> TraceCollector {
        TraceCollector::with_capacity(DEFAULT_CAPACITY)
    }

    /// A collector whose per-lane rings hold `capacity` events each.
    pub fn with_capacity(capacity: usize) -> TraceCollector {
        TraceCollector {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                capacity,
                done: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Nanoseconds since this collector's epoch (the run start).
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Attach the calling thread to `lane` (its rank id, or
    /// [`DRIVER_LANE`]). Subsequent [`span`]/[`count`] calls on this thread
    /// record into the lane until the returned guard drops, which flushes
    /// the lane's events into the collector. Panics if the thread already
    /// records (lanes do not nest).
    pub fn install(&self, lane: usize) -> InstallGuard {
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(
                slot.is_none(),
                "thread already records a trace lane; lanes do not nest"
            );
            *slot = Some(Lane {
                lane,
                ring: Ring::new(self.shared.capacity),
                epoch: self.shared.epoch,
                shared: Arc::clone(&self.shared),
            });
        });
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        InstallGuard { _private: () }
    }

    /// Record a complete span directly onto a lane, bypassing the
    /// thread-local path — the driver uses this for phases (recovery) it
    /// only recognizes after the fact. Timestamps are [`Self::now_ns`]
    /// values.
    pub fn record_span(&self, lane: usize, name: &'static str, t0_ns: u64, t1_ns: u64) {
        self.record_events(
            lane,
            vec![
                Event {
                    t_ns: t0_ns,
                    name,
                    kind: EventKind::Enter,
                },
                Event {
                    t_ns: t1_ns.max(t0_ns),
                    name,
                    kind: EventKind::Exit,
                },
            ],
        );
    }

    /// Record a counter increment directly onto a lane (driver-side
    /// counters such as restarts).
    pub fn record_count(&self, lane: usize, name: &'static str, delta: u64) {
        let t = self.now_ns();
        self.record_events(
            lane,
            vec![Event {
                t_ns: t,
                name,
                kind: EventKind::Count(delta),
            }],
        );
    }

    fn record_events(&self, lane: usize, events: Vec<Event>) {
        self.shared.done.lock().push(RankTrace {
            lane,
            events,
            dropped: 0,
        });
    }

    /// Merge every flushed lane into a [`Trace`]: rank lanes ascending,
    /// driver lane last. Lanes flushed more than once (restart attempts,
    /// driver records) are concatenated in flush order, which preserves
    /// per-lane timestamp monotonicity because attempts are sequential.
    pub fn finish(&self) -> Trace {
        let mut flushed = std::mem::take(&mut *self.shared.done.lock());
        // Stable: preserves flush order within a lane.
        flushed.sort_by_key(|r| r.lane);
        let mut ranks: Vec<RankTrace> = Vec::new();
        for part in flushed {
            match ranks.last_mut() {
                Some(prev) if prev.lane == part.lane => {
                    prev.events.extend(part.events);
                    prev.dropped += part.dropped;
                }
                _ => ranks.push(part),
            }
        }
        Trace { ranks }
    }
}

impl Default for TraceCollector {
    fn default() -> TraceCollector {
        TraceCollector::new()
    }
}

/// Detaches the thread from its lane on drop, flushing recorded events
/// into the collector.
#[must_use = "dropping the guard immediately would stop recording at once"]
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
        LOCAL.with(|slot| {
            if let Some(mut lane) = slot.borrow_mut().take() {
                let dropped = lane.ring.overwritten();
                let events = lane.ring.drain_ordered();
                lane.shared.done.lock().push(RankTrace {
                    lane: lane.lane,
                    events,
                    dropped,
                });
            }
        });
    }
}

#[inline]
fn record(name: &'static str, kind: EventKind) -> bool {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        match slot.as_mut() {
            Some(lane) => {
                let t_ns = lane.epoch.elapsed().as_nanos() as u64;
                lane.ring.push(Event { t_ns, name, kind });
                true
            }
            None => false,
        }
    })
}

/// Open a span named `name`; it closes when the returned guard drops.
/// Near-free when tracing is disabled or the thread holds no lane.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None };
    }
    let armed = record(name, EventKind::Enter);
    SpanGuard {
        name: armed.then_some(name),
    }
}

/// Add `delta` to the monotonic counter `name` on this thread's lane.
/// Near-free when tracing is disabled or the thread holds no lane.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    record(name, EventKind::Count(delta));
}

/// RAII guard returned by [`span`]; records the matching exit on drop.
#[must_use = "dropping the guard immediately closes the span at once"]
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record(name, EventKind::Exit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn records_spans_and_counters_per_lane() {
        let collector = TraceCollector::new();
        std::thread::scope(|s| {
            for rank in 0..3usize {
                let col = collector.clone();
                s.spawn(move || {
                    let _g = col.install(rank);
                    for _ in 0..2 {
                        let _step = span(names::STEP);
                        {
                            let _f = span(names::FORWARD);
                            count("c.bytes", 10);
                        }
                        let _b = span(names::BACKWARD);
                    }
                });
            }
        });
        let trace = collector.finish();
        assert_eq!(trace.ranks.len(), 3);
        for rank in 0..3 {
            let lane = trace.lane(rank).expect("lane recorded");
            lane.check_balanced().expect("balanced");
            assert_eq!(lane.span_count(names::STEP), 2);
            assert_eq!(lane.counter_total("c.bytes"), 20);
        }
        assert_eq!(trace.counter_total("c.bytes"), 60);
    }

    #[test]
    fn untraced_threads_record_nothing() {
        // No collector installed on this thread: both paths are inert.
        let _s = span("ghost");
        count("ghost.counter", 1);
        let collector = TraceCollector::new();
        assert!(collector.finish().ranks.is_empty());
    }

    #[test]
    fn driver_side_records_merge_into_one_lane() {
        let collector = TraceCollector::new();
        collector.record_span(DRIVER_LANE, names::RECOVERY, 10, 50);
        collector.record_count(DRIVER_LANE, names::RESTARTS, 1);
        collector.record_span(DRIVER_LANE, names::RECOVERY, 60, 90);
        let trace = collector.finish();
        assert_eq!(trace.ranks.len(), 1);
        let lane = trace.lane(DRIVER_LANE).unwrap();
        assert_eq!(lane.span_count(names::RECOVERY), 2);
        assert_eq!(lane.span_total_ns(names::RECOVERY), 70);
        assert_eq!(lane.counter_total(names::RESTARTS), 1);
    }

    #[test]
    fn reinstall_after_drop_appends_to_the_same_lane() {
        let collector = TraceCollector::new();
        std::thread::scope(|s| {
            let col = &collector;
            s.spawn(move || {
                {
                    let _g = col.install(0);
                    let _s = span("attempt");
                }
                {
                    let _g = col.install(0);
                    let _s = span("attempt");
                }
            });
        });
        let trace = collector.finish();
        assert_eq!(trace.ranks.len(), 1);
        assert_eq!(trace.lane(0).unwrap().span_count("attempt"), 2);
        trace.lane(0).unwrap().check_balanced().unwrap();
    }

    #[test]
    fn ring_wrap_reports_drops() {
        let collector = TraceCollector::with_capacity(4);
        std::thread::scope(|s| {
            let col = &collector;
            s.spawn(move || {
                let _g = col.install(0);
                for _ in 0..10 {
                    count("c", 1);
                }
            });
        });
        let trace = collector.finish();
        assert_eq!(trace.total_dropped(), 6);
        assert_eq!(trace.counter_total("c"), 4, "only surviving events count");
    }
}
