//! Canonical span and counter names.
//!
//! Instrumentation sites across the workspace use these constants so that
//! analysis code (experiment E23, the pinned agreement tests) never has to
//! guess at strings. The taxonomy is documented in `docs/OBSERVABILITY.md`.

/// One full training step (outermost per-step span).
pub const STEP: &str = "step";
/// Forward pass of one micro-batch (includes the loss computation).
pub const FORWARD: &str = "forward";
/// Backward pass of one micro-batch. Under the overlapped gradient sync
/// this span also hosts the in-flight ring polling; the time spent driving
/// rings inside it is reported by [`OVERLAP_POLL_NS`].
pub const BACKWARD: &str = "backward";
/// Exposed dense-gradient synchronization: the monolithic blocking
/// all-reduce, or the tail drain of the bucketed overlapped sync.
pub const GRAD_SYNC: &str = "grad_sync";
/// MoE token dispatch all-to-all (forward: tokens out; backward: dY out).
pub const A2A_DISPATCH: &str = "a2a_dispatch";
/// MoE result combine all-to-all (forward: expert outputs back; backward:
/// dX back).
pub const A2A_COMBINE: &str = "a2a_combine";
/// Optimizer update (replicated mixed-precision Adam or sharded ZeRO step,
/// including the ZeRO reduce-scatter/all-gather).
pub const OPTIMIZER: &str = "optimizer";
/// Held-out evaluation forward pass.
pub const EVAL: &str = "eval";
/// Writing one checkpoint shard (including the durability barrier).
pub const CHECKPOINT: &str = "checkpoint";
/// One failed attempt in the fault-tolerant driver: detection plus the
/// teardown of the attempt (recorded on [`crate::DRIVER_LANE`]).
pub const RECOVERY: &str = "recovery";

/// Ring all-reduce steps launched by the bucketed overlapped sync.
pub const RING_STEPS: &str = "sync.ring_steps";
/// Ring all-reduce steps that completed while backward compute was still
/// running — the measured communication/computation overlap.
pub const RING_STEPS_OVERLAPPED: &str = "sync.ring_steps_overlapped";
/// Nanoseconds spent polling in-flight rings from inside the backward pass
/// (the wall-clock footprint of the *hidden* communication).
pub const OVERLAP_POLL_NS: &str = "sync.overlap_poll_ns";
/// Payload bytes sent with 4-byte `f32` elements. The `comm.wire.*`
/// counters slice the same sent bytes as the `comm.sent.<family>.*`
/// counters, but by element format instead of collective family — the
/// observable for wire-compression experiments (E24). They deliberately do
/// **not** share the `comm.sent.` prefix, which `sent_bytes_by_family`
/// pattern-matches.
pub const WIRE_F32_BYTES: &str = "comm.wire.fp32.bytes";
/// Payload bytes sent with 2-byte FP16 elements (see [`WIRE_F32_BYTES`]).
pub const WIRE_F16_BYTES: &str = "comm.wire.fp16.bytes";
/// Payload bytes sent with 2-byte BF16 elements (see [`WIRE_F32_BYTES`]).
pub const WIRE_BF16_BYTES: &str = "comm.wire.bf16.bytes";
/// Payload bytes sent as 8-byte `u64` metadata (see [`WIRE_F32_BYTES`]).
pub const WIRE_U64_BYTES: &str = "comm.wire.u64.bytes";
/// Payload bytes sent as 4-byte `u32` metadata (see [`WIRE_F32_BYTES`]).
pub const WIRE_U32_BYTES: &str = "comm.wire.u32.bytes";

/// All-to-all payload bytes whose source and destination ranks share a
/// supernode. Sliced out of the `comm.sent.alltoall.bytes` total by the
/// transport once a supernode size is armed
/// (`Communicator::set_supernode_size`); the measured counterpart of the
/// locality fraction that `net::cost::alltoall_with_locality` models and
/// that supernode-aware expert placement (E25) raises. Like `comm.wire.*`,
/// these deliberately avoid the `comm.sent.` prefix, which
/// `sent_bytes_by_family` pattern-matches.
pub const A2A_INTRA_BYTES: &str = "comm.a2a.intra.bytes";
/// All-to-all payload bytes crossing a supernode boundary (see
/// [`A2A_INTRA_BYTES`]).
pub const A2A_INTER_BYTES: &str = "comm.a2a.inter.bytes";

/// Multiply-add operations (counted as 2·m·k·n per GEMM) executed by the
/// matmul kernels, whichever backend is installed. Together with
/// [`COMPUTE_MATMUL_NS`] this yields achieved GFLOP/s, the observable for
/// the kernel-floor experiments (E26) and E23's honest compute
/// attribution.
pub const COMPUTE_MATMUL_FLOPS: &str = "compute.matmul.flops";
/// Wall-clock nanoseconds spent inside matmul kernels, including any fused
/// bias+activation epilogue (see [`COMPUTE_MATMUL_FLOPS`]).
pub const COMPUTE_MATMUL_NS: &str = "compute.matmul.ns";

/// Nominal FLOPs executed by the row-wise softmax family (softmax and
/// log-softmax: 5 per element — compare, subtract, exp, sum, scale),
/// whichever row-op backend is installed. Nominal counts keep achieved
/// rates comparable across PRs; `exp` is of course many hardware ops.
pub const COMPUTE_SOFTMAX_FLOPS: &str = "compute.softmax.flops";
/// Wall-clock nanoseconds inside the softmax kernels (see
/// [`COMPUTE_SOFTMAX_FLOPS`]).
pub const COMPUTE_SOFTMAX_NS: &str = "compute.softmax.ns";
/// Nominal FLOPs executed by layer-norm forward (8 per element: two
/// reduction adds, centered square, normalize, scale, shift).
pub const COMPUTE_LAYERNORM_FLOPS: &str = "compute.layernorm.flops";
/// Wall-clock nanoseconds inside layer-norm forward (see
/// [`COMPUTE_LAYERNORM_FLOPS`]).
pub const COMPUTE_LAYERNORM_NS: &str = "compute.layernorm.ns";
/// Nominal FLOPs executed by the Adam/AdamW update (12 per element: two
/// moment lerps, two bias corrections, sqrt, divide, decay, apply).
pub const COMPUTE_ADAM_FLOPS: &str = "compute.adam.flops";
/// Wall-clock nanoseconds inside the Adam/AdamW update (see
/// [`COMPUTE_ADAM_FLOPS`]).
pub const COMPUTE_ADAM_NS: &str = "compute.adam.ns";

/// Messages dropped in flight by fault injection.
pub const FAULT_DROPS: &str = "fault.drops";
/// Payloads corrupted in flight by fault injection.
pub const FAULT_CORRUPTIONS: &str = "fault.corruptions";
/// Restarts performed by the fault-tolerant driver (driver lane).
pub const RESTARTS: &str = "ft.restarts";
/// Elastic world resizes performed by the fault-tolerant driver: attempts
/// continued on R−1 ranks after a crash instead of restoring at full width
/// (driver lane).
pub const FT_RESIZES: &str = "ft.resizes";
/// Straggler flag events raised by the online [`crate::StragglerDetector`]
/// — one per detection, recorded on rank 0's lane (every rank reaches the
/// same verdict from the same all-reduced samples; counting once keeps the
/// total equal to the number of events, not events × ranks).
pub const STRAGGLER_FLAGGED: &str = "straggler.flagged";
/// Expert-load migrations executed in response to a straggler flag,
/// amortized at checkpoint boundaries (driver lane).
pub const STRAGGLER_MIGRATIONS: &str = "straggler.migrations";

/// Prefill phase of one serving engine step: the batched forward over the
/// full prompts of every request admitted at this step boundary (runs even
/// when empty — it is a collective).
pub const SERVE_PREFILL: &str = "serve.prefill";
/// Decode phase of one serving engine step: the batched forward advancing
/// every in-flight sequence by one token (also collective, also runs
/// empty).
pub const SERVE_DECODE_STEP: &str = "serve.decode_step";
/// Nanoseconds requests spent queued before admission (arrival →
/// admission), summed over admitted requests.
pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue.wait_ns";
/// Prompt tokens run through the prefill phase.
pub const SERVE_PREFILL_TOKENS: &str = "serve.prefill.tokens";
/// Tokens generated by the decode phase.
pub const SERVE_DECODE_TOKENS: &str = "serve.decode.tokens";
/// Sum over decode phases of the number of in-flight sequences; divided by
/// the [`SERVE_DECODE_STEP`] span count this is the mean batch occupancy,
/// the utilization continuous batching exists to raise.
pub const SERVE_BATCH_OCCUPANCY: &str = "serve.batch.occupancy";
/// KV-cache blocks reserved at admission (monotonic; current usage is
/// `used − freed`).
pub const SERVE_KV_BLOCKS_USED: &str = "serve.kv.blocks.used";
/// KV-cache blocks returned to the free list when a sequence detached
/// (monotonic; see [`SERVE_KV_BLOCKS_USED`]).
pub const SERVE_KV_BLOCKS_FREE: &str = "serve.kv.blocks.free";
/// Admission attempts bounced by KV-block exhaustion — the request stays
/// queued (re-queued, never dropped) and retries at a later step boundary.
pub const SERVE_REQUEUED: &str = "serve.requests.requeued";
/// Requests fully decoded and handed back to the caller.
pub const SERVE_COMPLETED: &str = "serve.requests.completed";
