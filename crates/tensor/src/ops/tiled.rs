//! [`Tiled`]: cache-blocked, packed-panel, register-blocked GEMM.
//!
//! Structure follows the classic Goto decomposition, sized for the
//! SW26010-Pro analogue this workspace targets (see DESIGN.md "Compute
//! floor"):
//!
//! * **KC** (reduction panel, shared with the reference kernel): the slice
//!   of the reduction dimension kept hot while a block of C accumulates.
//! * **MC** rows of C per parallel task — the unit `par_chunks_mut`
//!   distributes.
//! * **MR×NR** register tile: the micro-kernel holds a block of C in
//!   registers, broadcasts one A element per row, and multiply-adds an
//!   NR-wide packed B row into each — zero C traffic inside the k-loop and
//!   far fewer memory operations per FLOP than the reference axpy loop.
//! * **Packed B**: before the row-block loop, B is repacked once into
//!   KC-high, NR-wide column panels (zero-padded on the ragged right edge),
//!   so the micro-kernel streams B contiguously regardless of `n`.
//!
//! Two micro-kernel paths share this skeleton, chosen once per call:
//!
//! * **wide** (x86-64 with AVX-512F, detected at runtime): a 6×64 tile —
//!   24 zmm accumulators + 4 packed-B vectors + 1 broadcast = 29 of the 32
//!   vector registers — using explicit `_mm512_mul_ps` + `_mm512_add_ps`.
//!   This is the only `unsafe` in the workspace; each call site proves the
//!   CPU feature and the slice bounds it relies on.
//! * **portable** (everything else, and any `n < 64` where a 64-wide panel
//!   would be all edge): a safe 8×8 scalar tile the auto-vectorizer lowers
//!   to whatever the target baseline offers.
//!
//! # Bit-identity with `Reference`
//!
//! Tiling reorders *which* output element is computed when — never the
//! additions *within* one element. Every `C[i,j]` starts at `+0.0` and
//! accumulates its `k` products in strictly increasing `k` order (KC-blocks
//! ascend, `kk` ascends inside the micro-kernel, and the register tile
//! round-trips through memory between KC-blocks exactly — f32 store/load
//! is lossless). The wide kernel deliberately issues *separate* IEEE
//! multiply and add instructions rather than FMA: a fused multiply-add
//! skips the intermediate rounding of the product and would produce
//! different bits than the scalar reference. Vector lanes are distinct
//! output elements, so lane width never touches accumulation order. NT
//! packs Bᵀ into column panels and reproduces the reference's `dot4`
//! pattern exactly — four independent chains filled in ascending `k`, chain
//! sums folded left-to-right, then a sequential tail — with output columns
//! as vector lanes; edge columns fall back to the scalar `dot4` itself. TN
//! is an exact transpose of A fed to the NN core, whose `k`-order is the
//! reference TN's `i`-order. The proptests in `tests/` pin all of this
//! bitwise.
//!
//! # The FMA tier
//!
//! [`TiledFma`] runs the same tiling with `_mm512_fmadd_ps` in the full
//! wide micro-kernels (NN and NT). Skipping the product's intermediate
//! rounding changes low bits, so this tier is **not** bit-identical to the
//! oracle; it is pinned to a tolerance band instead: per output element the
//! absolute error is bounded by `2 (k+1) ε · Σₚ|A[i,p]||B[p,j]|` (each of
//! the ≤ k+1 fused/rounded steps contributes at most one half-ulp of the
//! running magnitude bound, doubled for slack). Where the wide kernel does
//! not run (no AVX-512F, or edge tiles), `TiledFma` computes exactly the
//! same bits as [`Tiled`] — the band holds trivially. Runs whose tests
//! assert bit-identity (elastic re-shard pins, checkpoint-resume pins) must
//! not use it; the CLI rejects those combinations.

use crate::ops::backend::{Activation, MatmulBackend};
use crate::ops::matmul::{dot4, KC, PAR_THRESHOLD};
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Rows of C per parallel task on the portable path.
pub(crate) const MC: usize = 64;
/// Portable micro-tile height (rows of A per register block).
pub(crate) const MR: usize = 8;
/// Portable micro-tile width (columns of B per register block).
pub(crate) const NR: usize = 8;
/// Wide-path micro-tile height: 6 rows × 4 zmm of accumulator.
pub(crate) const MR_W: usize = 6;
/// Wide-path micro-tile height for the FMA tier: 5 rows keeps the live
/// register count at 25 zmm so the allocator never re-folds B loads into
/// the FMAs (see [`micro_full_wide`]). Divides [`MC_W`] exactly, like 6.
pub(crate) const MR_W_FMA: usize = 5;
/// Wide-path micro-tile width: 64 columns = 4 × 16 f32 lanes.
pub(crate) const NR_W: usize = 64;
/// Rows of C per parallel task on the wide path — a multiple of [`MR_W`]
/// so full-height chunks contain no row edge at all.
pub(crate) const MC_W: usize = 60;
/// Wide-path reduction block: 128 rows × 64 cols × 4 B = 32 KiB, so one
/// packed-B panel stays L1-resident under the micro-kernel. Block height
/// never affects accumulation order (each element still sums its products
/// in strictly ascending `k`), so this is free to differ from [`KC`].
pub(crate) const KC_W: usize = 128;
/// Output columns per packed-Bᵀ panel on the portable NT path. Matches the
/// NN micro-tile width so the autovectorizer sees the same 8-wide rows.
const NT_NR: usize = NR;
/// Output columns per packed-Bᵀ panel on the wide NT path: 64 = 4 zmm of
/// lanes per chain accumulator. One full-k panel at `k = 512` is 128 KiB —
/// L2-resident while every A row of an MC-chunk streams over it.
const NT_NR_W: usize = NR_W;

/// Whether this host runs the wide (AVX-512) micro-kernel. Benchmarks use
/// this to decide which performance floor to hold [`Tiled`] to — results
/// are bit-identical on both paths, only the throughput differs.
pub fn wide_kernel_available() -> bool {
    avx512_available()
}

/// Whether the wide AVX-512 micro-kernel may be used. Checked once per
/// GEMM call; `std` caches the CPUID probe behind an atomic.
#[inline]
fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// B repacked into KC-high, `nr`-wide, zero-padded column panels.
///
/// Layout: KC-blocks in ascending `k0` order; within a block, `n_panels`
/// panels of `kc·nr` contiguous floats. Offset arithmetic stays exact for
/// the ragged final KC-block because every *preceding* block has full
/// height: `block_base = k0 · n_panels · nr`.
///
/// The buffer is explicitly aligned to 64 bytes (one cache line, one zmm):
/// `vec![0.0f32; …]` alignment depends on where the allocator happens to
/// place a large block — page-aligned from a fresh mmap, but only 16-byte
/// aligned once heap churn raises glibc's mmap threshold — and a 16-byte
/// base makes three of every four 64-byte panel loads straddle a cache
/// line. The arithmetic-bound exact kernels hide that; the load-bound FMA
/// kernel measurably does not.
struct PackedB {
    data: Vec<f32>,
    /// Offset (in floats) of the first 64-byte-aligned element of `data`.
    align_off: usize,
    n_panels: usize,
    nr: usize,
}

impl PackedB {
    fn pack(bv: &[f32], k: usize, n: usize, nr: usize, kcb: usize) -> PackedB {
        let n_panels = n.div_ceil(nr);
        let len = k * n_panels * nr;
        // Over-allocate one cache line and skip to the aligned start; the
        // Vec's heap block never moves, so the offset stays valid.
        let mut data = vec![0.0f32; len + 16];
        let align_off = (data.as_ptr() as usize).wrapping_neg() % 64 / 4;
        let floats = &mut data[align_off..align_off + len];
        // kk-outer traversal: each B row is read once, sequentially, and
        // scattered to its panels — sequential reads beat sequential
        // writes once B outgrows L2.
        for k0 in (0..k).step_by(kcb) {
            let kc = (k0 + kcb).min(k) - k0;
            let block_base = k0 * n_panels * nr;
            for kk in 0..kc {
                let src = &bv[(k0 + kk) * n..(k0 + kk + 1) * n];
                for p in 0..n_panels {
                    let j0 = p * nr;
                    let width = nr.min(n - j0);
                    let dst = block_base + p * kc * nr + kk * nr;
                    floats[dst..dst + width].copy_from_slice(&src[j0..j0 + width]);
                }
            }
        }
        PackedB {
            data,
            align_off,
            n_panels,
            nr,
        }
    }

    /// The `kc`-row panel `p` of the KC-block starting at `k0`.
    #[inline]
    fn panel(&self, k0: usize, kc: usize, p: usize) -> &[f32] {
        let base = self.align_off + k0 * self.n_panels * self.nr + p * kc * self.nr;
        &self.data[base..base + kc * self.nr]
    }
}

/// Portable full MR×NR micro-kernel: every loop bound is a constant, so
/// the accumulator tile lives in registers and the inner loop compiles to
/// broadcast + multiply + add at whatever width the baseline ISA offers.
#[inline]
#[allow(clippy::too_many_arguments)] // the args *are* the tile coordinates; a struct would obscure the hot path
fn micro_full(
    av: &[f32],
    k: usize,
    ia0: usize,
    k0: usize,
    kc: usize,
    bpanel: &[f32],
    cchunk: &mut [f32],
    rc0: usize,
    n: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let base = (rc0 + r) * n + j0;
        accr.copy_from_slice(&cchunk[base..base + NR]);
    }
    for kk in 0..kc {
        let brow: &[f32; NR] = bpanel[kk * NR..kk * NR + NR].try_into().unwrap();
        for (r, accr) in acc.iter_mut().enumerate() {
            let aik = av[(ia0 + r) * k + k0 + kk];
            for (cj, &bj) in accr.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let base = (rc0 + r) * n + j0;
        cchunk[base..base + NR].copy_from_slice(accr);
    }
}

/// Wide full MR×NR_W micro-kernel: `MR` C rows × 4 zmm accumulators, with
/// one packed-B row (4 loads) and `MR` scalar broadcasts per `kk` step.
///
/// With `FMA = false`, multiply and add are issued as *separate* IEEE
/// instructions so every product rounds exactly like the scalar reference
/// and the backend stays bit-identical (see the module docs). With
/// `FMA = true` the pair fuses into `_mm512_fmadd_ps` — half the arithmetic
/// µops, low bits inside the documented tolerance band.
///
/// `MR` is a const parameter because the two tiers want different register
/// budgets: the exact tier runs 6 rows (24 accumulators + 4 B + 1
/// broadcast = 29 zmm) and is arithmetic-bound anyway, but at 6 rows the
/// register allocator is squeezed enough that it re-folds the four B
/// vectors into *every* multiply as memory operands — ~30 load µops per
/// `kk` instead of 10. Hidden under 48 arithmetic µops that is free; under
/// 24 fused FMAs it becomes the bottleneck. The FMA tier therefore runs 5
/// rows (25 zmm live), which keeps B in registers and the kernel on its
/// FMA-port bound — same 64 flops/cycle ceiling, actually reachable.
///
/// # Safety
///
/// Callers must guarantee:
/// * the CPU supports AVX-512F (`avx512_available()` returned true);
/// * `av` holds at least `(ia0 + MR - 1) * k + k0 + kc` elements;
/// * `bpanel` holds at least `kc * NR_W` elements;
/// * `cchunk` holds at least `(rc0 + MR - 1) * n + j0 + NR_W` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)] // same signature as micro_full — the tile coordinates
unsafe fn micro_full_wide<const FMA: bool, const MR: usize>(
    av: &[f32],
    k: usize,
    ia0: usize,
    k0: usize,
    kc: usize,
    bpanel: &[f32],
    cchunk: &mut [f32],
    rc0: usize,
    n: usize,
    j0: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(kc > 0 && (ia0 + MR - 1) * k + k0 + kc <= av.len());
    debug_assert!(kc * NR_W <= bpanel.len());
    debug_assert!((rc0 + MR - 1) * n + j0 + NR_W <= cchunk.len());

    let cp = cchunk.as_mut_ptr();
    let bp = bpanel.as_ptr();
    // Hoist the per-row A cursors so the k-loop does no index arithmetic.
    let mut arow = [av.as_ptr(); MR];
    for (r, ar) in arow.iter_mut().enumerate() {
        *ar = av.as_ptr().add((ia0 + r) * k + k0);
    }
    let mut acc = [[_mm512_setzero_ps(); 4]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let base = cp.add((rc0 + r) * n + j0);
        for (v, a) in accr.iter_mut().enumerate() {
            *a = _mm512_loadu_ps(base.add(v * 16));
        }
    }
    for kk in 0..kc {
        let brow = bp.add(kk * NR_W);
        let b0 = _mm512_loadu_ps(brow);
        let b1 = _mm512_loadu_ps(brow.add(16));
        let b2 = _mm512_loadu_ps(brow.add(32));
        let b3 = _mm512_loadu_ps(brow.add(48));
        for (r, accr) in acc.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*arow[r].add(kk));
            if FMA {
                accr[0] = _mm512_fmadd_ps(a, b0, accr[0]);
                accr[1] = _mm512_fmadd_ps(a, b1, accr[1]);
                accr[2] = _mm512_fmadd_ps(a, b2, accr[2]);
                accr[3] = _mm512_fmadd_ps(a, b3, accr[3]);
            } else {
                accr[0] = _mm512_add_ps(accr[0], _mm512_mul_ps(a, b0));
                accr[1] = _mm512_add_ps(accr[1], _mm512_mul_ps(a, b1));
                accr[2] = _mm512_add_ps(accr[2], _mm512_mul_ps(a, b2));
                accr[3] = _mm512_add_ps(accr[3], _mm512_mul_ps(a, b3));
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let base = cp.add((rc0 + r) * n + j0);
        for (v, a) in accr.iter().enumerate() {
            _mm512_storeu_ps(base.add(v * 16), *a);
        }
    }
}

/// Generic edge micro-kernel for ragged tiles (`rows < mr` and/or
/// `width < nr`), shared by both paths. Row-at-a-time with a stack
/// accumulator, loading and storing only the `width` valid columns so the
/// panel's zero padding never reaches C. Per element the products still
/// accumulate in ascending `kk` order — bit-identical by construction.
#[inline]
#[allow(clippy::too_many_arguments)] // tile coordinates plus the ragged rows/width pair
fn micro_edge(
    av: &[f32],
    k: usize,
    ia0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    bpanel: &[f32],
    nr: usize,
    cchunk: &mut [f32],
    rc0: usize,
    n: usize,
    j0: usize,
    width: usize,
) {
    debug_assert!(width <= nr && nr <= NR_W);
    let mut acc = [0.0f32; NR_W];
    for r in 0..rows {
        let arow = &av[(ia0 + r) * k + k0..][..kc];
        let crow = &mut cchunk[(rc0 + r) * n + j0..][..width];
        acc[..width].copy_from_slice(crow);
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &bpanel[kk * nr..][..width];
            for (cj, &bj) in acc[..width].iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
        crow.copy_from_slice(&acc[..width]);
    }
}

/// Apply the fused epilogue to a chunk of whole C rows, in `f32`, in the
/// same per-element order as the unfused `add_row_broadcast` + activation
/// sequence (so fused and unfused are bit-identical).
fn epilogue(cchunk: &mut [f32], n: usize, bias: Option<&[f32]>, act: Activation) {
    if bias.is_none() && act == Activation::Identity {
        return;
    }
    for row in cchunk.chunks_mut(n) {
        if let Some(bias) = bias {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        if act != Activation::Identity {
            for x in row.iter_mut() {
                *x = act.apply_scalar(*x);
            }
        }
    }
}

/// The shared NN core: `C = act(A·B + bias)` with B packed once and the
/// epilogue applied per row-chunk while it is still cache-resident.
/// `HalfCompute` reuses this on quantized operands. `fma` selects the fused
/// multiply-add variant of the *wide full* micro-kernel only — edge tiles
/// and the portable path always compute exactly, so `fma = true` differs
/// from `fma = false` only where the 6×64 tile runs.
pub(crate) fn tiled_nn(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&[f32]>,
    act: Activation,
    fma: bool,
) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    if k == 0 {
        // Empty reduction: C is all zeros, but the epilogue still applies.
        epilogue(c.as_mut_slice(), n, bias, act);
        return c;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fma;
    // The wide tile only pays when at least one panel is full-width.
    let wide = avx512_available() && n >= NR_W;
    let (mc, mr, nr, kcb) = if wide {
        (MC_W, MR_W, NR_W, KC_W)
    } else {
        (MC, MR, NR, KC)
    };
    // The FMA wide kernel runs 5-row tiles (see [`MR_W_FMA`]); the ragged
    // remainder rows fall to the exact edge kernel either way. Blocking
    // (`kcb`) is shared with the exact tier: measured on AVX-512 hosts,
    // L1-resident B panels beat a register-resident C with full-`k` panels
    // streaming from L2.
    let mr = if wide && fma { MR_W_FMA } else { mr };
    let (av, bv) = (a.as_slice(), b.as_slice());
    let packed = PackedB::pack(bv, k, n, nr, kcb);
    let packed = &packed;

    let body = |(chunk_idx, cchunk): (usize, &mut [f32])| {
        let ia0 = chunk_idx * mc;
        let rows = cchunk.len() / n;
        for k0 in (0..k).step_by(kcb) {
            let kc = (k0 + kcb).min(k) - k0;
            for p in 0..packed.n_panels {
                let j0 = p * nr;
                let width = nr.min(n - j0);
                let bpanel = packed.panel(k0, kc, p);
                let mut r = 0;
                while r < rows {
                    let rh = mr.min(rows - r);
                    if rh == mr && width == nr {
                        if wide {
                            #[cfg(target_arch = "x86_64")]
                            // SAFETY: `wide` proves AVX-512F support; the
                            // loop bounds keep `ia0+r+mr` rows inside
                            // `av`, `bpanel` is exactly `kc·NR_W` long, and
                            // `rc0+mr` rows × `j0+NR_W` cols sit inside
                            // this chunk (rh == mr, width == NR_W).
                            unsafe {
                                if fma {
                                    micro_full_wide::<true, MR_W_FMA>(
                                        av,
                                        k,
                                        ia0 + r,
                                        k0,
                                        kc,
                                        bpanel,
                                        cchunk,
                                        r,
                                        n,
                                        j0,
                                    );
                                } else {
                                    micro_full_wide::<false, MR_W>(
                                        av,
                                        k,
                                        ia0 + r,
                                        k0,
                                        kc,
                                        bpanel,
                                        cchunk,
                                        r,
                                        n,
                                        j0,
                                    );
                                }
                            }
                            #[cfg(not(target_arch = "x86_64"))]
                            unreachable!("wide path requires x86_64");
                        } else {
                            micro_full(av, k, ia0 + r, k0, kc, bpanel, cchunk, r, n, j0);
                        }
                    } else {
                        micro_edge(
                            av,
                            k,
                            ia0 + r,
                            rh,
                            k0,
                            kc,
                            bpanel,
                            nr,
                            cchunk,
                            r,
                            n,
                            j0,
                            width,
                        );
                    }
                    r += mr;
                }
            }
        }
        epilogue(cchunk, n, bias, act);
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(mc * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(mc * n)
            .enumerate()
            .for_each(body);
    }
    c
}

/// Bᵀ packed for the NT kernel: full-`k`-height, `nr`-wide column panels.
///
/// B is `[n, k]` row-major; panel `p` holds, at offset `kk·nr + lane`, the
/// value `B[(p·nr + lane)·k + kk]` — the transposed panel in the same
/// (`kk`-major, lane-minor) layout [`PackedB`] produces for NN, but at full
/// `k` height: the NT micro-kernel keeps four *chain* accumulators live
/// across the whole reduction (they cannot round-trip through C without
/// collapsing the chains), so there is no KC blocking to offset for. Only
/// the `n / nr` full panels are packed; ragged edge columns take the plain
/// [`dot4`] path over unpacked B rows.
fn pack_bt(bv: &[f32], k: usize, n: usize, nr: usize) -> (Vec<f32>, usize) {
    let full_panels = n / nr;
    let len = full_panels * k * nr;
    // 64-byte-align the panels, exactly as [`PackedB::pack`] does and for
    // the same reason: the wide NT kernel is load-bound, and a 16-byte
    // buffer base would split most of its 64-byte panel loads across
    // cache lines.
    let mut data = vec![0.0f32; len + 16];
    let align_off = (data.as_ptr() as usize).wrapping_neg() % 64 / 4;
    // Lane-outer traversal: each B row is read once, sequentially, and
    // scattered down its panel column (stride `nr`).
    for p in 0..full_panels {
        let panel = &mut data[align_off + p * k * nr..align_off + (p + 1) * k * nr];
        for lane in 0..nr {
            let src = &bv[(p * nr + lane) * k..(p * nr + lane + 1) * k];
            for (kk, &x) in src.iter().enumerate() {
                panel[kk * nr + lane] = x;
            }
        }
    }
    (data, align_off)
}

/// Portable NT micro-kernel: one A row × [`NT_NR`] output columns, columns
/// as lanes. Reproduces [`dot4`] per lane exactly — four independent
/// chains filled in ascending `k` (`chain = k mod 4`), chain sums folded
/// left-to-right, then a sequential tail — so the result is bit-identical
/// to the reference's scalar dot product.
#[inline]
fn micro_nt(arow: &[f32], bpanel: &[f32], cseg: &mut [f32]) {
    let k = arow.len();
    let mut acc = [[0.0f32; NT_NR]; 4];
    let chunks = k / 4;
    for t in 0..chunks {
        let p = t * 4;
        for (c, accc) in acc.iter_mut().enumerate() {
            let a = arow[p + c];
            let brow: &[f32; NT_NR] = bpanel[(p + c) * NT_NR..(p + c + 1) * NT_NR]
                .try_into()
                .unwrap();
            for (s, &bj) in accc.iter_mut().zip(brow) {
                *s += a * bj;
            }
        }
    }
    let mut s = [0.0f32; NT_NR];
    for (lane, sl) in s.iter_mut().enumerate() {
        *sl = ((acc[0][lane] + acc[1][lane]) + acc[2][lane]) + acc[3][lane];
    }
    for p in chunks * 4..k {
        let a = arow[p];
        let brow = &bpanel[p * NT_NR..(p + 1) * NT_NR];
        for (sl, &bj) in s.iter_mut().zip(brow) {
            *sl += a * bj;
        }
    }
    cseg.copy_from_slice(&s);
}

/// Wide NT micro-kernel: one A row × [`NT_NR_W`] output columns, with
/// 4 chains × 4 zmm of accumulators (16 registers) plus one broadcast and
/// four packed-B loads per `k` step. Per lane this is exactly [`dot4`]'s
/// accumulation order (see [`micro_nt`]); with `FMA = true` the
/// multiply-add pairs fuse and land in the documented tolerance band
/// instead.
///
/// # Safety
///
/// Callers must guarantee the CPU supports AVX-512F, `bpanel` holds at
/// least `arow.len() * NT_NR_W` elements, and `cseg` holds at least
/// `NT_NR_W` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_nt_wide<const FMA: bool>(arow: &[f32], bpanel: &[f32], cseg: &mut [f32]) {
    use std::arch::x86_64::*;
    let k = arow.len();
    debug_assert!(k * NT_NR_W <= bpanel.len());
    debug_assert!(NT_NR_W <= cseg.len());
    let ap = arow.as_ptr();
    let bp = bpanel.as_ptr();
    let mut acc = [[_mm512_setzero_ps(); 4]; 4]; // [chain][vec]
    let chunks = k / 4;
    for t in 0..chunks {
        let p = t * 4;
        for (c, accc) in acc.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(p + c));
            let brow = bp.add((p + c) * NT_NR_W);
            for (v, s) in accc.iter_mut().enumerate() {
                let bj = _mm512_loadu_ps(brow.add(v * 16));
                *s = if FMA {
                    _mm512_fmadd_ps(a, bj, *s)
                } else {
                    _mm512_add_ps(*s, _mm512_mul_ps(a, bj))
                };
            }
        }
    }
    // Chain sums fold left-to-right — per lane, dot4's exact order.
    let mut s = [_mm512_setzero_ps(); 4];
    for (v, sv) in s.iter_mut().enumerate() {
        *sv = _mm512_add_ps(
            _mm512_add_ps(_mm512_add_ps(acc[0][v], acc[1][v]), acc[2][v]),
            acc[3][v],
        );
    }
    for p in chunks * 4..k {
        let a = _mm512_set1_ps(*ap.add(p));
        let brow = bp.add(p * NT_NR_W);
        for (v, sv) in s.iter_mut().enumerate() {
            let bj = _mm512_loadu_ps(brow.add(v * 16));
            *sv = if FMA {
                _mm512_fmadd_ps(a, bj, *sv)
            } else {
                _mm512_add_ps(*sv, _mm512_mul_ps(a, bj))
            };
        }
    }
    let cp = cseg.as_mut_ptr();
    for (v, sv) in s.iter().enumerate() {
        _mm512_storeu_ps(cp.add(v * 16), *sv);
    }
}

/// NT kernel: Bᵀ is packed once into full-`k` column panels, then each
/// panel stays cache-resident while every A row of the chunk streams over
/// it (panel-outer, row-inner — the old per-element `dot4` walk streamed
/// all of B past every row and lost to the reference). Ragged edge columns
/// (`n mod nr`) take the plain [`dot4`] path. Bit-identical to the
/// reference for `fma = false`; see the module docs for the `fma = true`
/// band.
pub(crate) fn tiled_nt(a: &Tensor, b: &Tensor, fma: bool) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fma;
    let (av, bv) = (a.as_slice(), b.as_slice());
    let wide = avx512_available() && n >= NT_NR_W;
    let nr = if wide { NT_NR_W } else { NT_NR };
    let full_panels = n / nr;
    let (packed, align_off) = pack_bt(bv, k, n, nr);
    let packed = &packed;

    let body = |(chunk_idx, cchunk): (usize, &mut [f32])| {
        let ia0 = chunk_idx * MC;
        let rows = cchunk.len() / n;
        for p in 0..full_panels {
            let j0 = p * nr;
            let bpanel = &packed[align_off + p * k * nr..align_off + (p + 1) * k * nr];
            for r in 0..rows {
                let arow = &av[(ia0 + r) * k..(ia0 + r + 1) * k];
                let cseg = &mut cchunk[r * n + j0..r * n + j0 + nr];
                if wide {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: `wide` proves AVX-512F support; `bpanel` is
                    // exactly `k·NT_NR_W` long and `cseg` exactly `NT_NR_W`.
                    unsafe {
                        if fma {
                            micro_nt_wide::<true>(arow, bpanel, cseg);
                        } else {
                            micro_nt_wide::<false>(arow, bpanel, cseg);
                        }
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    unreachable!("wide path requires x86_64");
                } else {
                    micro_nt(arow, bpanel, cseg);
                }
            }
        }
        for r in 0..rows {
            let arow = &av[(ia0 + r) * k..(ia0 + r + 1) * k];
            for j in full_panels * nr..n {
                cchunk[r * n + j] = dot4(arow, &bv[j * k..(j + 1) * k]);
            }
        }
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(MC * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(MC * n)
            .enumerate()
            .for_each(body);
    }
    c
}

/// Cache-blocked, packed, register-tiled kernels — bit-identical to
/// [`Reference`](crate::ops::matmul::Reference) on every f32 input.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tiled;

impl MatmulBackend for Tiled {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        tiled_nn(a, b, None, Activation::Identity, false)
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        tiled_nt(a, b, false)
    }

    /// TN as an exact transpose of A fed to the NN core: the core's
    /// ascending-`k` accumulation *is* the reference TN's ascending-`i`
    /// accumulation, so the results are bit-identical.
    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_tn: outer dims {} vs {}",
            a.rows(),
            b.rows()
        );
        tiled_nn(&a.transposed(), b, None, Activation::Identity, false)
    }

    fn matmul_bias_act(
        &self,
        a: &Tensor,
        b: &Tensor,
        bias: Option<&[f32]>,
        act: Activation,
    ) -> Tensor {
        tiled_nn(a, b, bias, act, false)
    }
}

/// The same tiling as [`Tiled`] with fused multiply-add in the wide full
/// micro-kernels — roughly half the arithmetic µops where the 6×64 tile
/// runs, at the price of bit-identity: results sit in a tolerance band of
/// the oracle (see the module docs) rather than matching it exactly. Opt-in
/// via `--compute-backend tiled:fma`; rejected wherever a run promises
/// bit-pinned comparisons.
#[derive(Debug, Clone, Copy, Default)]
pub struct TiledFma;

impl MatmulBackend for TiledFma {
    fn name(&self) -> &'static str {
        "tiled:fma"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        tiled_nn(a, b, None, Activation::Identity, true)
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        tiled_nt(a, b, true)
    }

    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_tn: outer dims {} vs {}",
            a.rows(),
            b.rows()
        );
        tiled_nn(&a.transposed(), b, None, Activation::Identity, true)
    }

    fn matmul_bias_act(
        &self,
        a: &Tensor,
        b: &Tensor,
        bias: Option<&[f32]>,
        act: Activation,
    ) -> Tensor {
        tiled_nn(a, b, bias, act, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::Reference;
    use crate::rng::Rng;

    fn assert_bitwise(x: &Tensor, y: &Tensor, what: &str) {
        assert_eq!(x.shape(), y.shape(), "{what}: shape");
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    /// Shapes chosen to hit: tiny, MR/NR-ragged edges, KC-non-dividing k,
    /// multi-KC-block k, the serial/parallel boundary, multi-chunk m, and
    /// (on AVX-512 hosts) the wide path's full tiles plus both of its edge
    /// kinds — ragged rows mod MR_W and ragged columns mod NR_W.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (9, 7, 17),
            (64, 64, 64),
            (65, 257, 66),
            (64, 300, 69),
            (130, 31, 70),
            (61, 500, 131),
            (128, 64, 128),
        ]
    }

    #[test]
    fn nn_bitwise_matches_reference() {
        let mut rng = Rng::seed_from(11);
        for (m, k, n) in shapes() {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_bitwise(
                &Tiled.matmul(&a, &b),
                &Reference.matmul(&a, &b),
                &format!("nn {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn nt_bitwise_matches_reference() {
        let mut rng = Rng::seed_from(12);
        for (m, k, n) in shapes() {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k], 1.0, &mut rng);
            assert_bitwise(
                &Tiled.matmul_nt(&a, &b),
                &Reference.matmul_nt(&a, &b),
                &format!("nt {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn tn_bitwise_matches_reference() {
        let mut rng = Rng::seed_from(13);
        for (m, k, n) in shapes() {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[m, n], 1.0, &mut rng);
            assert_bitwise(
                &Tiled.matmul_tn(&a, &b),
                &Reference.matmul_tn(&a, &b),
                &format!("tn {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        for (m, k, n) in [(0, 4, 3), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
            assert_eq!(
                Tiled
                    .matmul(&Tensor::zeros(&[m, k]), &Tensor::zeros(&[k, n]))
                    .shape(),
                &[m, n]
            );
            assert_eq!(
                Tiled
                    .matmul_nt(&Tensor::zeros(&[m, k]), &Tensor::zeros(&[n, k]))
                    .shape(),
                &[m, n]
            );
            assert_eq!(
                Tiled
                    .matmul_tn(&Tensor::zeros(&[m, k]), &Tensor::zeros(&[m, n]))
                    .shape(),
                &[k, n]
            );
        }
    }

    /// The fused epilogue must equal the unfused sequence bit-for-bit, and
    /// (because Tiled == Reference bitwise) also the Reference default
    /// composition. k == 0 checks that the epilogue still fires on an empty
    /// reduction.
    #[test]
    fn fused_epilogue_bitwise_matches_unfused() {
        let mut rng = Rng::seed_from(14);
        for (m, k, n) in [(5, 4, 3), (65, 257, 66), (9, 0, 7)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let bias: Vec<f32> = (0..n).map(|j| (j as f32) * 0.25 - 1.0).collect();
            for act in [Activation::Identity, Activation::Gelu, Activation::Relu] {
                for bias_opt in [Some(bias.as_slice()), None] {
                    let fused = Tiled.matmul_bias_act(&a, &b, bias_opt, act);
                    let mut manual = Tiled.matmul(&a, &b);
                    if let Some(bs) = bias_opt {
                        manual.add_row_broadcast(bs);
                    }
                    act.apply(&mut manual);
                    assert_bitwise(&fused, &manual, &format!("fused {m}x{k}x{n} {act:?}"));
                    let ref_fused = Reference.matmul_bias_act(&a, &b, bias_opt, act);
                    assert_bitwise(&fused, &ref_fused, &format!("vs ref {m}x{k}x{n} {act:?}"));
                }
            }
        }
    }

    /// The per-element magnitude bound `Σₚ|A[i,p]||B[p,j]|` used by the
    /// FMA tolerance band.
    fn abs_bound(a: &Tensor, b: &Tensor, nt: bool) -> Tensor {
        let (m, k) = (a.rows(), a.cols());
        let n = if nt { b.rows() } else { b.cols() };
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    let bv = if nt { b.at(j, p) } else { b.at(p, j) };
                    s += (a.at(i, p) * bv).abs() as f64;
                }
                c.set(i, j, s as f32);
            }
        }
        c
    }

    /// `TiledFma` must sit inside the documented tolerance band of the
    /// oracle: per element, `|Δ| ≤ 2 (k+1) ε · Σ|a||b|` (see the module
    /// docs). Exercises NN, NT, TN and the fused epilogue on shapes that
    /// hit the wide path, its edges, and the portable path.
    #[test]
    fn fma_variant_is_within_the_documented_band() {
        let mut rng = Rng::seed_from(15);
        for (m, k, n) in shapes() {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let tol_of = |bound: f32, k: usize| 2.0 * (k as f32 + 1.0) * f32::EPSILON * bound;
            {
                let b = Tensor::randn(&[k, n], 1.0, &mut rng);
                let exact = Reference.matmul(&a, &b);
                let fma = TiledFma.matmul(&a, &b);
                let bound = abs_bound(&a, &b, false);
                for i in 0..m * n {
                    let d = (exact.as_slice()[i] - fma.as_slice()[i]).abs();
                    assert!(
                        d <= tol_of(bound.as_slice()[i], k),
                        "nn {m}x{k}x{n} elem {i}: Δ={d}"
                    );
                }
            }
            {
                let b = Tensor::randn(&[n, k], 1.0, &mut rng);
                let exact = Reference.matmul_nt(&a, &b);
                let fma = TiledFma.matmul_nt(&a, &b);
                let bound = abs_bound(&a, &b, true);
                for i in 0..m * n {
                    let d = (exact.as_slice()[i] - fma.as_slice()[i]).abs();
                    assert!(
                        d <= tol_of(bound.as_slice()[i], k),
                        "nt {m}x{k}x{n} elem {i}: Δ={d}"
                    );
                }
            }
            {
                let b = Tensor::randn(&[m, n], 1.0, &mut rng);
                let exact = Reference.matmul_tn(&a, &b);
                let fma = TiledFma.matmul_tn(&a, &b);
                let bound = abs_bound(&a.transposed(), &b, false);
                for i in 0..k * n {
                    let d = (exact.as_slice()[i] - fma.as_slice()[i]).abs();
                    assert!(
                        d <= tol_of(bound.as_slice()[i], m),
                        "tn {m}x{k}x{n} elem {i}: Δ={d}"
                    );
                }
            }
        }
    }

    /// Where the wide kernel cannot run (portable path: `n < NR_W`, or no
    /// AVX-512), `TiledFma` computes exactly the same bits as `Tiled` —
    /// FMA only ever fires inside the wide full micro-kernels.
    #[test]
    fn fma_equals_tiled_bitwise_on_the_portable_path() {
        let mut rng = Rng::seed_from(16);
        for (m, k, n) in [(9, 33, 7), (40, 120, 63), (130, 31, 8)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_bitwise(
                &TiledFma.matmul(&a, &b),
                &Tiled.matmul(&a, &b),
                &format!("portable nn {m}x{k}x{n}"),
            );
            let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
            assert_bitwise(
                &TiledFma.matmul_nt(&a, &bt),
                &Tiled.matmul_nt(&a, &bt),
                &format!("portable nt {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn nan_propagates_through_zero_weights() {
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::NAN, 2.0, 3.0], &[2, 2]);
        let c = Tiled.matmul(&a, &b);
        assert!(c.at(0, 0).is_nan() && c.at(0, 1).is_nan());
    }
}
