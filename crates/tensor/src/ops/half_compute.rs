//! [`HalfCompute`]: native half-precision storage-and-compute GEMM.
//!
//! The SW26010-Pro's CPEs execute FP16/BF16 vector arithmetic in hardware,
//! with products widened into `f32` accumulators. This backend reproduces
//! those numerics exactly on top of the workspace's software half types:
//!
//! 1. both operands are rounded through the configured 16-bit format using
//!    the same [`crate::pack`] conversions the wire-compression path uses
//!    (round-to-nearest-even, FP16 gradual underflow, saturation to ±∞) —
//!    this models *storing* A and B natively in half precision;
//! 2. the [`Tiled`](crate::ops::tiled) kernels then run over the quantized
//!    values. Every half×half product is exactly representable in `f32`
//!    (11×11 or 8×8 significant bits ≪ 24), so an `f32` kernel over
//!    quantized operands computes bit-for-bit what a native half multiplier
//!    feeding an `f32` accumulator would;
//! 3. the bias and activation epilogue stays in `f32` — epilogues run at
//!    accumulator precision, as on the real hardware.
//!
//! Consequence (pinned by tests): `HalfCompute` equals `Tiled` run on
//! pre-quantized operands bitwise, and differs from the f32 oracle only by
//! the input-rounding error, which the E24 mixed-precision tolerance band
//! already budgets for.

use crate::dtype::DType;
use crate::ops::backend::{Activation, MatmulBackend};
use crate::ops::tiled::Tiled;
use crate::pack::{pack_slice, unpack_slice};
use crate::tensor::Tensor;

/// Tiled kernels over operands stored and multiplied in a 16-bit format,
/// accumulating in `f32`.
#[derive(Debug, Clone, Copy)]
pub struct HalfCompute {
    dtype: DType,
}

impl HalfCompute {
    /// # Panics
    /// Panics on [`DType::F32`] — half compute needs a 16-bit format.
    pub fn new(dtype: DType) -> HalfCompute {
        assert_ne!(
            dtype,
            DType::F32,
            "HalfCompute needs a 16-bit dtype (fp16 or bf16)"
        );
        HalfCompute { dtype }
    }

    /// Round a tensor through the 16-bit storage format via the same
    /// pack/unpack kernels the wire path uses. The u16 round trip *is* the
    /// native storage story: these are the bits a half-precision buffer
    /// would hold.
    fn quantize(&self, t: &Tensor) -> Tensor {
        let bits = pack_slice(self.dtype, t.as_slice());
        Tensor::from_vec(unpack_slice(self.dtype, &bits), t.shape())
    }
}

impl MatmulBackend for HalfCompute {
    fn name(&self) -> &'static str {
        match self.dtype {
            DType::F16 => "half:fp16",
            DType::BF16 => "half:bf16",
            DType::F32 => unreachable!("rejected by HalfCompute::new"),
        }
    }

    fn compute_dtype(&self) -> DType {
        self.dtype
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        Tiled.matmul(&self.quantize(a), &self.quantize(b))
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        Tiled.matmul_nt(&self.quantize(a), &self.quantize(b))
    }

    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor {
        Tiled.matmul_tn(&self.quantize(a), &self.quantize(b))
    }

    /// Quantized operands, `f32` epilogue: the bias vector and activation
    /// are *not* rounded to half — they apply at accumulator precision.
    fn matmul_bias_act(
        &self,
        a: &Tensor,
        b: &Tensor,
        bias: Option<&[f32]>,
        act: Activation,
    ) -> Tensor {
        Tiled.matmul_bias_act(&self.quantize(a), &self.quantize(b), bias, act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::Reference;
    use crate::rng::Rng;

    fn assert_bitwise(x: &Tensor, y: &Tensor, what: &str) {
        assert_eq!(x.shape(), y.shape(), "{what}: shape");
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    /// On operands already representable in the half format, quantization
    /// is the identity, so HalfCompute == Tiled == Reference bitwise.
    #[test]
    fn equals_f32_backends_on_prequantized_operands() {
        let mut rng = Rng::seed_from(21);
        for dt in [DType::F16, DType::BF16] {
            let hc = HalfCompute::new(dt);
            let mut a = Tensor::randn(&[33, 65], 1.0, &mut rng);
            let mut b = Tensor::randn(&[65, 18], 1.0, &mut rng);
            dt.round_trip_slice(a.as_mut_slice());
            dt.round_trip_slice(b.as_mut_slice());
            assert_bitwise(
                &hc.matmul(&a, &b),
                &Reference.matmul(&a, &b),
                &format!("{dt} nn"),
            );
            let bt = {
                let mut t = Tensor::randn(&[18, 65], 1.0, &mut rng);
                dt.round_trip_slice(t.as_mut_slice());
                t
            };
            assert_bitwise(
                &hc.matmul_nt(&a, &bt),
                &Reference.matmul_nt(&a, &bt),
                &format!("{dt} nt"),
            );
            let b2 = {
                let mut t = Tensor::randn(&[33, 18], 1.0, &mut rng);
                dt.round_trip_slice(t.as_mut_slice());
                t
            };
            assert_bitwise(
                &hc.matmul_tn(&a, &b2),
                &Reference.matmul_tn(&a, &b2),
                &format!("{dt} tn"),
            );
        }
    }

    /// Against the f32 oracle the only error source is input rounding:
    /// relative error stays within a few ulps of the half format scaled by
    /// the reduction length.
    #[test]
    fn close_to_f32_oracle_within_format_tolerance() {
        let mut rng = Rng::seed_from(22);
        let a = Tensor::randn(&[20, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 12], 1.0, &mut rng);
        let exact = Reference.matmul(&a, &b);
        for (dt, tol) in [(DType::F16, 5e-2), (DType::BF16, 3e-1)] {
            let c = HalfCompute::new(dt).matmul(&a, &b);
            for (x, y) in c.as_slice().iter().zip(exact.as_slice()) {
                assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{dt}: {x} vs {y}");
            }
        }
    }

    /// Bias and activation must apply in f32 — quantizing the epilogue
    /// would double-round the accumulator, which real hardware does not do.
    #[test]
    fn epilogue_applies_at_f32_precision() {
        let mut rng = Rng::seed_from(23);
        let mut a = Tensor::randn(&[4, 8], 1.0, &mut rng);
        let mut b = Tensor::randn(&[8, 6], 1.0, &mut rng);
        DType::BF16.round_trip_slice(a.as_mut_slice());
        DType::BF16.round_trip_slice(b.as_mut_slice());
        // A bias with more mantissa bits than bf16 can hold: if the
        // epilogue quantized, this precision would vanish.
        let bias = [1.0000001f32; 6];
        let hc = HalfCompute::new(DType::BF16);
        let fused = hc.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu);
        let expect = Reference.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu);
        assert_bitwise(&fused, &expect, "f32 epilogue");
    }

    #[test]
    fn names_and_dtype_round_trip() {
        assert_eq!(HalfCompute::new(DType::F16).name(), "half:fp16");
        assert_eq!(HalfCompute::new(DType::BF16).name(), "half:bf16");
        assert_eq!(HalfCompute::new(DType::BF16).compute_dtype(), DType::BF16);
    }

    #[test]
    #[should_panic(expected = "16-bit dtype")]
    fn f32_is_rejected() {
        HalfCompute::new(DType::F32);
    }
}
