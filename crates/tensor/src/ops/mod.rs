//! Compute kernels over [`crate::Tensor`].
//!
//! These are the substitute for the hand-written SW26010-Pro CPE kernels:
//! blocked for cache locality and parallelized across cores with rayon, per
//! the project's HPC coding guides.
//!
//! Matrix multiplication is pluggable: the free functions in [`mod@matmul`]
//! dispatch to the calling thread's [`MatmulBackend`] (see [`backend`]),
//! one of [`matmul::Reference`] (the oracle), [`tiled::Tiled`]
//! (packed/cache-tiled, bit-identical to the oracle on f32),
//! [`tiled::TiledFma`] (fused multiply-add, tolerance-banded), or
//! [`half_compute::HalfCompute`] (native f16/bf16 storage-and-compute with
//! f32 accumulation). The row-structured kernels — softmax, layer-norm
//! forward, the Adam update — dispatch the same way through
//! [`rowops::RowOpsBackend`], whose two tiers (reference / vectorized) are
//! bit-identical to each other.

pub mod backend;
pub mod elementwise;
pub mod half_compute;
pub mod matmul;
pub mod rowops;
pub mod softmax;
pub mod tiled;

pub use backend::{
    current_backend, install_backend, process_backend, set_process_backend, Activation,
    BackendGuard, ComputeBackend, MatmulBackend,
};
pub use elementwise::{gelu, gelu_backward, relu, relu_backward};
pub use half_compute::HalfCompute;
pub use matmul::{matmul, matmul_bias_act, matmul_nt, matmul_tn, Reference};
pub use rowops::{
    adam_update, current_row_ops, install_row_ops, layernorm_rows, process_row_ops,
    set_process_row_ops, AdamStep, LayerNormOut, ReferenceRowOps, RowOpsBackend, RowOpsGuard,
    VectorizedRowOps,
};
pub use softmax::{log_softmax_rows, softmax_rows, softmax_rows_inplace};
pub use tiled::{wide_kernel_available, Tiled, TiledFma};
