//! Compute kernels over [`crate::Tensor`].
//!
//! These are the substitute for the hand-written SW26010-Pro CPE kernels:
//! blocked for cache locality and parallelized across cores with rayon, per
//! the project's HPC coding guides.

pub mod elementwise;
pub mod matmul;
pub mod softmax;

pub use elementwise::{gelu, gelu_backward, relu, relu_backward};
pub use matmul::{matmul, matmul_nt, matmul_tn};
pub use softmax::{log_softmax_rows, softmax_rows, softmax_rows_inplace};
