//! Blocked, rayon-parallel matrix multiplication.
//!
//! Three layouts cover everything a transformer's forward and backward pass
//! needs, without ever materializing a transposed copy:
//!
//! * [`matmul`]    — `C[m,n]  = A[m,k] · B[k,n]`          (forward)
//! * [`matmul_nt`] — `C[m,n]  = A[m,k] · B[n,k]ᵀ`         (dX = dY · Wᵀ)
//! * [`matmul_tn`] — `C[k,n]  = A[m,k]ᵀ · B[m,n]`         (dW = Xᵀ · dY)
//!
//! The inner loops are written in the cache-friendly order for row-major
//! storage (`ikj` for NN, dot-product rows for NT, row-`axpy` for TN), with a
//! K-panel blocking so the streamed operand stays in L1/L2. Rows of the
//! output are distributed across the rayon pool; each task writes a disjoint
//! chunk, so there is no synchronization in the hot loop.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Panel size along the reduction dimension; 256 f32 = 1 KiB per row panel,
/// mirroring the 256 KiB LDM budget of an SW26010-Pro CPE cluster when 64
/// rows are in flight.
const KC: usize = 256;

/// Below this many output elements the parallel dispatch overhead outweighs
/// the work; run single-threaded.
const PAR_THRESHOLD: usize = 64 * 64;

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());

    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &av[i * k..(i + 1) * k];
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for (kk, &aik) in arow[k0..k1].iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &bv[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` — i.e. rows of `C` are dot products of a row
/// of `A` with rows of `B`. This is the layout of `dX = dY · Wᵀ` when `W` is
/// stored `[in, out]` and of attention scores `Q · Kᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());

    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &av[i * k..(i + 1) * k];
        for (j, cj) in crow.iter_mut().enumerate() {
            let brow = &bv[j * k..(j + 1) * k];
            // Four-way unrolled dot product: gives the compiler independent
            // accumulation chains to vectorize.
            let mut acc = [0.0f32; 4];
            let chunks = k / 4;
            for t in 0..chunks {
                let p = t * 4;
                acc[0] += arow[p] * brow[p];
                acc[1] += arow[p + 1] * brow[p + 1];
                acc[2] += arow[p + 2] * brow[p + 2];
                acc[3] += arow[p + 3] * brow[p + 3];
            }
            let mut s = acc[0] + acc[1] + acc[2] + acc[3];
            for p in chunks * 4..k {
                s += arow[p] * brow[p];
            }
            *cj = s;
        }
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C[k,n] = A[m,k]ᵀ · B[m,n]` — the weight-gradient layout `dW = Xᵀ · dY`.
///
/// Parallelized over panels of output rows: each task owns rows `r0..r1` of
/// `C` and streams through all `m` rows of `A`/`B`, accumulating
/// `C[r,:] += A[i,r] * B[i,:]`. Writes are disjoint, reads are shared.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (mb, n) = (b.rows(), b.cols());
    assert_eq!(m, mb, "matmul_tn: outer dims {m} vs {mb}");
    let mut c = Tensor::zeros(&[k, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());

    // Panel of output rows per task: big enough to amortize streaming B.
    let panel = 64
        .max(k / (rayon::current_num_threads().max(1) * 4))
        .min(k.max(1));

    let body = |(p, cpanel): (usize, &mut [f32])| {
        let r0 = p * panel;
        let rows_here = cpanel.len() / n;
        for i in 0..m {
            let brow = &bv[i * n..(i + 1) * n];
            let arow = &av[i * k..(i + 1) * k];
            for r in 0..rows_here {
                let aik = arow[r0 + r];
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut cpanel[r * n..(r + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };

    if k * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(panel * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(panel * n)
            .enumerate()
            .for_each(body);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Straightforward reference implementation.
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i, p) * b.at(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-6));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from(2);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (17, 33, 9), (64, 128, 96)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert!(
                matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_nt_matches_transposed() {
        let mut rng = Rng::seed_from(3);
        for (m, k, n) in [(4, 8, 6), (31, 17, 13), (70, 70, 70)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k], 1.0, &mut rng);
            let expect = naive(&a, &b.transposed());
            assert!(matmul_nt(&a, &b).approx_eq(&expect, 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_tn_matches_transposed() {
        let mut rng = Rng::seed_from(4);
        for (m, k, n) in [(4, 8, 6), (29, 15, 11), (80, 100, 60)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[m, n], 1.0, &mut rng);
            let expect = naive(&a.transposed(), &b);
            assert!(matmul_tn(&a, &b).approx_eq(&expect, 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[130, 70], 1.0, &mut rng);
        let b = Tensor::randn(&[70, 140], 1.0, &mut rng);
        // 130*140 > PAR_THRESHOLD → exercises the rayon path.
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4));
        let bt = Tensor::randn(&[140, 70], 1.0, &mut rng);
        assert!(matmul_nt(&a, &bt).approx_eq(&naive(&a, &bt.transposed()), 1e-4));
        let b2 = Tensor::randn(&[130, 90], 1.0, &mut rng);
        assert!(matmul_tn(&a, &b2).approx_eq(&naive(&a.transposed(), &b2), 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }
}
