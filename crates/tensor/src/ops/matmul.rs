//! Matrix multiplication: backend dispatch plus the [`Reference`] kernels.
//!
//! Three layouts cover everything a transformer's forward and backward pass
//! needs, without ever materializing a transposed copy:
//!
//! * [`matmul`]    — `C[m,n]  = A[m,k] · B[k,n]`          (forward)
//! * [`matmul_nt`] — `C[m,n]  = A[m,k] · B[n,k]ᵀ`         (dX = dY · Wᵀ)
//! * [`matmul_tn`] — `C[k,n]  = A[m,k]ᵀ · B[m,n]`         (dW = Xᵀ · dY)
//!
//! plus [`matmul_bias_act`], the fused `act(A·B + bias)` epilogue used by
//! the linear/FFN layers. The free functions are thin dispatchers: they
//! resolve the calling thread's [`MatmulBackend`] (see
//! [`crate::ops::backend`]), record the `compute.matmul.{flops,ns}` trace
//! counters when tracing is enabled, and delegate.
//!
//! [`Reference`] holds the original blocked, rayon-parallel kernels — the
//! correctness oracle every other backend is tested against. Its inner
//! loops run in the cache-friendly order for row-major storage (`ikj` for
//! NN, dot-product rows for NT, row-`axpy` for TN) with K-panel blocking so
//! the streamed operand stays in L1/L2. Rows of the output are distributed
//! across the rayon pool; each task writes a disjoint chunk, so there is no
//! synchronization in the hot loop.

use crate::ops::backend::{current_backend, Activation, MatmulBackend};
use crate::tensor::Tensor;
use bagualu_trace::{self as trace, names};
use rayon::prelude::*;

/// Panel size along the reduction dimension; 256 f32 = 1 KiB per row panel,
/// mirroring the 256 KiB LDM budget of an SW26010-Pro CPE cluster when 64
/// rows are in flight.
pub(crate) const KC: usize = 256;

/// Below this many output elements the parallel dispatch overhead outweighs
/// the work; run single-threaded. Shared by every backend so the
/// serial-vs-parallel boundary is one constant, tested in one place.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;

/// Record the compute counters around a kernel invocation. `flops` is the
/// multiply-add count `2·m·k·n`; the timer only runs when tracing is on.
#[inline]
fn traced(flops: u64, f: impl FnOnce() -> Tensor) -> Tensor {
    if trace::enabled() {
        let t0 = std::time::Instant::now();
        let c = f();
        trace::count(names::COMPUTE_MATMUL_NS, t0.elapsed().as_nanos() as u64);
        trace::count(names::COMPUTE_MATMUL_FLOPS, flops);
        c
    } else {
        f()
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`, on the calling thread's backend.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let flops = 2 * a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
    traced(flops, || current_backend().matmul(a, b))
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ`, on the calling thread's backend.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let flops = 2 * a.rows() as u64 * a.cols() as u64 * b.rows() as u64;
    traced(flops, || current_backend().matmul_nt(a, b))
}

/// `C[k,n] = A[m,k]ᵀ · B[m,n]`, on the calling thread's backend.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let flops = 2 * a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
    traced(flops, || current_backend().matmul_tn(a, b))
}

/// `C = act(A·B + bias)`, on the calling thread's backend. The epilogue
/// rides inside the kernel's timed span: its cost is attributed to compute,
/// where it executes.
pub fn matmul_bias_act(a: &Tensor, b: &Tensor, bias: Option<&[f32]>, act: Activation) -> Tensor {
    let flops = 2 * a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
    traced(flops, || current_backend().matmul_bias_act(a, b, bias, act))
}

/// Four-chain dot product: independent accumulation chains the compiler can
/// vectorize, summed left-to-right, then a sequential tail.
///
/// This exact pattern defines the NT accumulation order for *both*
/// [`Reference`] and the tiled backend — sharing the function is what makes
/// them bit-identical (see the backend contract in [`crate::ops::backend`]).
#[inline]
pub(crate) fn dot4(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut acc = [0.0f32; 4];
    let chunks = k / 4;
    for t in 0..chunks {
        let p = t * 4;
        acc[0] += a[p] * b[p];
        acc[1] += a[p + 1] * b[p + 1];
        acc[2] += a[p + 2] * b[p + 2];
        acc[3] += a[p + 3] * b[p + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for p in chunks * 4..k {
        s += a[p] * b[p];
    }
    s
}

/// The original blocked, rayon-parallel kernels — the correctness oracle.
///
/// One deliberate change from the historical code: the hot loops used to
/// skip multiplies where `a[i,k] == 0.0`. That skip silently dropped
/// NaN/inf propagation (IEEE 754 requires `0·NaN = NaN`) and paid a branch
/// per multiply; it is gone from every backend. For finite inputs the
/// results are bit-identical with or without the skip (adding an exact
/// `±0.0` product never changes a finite accumulator), which is pinned by
/// `zero_skip_removal_is_bit_identical_on_finite_data` below; the NaN
/// difference is documented by `zero_times_nan_propagates`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reference;

impl MatmulBackend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        reference_matmul(a, b)
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        reference_matmul_nt(a, b)
    }

    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor {
        reference_matmul_tn(a, b)
    }
}

/// `C[m,n] = A[m,k] · B[k,n]` with the reference kernel.
pub(crate) fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());

    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &av[i * k..(i + 1) * k];
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for (kk, &aik) in arow[k0..k1].iter().enumerate() {
                let brow = &bv[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` with the reference kernel — rows of `C` are
/// [`dot4`] products of a row of `A` with rows of `B`.
pub(crate) fn reference_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt: inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());

    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &av[i * k..(i + 1) * k];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = dot4(arow, &bv[j * k..(j + 1) * k]);
        }
    };

    if m * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice().chunks_mut(n).enumerate().for_each(body);
    }
    c
}

/// `C[k,n] = A[m,k]ᵀ · B[m,n]` with the reference kernel — the
/// weight-gradient layout `dW = Xᵀ · dY`.
///
/// Parallelized over panels of output rows: each task owns a contiguous
/// range of rows of `C` and streams through all `m` rows of `A`/`B`,
/// accumulating `C[r,:] += A[i,r] * B[i,:]`. Writes are disjoint, reads are
/// shared. Both the panel's first row and its row count derive from the
/// chunk the task was handed (`p * panel` and `cpanel.len() / n`), so a
/// ragged final panel — `k` not a multiple of the panel size, or `k`
/// smaller than one panel — can never drift out of agreement with the
/// chunking.
pub(crate) fn reference_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (mb, n) = (b.rows(), b.cols());
    assert_eq!(m, mb, "matmul_tn: outer dims {m} vs {mb}");
    let mut c = Tensor::zeros(&[k, n]);
    if m == 0 || k == 0 || n == 0 {
        return c;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());

    // Panel of output rows per task: big enough to amortize streaming B,
    // never larger than the k rows that exist.
    let panel = 64.max(k / (rayon::current_num_threads().max(1) * 4)).min(k);

    let body = |(p, cpanel): (usize, &mut [f32])| {
        let r0 = p * panel;
        debug_assert_eq!(cpanel.len() % n, 0, "panel chunk must be whole rows");
        let rows_here = cpanel.len() / n;
        debug_assert!(r0 + rows_here <= k);
        for i in 0..m {
            let brow = &bv[i * n..(i + 1) * n];
            let arow = &av[i * k..(i + 1) * k];
            for r in 0..rows_here {
                let aik = arow[r0 + r];
                let crow = &mut cpanel[r * n..(r + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };

    if k * n >= PAR_THRESHOLD {
        c.as_mut_slice()
            .par_chunks_mut(panel * n)
            .enumerate()
            .for_each(body);
    } else {
        c.as_mut_slice()
            .chunks_mut(panel * n)
            .enumerate()
            .for_each(body);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Straightforward reference implementation.
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(i, p) * b.at(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// The historical NN inner loop *with* the `aik == 0.0` skip, kept only
    /// here: it documents the behavior the skip used to cause.
    fn old_skipping_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for kk in 0..k {
                let aik = a.at(i, kk);
                if aik == 0.0 {
                    continue; // the old branch: silently drops 0·NaN
                }
                for j in 0..n {
                    c.set(i, j, c.at(i, j) + aik * b.at(kk, j));
                }
            }
        }
        c
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-6));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng::seed_from(2);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (17, 33, 9), (64, 128, 96)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert!(
                matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_nt_matches_transposed() {
        let mut rng = Rng::seed_from(3);
        for (m, k, n) in [(4, 8, 6), (31, 17, 13), (70, 70, 70)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[n, k], 1.0, &mut rng);
            let expect = naive(&a, &b.transposed());
            assert!(matmul_nt(&a, &b).approx_eq(&expect, 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_tn_matches_transposed() {
        let mut rng = Rng::seed_from(4);
        for (m, k, n) in [(4, 8, 6), (29, 15, 11), (80, 100, 60)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[m, n], 1.0, &mut rng);
            let expect = naive(&a.transposed(), &b);
            assert!(matmul_tn(&a, &b).approx_eq(&expect, 1e-4), "{m}x{k}x{n}");
        }
    }

    /// `k` smaller than one output-row panel, and panel-non-dividing `k`:
    /// the ragged final chunk must still agree with the oracle (regression
    /// for the panel row-range arithmetic).
    #[test]
    fn matmul_tn_ragged_panels_match_naive() {
        let mut rng = Rng::seed_from(6);
        // panel = max(64, ...) so k < 64 exercises k-smaller-than-panel;
        // k = 65 and 127 exercise a one-row and a near-full ragged tail.
        for (m, k, n) in [(40, 3, 9), (12, 65, 70), (33, 127, 17), (5, 64, 64)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[m, n], 1.0, &mut rng);
            let expect = naive(&a.transposed(), &b);
            assert!(matmul_tn(&a, &b).approx_eq(&expect, 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        for (m, k, n) in [(0, 4, 3), (4, 0, 3), (4, 3, 0), (0, 0, 0), (1, 1, 1)] {
            let a = Tensor::zeros(&[m, k]);
            let b = Tensor::zeros(&[k, n]);
            assert_eq!(matmul(&a, &b).shape(), &[m, n]);
            let bt = Tensor::zeros(&[n, k]);
            assert_eq!(matmul_nt(&a, &bt).shape(), &[m, n]);
            let b2 = Tensor::zeros(&[m, n]);
            assert_eq!(matmul_tn(&a, &b2).shape(), &[k, n]);
        }
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(&[130, 70], 1.0, &mut rng);
        let b = Tensor::randn(&[70, 140], 1.0, &mut rng);
        // 130*140 > PAR_THRESHOLD → exercises the rayon path.
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4));
        let bt = Tensor::randn(&[140, 70], 1.0, &mut rng);
        assert!(matmul_nt(&a, &bt).approx_eq(&naive(&a, &bt.transposed()), 1e-4));
        let b2 = Tensor::randn(&[130, 90], 1.0, &mut rng);
        assert!(matmul_tn(&a, &b2).approx_eq(&naive(&a.transposed(), &b2), 1e-4));
    }

    /// IEEE semantics: a zero weight must not mask a NaN (or inf) operand.
    /// The old `aik == 0.0` skip did exactly that — shown side by side.
    #[test]
    fn zero_times_nan_propagates() {
        // A = [0, 1] picks out b-row 1; b-row 0 carries the NaN that a
        // correct kernel must still propagate through the 0-weight.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::NAN, 2.0, 3.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert!(c.at(0, 0).is_nan() && c.at(0, 1).is_nan());
        let c = matmul_tn(&a.transposed(), &b);
        assert!(c.at(0, 0).is_nan() && c.at(0, 1).is_nan());
        // The documented old behavior: the skip swallowed the NaN.
        let old = old_skipping_matmul(&a, &b);
        assert_eq!(old.at(0, 0), 2.0);
        assert_eq!(old.at(0, 1), 3.0);
        // 0 · inf = NaN as well.
        let binf = Tensor::from_vec(vec![f32::INFINITY, 0.0, 2.0, 3.0], &[2, 2]);
        assert!(matmul(&a, &binf).at(0, 0).is_nan());
    }

    /// On finite data the skip never mattered: adding an exact ±0.0 product
    /// cannot change a finite accumulator (C starts at +0.0 and stays
    /// +0.0-or-nonzero under round-to-nearest). Sparse inputs with negative
    /// values exercise the −0.0 product case.
    #[test]
    fn zero_skip_removal_is_bit_identical_on_finite_data() {
        let mut rng = Rng::seed_from(9);
        let mut a = Tensor::randn(&[13, 21], 1.0, &mut rng);
        for (i, x) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *x = 0.0;
            }
        }
        let b = Tensor::randn(&[21, 8], 1.0, &mut rng);
        let new = matmul(&a, &b);
        let old = old_skipping_matmul(&a, &b);
        for (x, y) in new.as_slice().iter().zip(old.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }
}
