//! Numerically stable row-wise softmax: backend dispatch.
//!
//! The free functions here are thin dispatchers, exactly like the matmul
//! ones: they resolve the calling thread's
//! [`RowOpsBackend`](crate::ops::rowops::RowOpsBackend), record the
//! `compute.softmax.{flops,ns}` trace counters when tracing is enabled,
//! and delegate. The actual kernels — the reference tier's verbatim
//! historical loops and the bit-identical row-parallel vectorized tier —
//! live in [`mod@crate::ops::rowops`].

use crate::ops::rowops::{current_row_ops, traced_rowop, SOFTMAX_FLOPS_PER_ELEM};
use crate::tensor::Tensor;
use bagualu_trace::names;

/// Row-wise softmax of a 2-D tensor, in place, on the calling thread's
/// row-op backend. Uses the max-subtraction trick so
/// half-precision-scale logits cannot overflow the exponentials.
pub fn softmax_rows_inplace(x: &mut Tensor) {
    let flops = SOFTMAX_FLOPS_PER_ELEM * x.len() as u64;
    traced_rowop(
        names::COMPUTE_SOFTMAX_NS,
        names::COMPUTE_SOFTMAX_FLOPS,
        flops,
        || current_row_ops().softmax_rows_inplace(x),
    )
}

/// Row-wise softmax, returning a new tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise log-softmax, returning a new tensor, on the calling thread's
/// row-op backend. More accurate than taking `ln` of [`softmax_rows`] for
/// cross-entropy losses. Counted under the `compute.softmax.*` counters —
/// it is the same pass shape over the same logits.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let flops = SOFTMAX_FLOPS_PER_ELEM * x.len() as u64;
    traced_rowop(
        names::COMPUTE_SOFTMAX_NS,
        names::COMPUTE_SOFTMAX_FLOPS,
        flops,
        || current_row_ops().log_softmax_rows(x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&y), 1e-6));
    }

    #[test]
    fn stable_under_huge_logits() {
        let x = Tensor::from_vec(vec![1e4, 1e4 + 1.0], &[1, 2]);
        let s = softmax_rows(&x);
        assert!(!s.has_non_finite());
        assert!((s.at(0, 0) + s.at(0, 1) - 1.0).abs() < 1e-6);
        assert!(s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.5, 0.0], &[2, 2]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for i in 0..x.len() {
            assert!((ls.as_slice()[i] - s.as_slice()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let x = Tensor::zeros(&[1, 4]);
        let s = softmax_rows(&x);
        for &p in s.as_slice() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }
}
