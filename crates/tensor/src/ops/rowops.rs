//! The pluggable row-op seam: [`RowOpsBackend`] and its registry.
//!
//! PR 6 put GEMM behind [`MatmulBackend`](crate::ops::backend); this module
//! extends the same pattern to the remaining per-step hot loops — row-wise
//! softmax (attention scores, MoE gates, the loss), layer-norm forward, and
//! the element-wise Adam update — so the whole compute path of a training
//! step is backend-dispatch, not hard-coded loops. Resolution mirrors the
//! GEMM seam exactly: thread override ([`install_row_ops`]) → process
//! default ([`set_process_row_ops`]) → [`ReferenceRowOps`].
//!
//! # Contract
//!
//! Both tiers are **bit-identical** on every input:
//!
//! * [`ReferenceRowOps`] is the verbatim historical loops (the oracle the
//!   pinned trainer curves were recorded under).
//! * [`VectorizedRowOps`] keeps every *within-row* reduction in the same
//!   sequential order — reassociating a float sum changes bits, so sums
//!   never change shape — and takes its speed from what is exactly
//!   reorderable: rows are independent, so they fan out across the thread
//!   pool; layer-norm's normalize and scale-shift passes fuse into one
//!   (f32 store/load between passes is lossless, so fusing is exact); and
//!   the Adam update splits its four state slices at identical element
//!   boundaries across scoped threads.
//!
//! There is deliberately no FMA tier here: these ops are memory-bound
//! passes where fused arithmetic buys nothing, and keeping every row-op
//! tier bit-identical means only the GEMM choice (`tiled:fma`) ever moves
//! a loss curve.
//!
//! The free functions ([`softmax_rows_inplace`](crate::ops::softmax) and
//! friends, [`layernorm_rows`], [`adam_update`]) dispatch through the
//! registry and record `compute.{softmax,layernorm,adam}.{flops,ns}` trace
//! counters with *nominal* FLOP counts (documented per op) so traces can
//! attribute row-op time next to GEMM time.

use crate::ops::matmul::PAR_THRESHOLD;
use crate::tensor::Tensor;
use bagualu_trace::{self as trace, names};
use rayon::prelude::*;
use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// One Adam/AdamW update step's scalars, precomputed by the optimizer:
/// hyperparameters plus the bias-correction terms `1 − βᵢᵗ` for the current
/// step count `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamStep {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
    /// `1 − β₁ᵗ`.
    pub bc1: f32,
    /// `1 − β₂ᵗ`.
    pub bc2: f32,
}

/// Layer-norm forward outputs: the result plus the per-row cache the
/// backward pass needs.
#[derive(Debug, Clone)]
pub struct LayerNormOut {
    /// `y = γ ⊙ x̂ + β`.
    pub y: Tensor,
    /// The normalized rows `x̂ = (x − μ)/σ`.
    pub xhat: Tensor,
    /// `1/σ` per row.
    pub inv_sigma: Vec<f32>,
}

/// Row-structured compute kernels: softmax family, layer-norm forward, and
/// the Adam update. Implementations must be `Send + Sync` (one instance may
/// be shared by every rank thread) and **bit-identical to
/// [`ReferenceRowOps`]** — see the module docs.
pub trait RowOpsBackend: fmt::Debug + Send + Sync {
    /// Short stable identifier (used in reports, benches, and traces).
    fn name(&self) -> &'static str;

    /// Row-wise softmax of a 2-D tensor, in place (max-subtracted for
    /// stability).
    fn softmax_rows_inplace(&self, x: &mut Tensor);

    /// Row-wise log-softmax, returning a new tensor.
    fn log_softmax_rows(&self, x: &Tensor) -> Tensor;

    /// Row-wise layer norm `y = γ ⊙ (x − μ)/√(σ² + ε) + β` over `[n, d]`,
    /// returning `y` plus the backward cache.
    fn layernorm_rows(&self, x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> LayerNormOut;

    /// One Adam/AdamW update over a parameter slice and its moment state.
    /// All four slices have identical length.
    fn adam_update(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &AdamStep,
    );
}

/// The update rule for one element, shared verbatim by both tiers (and by
/// any chunking of the slices — it touches only index `j`).
#[inline]
fn adam_element(value: &mut f32, g: f32, m: &mut f32, v: &mut f32, s: &AdamStep) {
    *m = s.beta1 * *m + (1.0 - s.beta1) * g;
    *v = s.beta2 * *v + (1.0 - s.beta2) * g * g;
    let mhat = *m / s.bc1;
    let vhat = *v / s.bc2;
    *value -= s.lr * (mhat / (vhat.sqrt() + s.eps) + s.weight_decay * *value);
}

/// The verbatim historical loops — sequential, clone-based where the
/// originals were. This is the oracle tier: the pinned trainer loss curves
/// were recorded under exactly these bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceRowOps;

impl RowOpsBackend for ReferenceRowOps {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn softmax_rows_inplace(&self, x: &mut Tensor) {
        let c = x.cols();
        for row in x.as_mut_slice().chunks_exact_mut(c) {
            softmax_row(row);
        }
    }

    fn log_softmax_rows(&self, x: &Tensor) -> Tensor {
        let c = x.cols();
        let mut out = x.clone();
        for row in out.as_mut_slice().chunks_exact_mut(c) {
            log_softmax_row(row);
        }
        out
    }

    fn layernorm_rows(&self, x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> LayerNormOut {
        let d = x.cols();
        let n = x.rows();
        let mut xhat = x.clone();
        let mut inv_sigma = Vec::with_capacity(n);
        for row in xhat.as_mut_slice().chunks_exact_mut(d) {
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * inv;
            }
            inv_sigma.push(inv);
        }
        let mut y = xhat.clone();
        for row in y.as_mut_slice().chunks_exact_mut(d) {
            for ((v, &gi), &bi) in row.iter_mut().zip(gamma).zip(beta) {
                *v = *v * gi + bi;
            }
        }
        LayerNormOut { y, xhat, inv_sigma }
    }

    fn adam_update(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &AdamStep,
    ) {
        for j in 0..value.len() {
            adam_element(&mut value[j], grad[j], &mut m[j], &mut v[j], s);
        }
    }
}

/// One row of softmax — the exact historical three-step sequence: max,
/// exp-and-sum, scale. Shared by both tiers (rows are independent, so the
/// vectorized tier reuses it under row parallelism).
#[inline]
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// One row of log-softmax (see [`softmax_row`]).
#[inline]
fn log_softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in row.iter_mut() {
        *v -= lse;
    }
}

/// Row-parallel, pass-fused tier — bit-identical to [`ReferenceRowOps`]
/// (see the module docs for why each transformation is exact).
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorizedRowOps;

/// Split `[0, len)` into `parts` contiguous ranges differing by at most
/// one element, in order.
fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

impl RowOpsBackend for VectorizedRowOps {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn softmax_rows_inplace(&self, x: &mut Tensor) {
        let c = x.cols();
        if c == 0 {
            return;
        }
        if x.len() >= PAR_THRESHOLD {
            x.as_mut_slice()
                .par_chunks_mut(c)
                .enumerate()
                .for_each(|(_, row)| softmax_row(row));
        } else {
            for row in x.as_mut_slice().chunks_exact_mut(c) {
                softmax_row(row);
            }
        }
    }

    fn log_softmax_rows(&self, x: &Tensor) -> Tensor {
        let c = x.cols();
        let mut out = x.clone();
        if c == 0 {
            return out;
        }
        if out.len() >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(c)
                .enumerate()
                .for_each(|(_, row)| log_softmax_row(row));
        } else {
            for row in out.as_mut_slice().chunks_exact_mut(c) {
                log_softmax_row(row);
            }
        }
        out
    }

    /// Fused single pass per row (mean, variance, then normalize+scale+
    /// shift writing both `x̂` and `y`), rows partitioned across scoped
    /// threads. The reference's `x̂` round-trip between its two passes is
    /// an exact f32 store/load, so fusing them changes no bits; the
    /// reductions keep the reference's sequential order.
    fn layernorm_rows(&self, x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> LayerNormOut {
        let d = x.cols();
        let n = x.rows();
        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        let mut inv_sigma = vec![0.0f32; n];
        if d == 0 || n == 0 {
            return LayerNormOut { y, xhat, inv_sigma };
        }

        let row_body = |xr: &[f32], xhr: &mut [f32], yr: &mut [f32]| -> f32 {
            let mean = xr.iter().sum::<f32>() / d as f32;
            let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for i in 0..d {
                let xh = (xr[i] - mean) * inv;
                xhr[i] = xh;
                yr[i] = xh * gamma[i] + beta[i];
            }
            inv
        };

        let xs = x.as_slice();
        let threads = rayon::current_num_threads().max(1);
        if n * d < PAR_THRESHOLD || threads <= 1 {
            let (xh, ys) = (xhat.as_mut_slice(), y.as_mut_slice());
            for r in 0..n {
                inv_sigma[r] = row_body(
                    &xs[r * d..(r + 1) * d],
                    &mut xh[r * d..(r + 1) * d],
                    &mut ys[r * d..(r + 1) * d],
                );
            }
        } else {
            let ranges = split_ranges(n, threads);
            let (mut xh_rest, mut y_rest, mut inv_rest) = (
                xhat.as_mut_slice(),
                y.as_mut_slice(),
                inv_sigma.as_mut_slice(),
            );
            let row_body = &row_body;
            std::thread::scope(|scope| {
                for range in ranges {
                    let rows = range.len();
                    let (xh, xh_next) = xh_rest.split_at_mut(rows * d);
                    let (yc, y_next) = y_rest.split_at_mut(rows * d);
                    let (iv, inv_next) = inv_rest.split_at_mut(rows);
                    xh_rest = xh_next;
                    y_rest = y_next;
                    inv_rest = inv_next;
                    let r0 = range.start;
                    scope.spawn(move || {
                        for r in 0..rows {
                            iv[r] = row_body(
                                &xs[(r0 + r) * d..(r0 + r + 1) * d],
                                &mut xh[r * d..(r + 1) * d],
                                &mut yc[r * d..(r + 1) * d],
                            );
                        }
                    });
                }
            });
        }
        LayerNormOut { y, xhat, inv_sigma }
    }

    /// The four state slices split at identical element boundaries across
    /// scoped threads; each element's update is `adam_element` either
    /// way, so any chunking is bit-identical to the sequential loop.
    fn adam_update(
        &self,
        value: &mut [f32],
        grad: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        s: &AdamStep,
    ) {
        let len = value.len();
        let threads = rayon::current_num_threads().max(1);
        if len < PAR_THRESHOLD || threads <= 1 {
            for j in 0..len {
                adam_element(&mut value[j], grad[j], &mut m[j], &mut v[j], s);
            }
            return;
        }
        let ranges = split_ranges(len, threads);
        let (mut val_rest, mut m_rest, mut v_rest) = (value, m, v);
        std::thread::scope(|scope| {
            for range in ranges {
                let sz = range.len();
                let (vc, val_next) = val_rest.split_at_mut(sz);
                let (mc, m_next) = m_rest.split_at_mut(sz);
                let (vv, v_next) = v_rest.split_at_mut(sz);
                val_rest = val_next;
                m_rest = m_next;
                v_rest = v_next;
                let gc = &grad[range];
                scope.spawn(move || {
                    for j in 0..sz {
                        adam_element(&mut vc[j], gc[j], &mut mc[j], &mut vv[j], s);
                    }
                });
            }
        });
    }
}

fn process_slot() -> &'static RwLock<Arc<dyn RowOpsBackend>> {
    static SLOT: OnceLock<RwLock<Arc<dyn RowOpsBackend>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Arc::new(ReferenceRowOps)))
}

thread_local! {
    /// Stack of thread-scoped row-op overrides (a stack so scopes nest).
    static THREAD_ROW_OPS: RefCell<Vec<Arc<dyn RowOpsBackend>>> = const { RefCell::new(Vec::new()) };
}

/// Swap the process-default row-op backend; returns the previous one.
pub fn set_process_row_ops(backend: Arc<dyn RowOpsBackend>) -> Arc<dyn RowOpsBackend> {
    std::mem::replace(&mut *process_slot().write().unwrap(), backend)
}

/// The current process-default row-op backend.
pub fn process_row_ops() -> Arc<dyn RowOpsBackend> {
    Arc::clone(&process_slot().read().unwrap())
}

/// Install `backend` for the *calling thread* until the returned guard
/// drops. Nested installs shadow outer ones — the same discipline as
/// [`install_backend`](crate::ops::backend::install_backend), and the
/// trainer installs both guards side by side per rank thread.
#[must_use = "the override lasts only while the guard is alive"]
pub fn install_row_ops(backend: Arc<dyn RowOpsBackend>) -> RowOpsGuard {
    THREAD_ROW_OPS.with(|s| s.borrow_mut().push(backend));
    RowOpsGuard { _private: () }
}

/// RAII guard for [`install_row_ops`]; pops the override on drop.
#[derive(Debug)]
pub struct RowOpsGuard {
    _private: (),
}

impl Drop for RowOpsGuard {
    fn drop(&mut self) {
        THREAD_ROW_OPS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Resolve the row-op backend the calling thread should use right now.
pub fn current_row_ops() -> Arc<dyn RowOpsBackend> {
    THREAD_ROW_OPS
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(process_row_ops)
}

/// Record a row-op's compute counters around its invocation; mirrors the
/// matmul `traced` wrapper (one relaxed load when tracing is off).
#[inline]
pub(crate) fn traced_rowop<R>(
    ns_name: &'static str,
    flops_name: &'static str,
    flops: u64,
    f: impl FnOnce() -> R,
) -> R {
    if trace::enabled() {
        let t0 = std::time::Instant::now();
        let r = f();
        trace::count(ns_name, t0.elapsed().as_nanos() as u64);
        trace::count(flops_name, flops);
        r
    } else {
        f()
    }
}

/// Nominal FLOPs per element for the softmax family: compare, subtract,
/// exp, sum-add, scale — 5. (Counter convention: nominal counts make
/// achieved "GFLOP/s" comparable across PRs, not micro-architecturally
/// exact — `exp` is many hardware ops.)
pub(crate) const SOFTMAX_FLOPS_PER_ELEM: u64 = 5;
/// Nominal FLOPs per element for layer-norm forward: two reduction adds,
/// centered square, normalize multiply-subtract, scale, shift — 8.
const LAYERNORM_FLOPS_PER_ELEM: u64 = 8;
/// Nominal FLOPs per element for the Adam update: two moment lerps (4),
/// two bias corrections (2), sqrt, divide, decay multiply-add, final
/// subtract-multiply — 12.
const ADAM_FLOPS_PER_ELEM: u64 = 12;

/// Row-wise layer-norm forward on the calling thread's row-op backend,
/// recording `compute.layernorm.{flops,ns}`.
pub fn layernorm_rows(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> LayerNormOut {
    let flops = LAYERNORM_FLOPS_PER_ELEM * x.len() as u64;
    traced_rowop(
        names::COMPUTE_LAYERNORM_NS,
        names::COMPUTE_LAYERNORM_FLOPS,
        flops,
        || current_row_ops().layernorm_rows(x, gamma, beta, eps),
    )
}

/// One Adam/AdamW update on the calling thread's row-op backend, recording
/// `compute.adam.{flops,ns}`.
pub fn adam_update(value: &mut [f32], grad: &[f32], m: &mut [f32], v: &mut [f32], s: &AdamStep) {
    assert_eq!(value.len(), grad.len(), "adam_update: value vs grad length");
    assert_eq!(value.len(), m.len(), "adam_update: value vs m length");
    assert_eq!(value.len(), v.len(), "adam_update: value vs v length");
    let flops = ADAM_FLOPS_PER_ELEM * value.len() as u64;
    traced_rowop(
        names::COMPUTE_ADAM_NS,
        names::COMPUTE_ADAM_FLOPS,
        flops,
        || current_row_ops().adam_update(value, grad, m, v, s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_bitwise(x: &[f32], y: &[f32], what: &str) {
        assert_eq!(x.len(), y.len(), "{what}: length");
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: element {i}: {a} vs {b}");
        }
    }

    fn step() -> AdamStep {
        AdamStep {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            bc1: 1.0 - 0.9f32.powi(3),
            bc2: 1.0 - 0.999f32.powi(3),
        }
    }

    /// Shapes straddling PAR_THRESHOLD so both the sequential and the
    /// parallel/fused paths of the vectorized tier are pinned.
    fn shapes() -> Vec<(usize, usize)> {
        vec![(1, 1), (3, 17), (40, 64), (70, 70), (128, 64)]
    }

    #[test]
    fn vectorized_softmax_is_bit_identical() {
        let mut rng = Rng::seed_from(31);
        for (n, d) in shapes() {
            let x = Tensor::randn(&[n, d], 2.0, &mut rng);
            let mut a = x.clone();
            let mut b = x.clone();
            ReferenceRowOps.softmax_rows_inplace(&mut a);
            VectorizedRowOps.softmax_rows_inplace(&mut b);
            assert_bitwise(a.as_slice(), b.as_slice(), &format!("softmax {n}x{d}"));
            let la = ReferenceRowOps.log_softmax_rows(&x);
            let lb = VectorizedRowOps.log_softmax_rows(&x);
            assert_bitwise(
                la.as_slice(),
                lb.as_slice(),
                &format!("log_softmax {n}x{d}"),
            );
        }
    }

    #[test]
    fn vectorized_layernorm_is_bit_identical() {
        let mut rng = Rng::seed_from(32);
        for (n, d) in shapes() {
            let x = Tensor::randn(&[n, d], 1.5, &mut rng);
            let gamma: Vec<f32> = (0..d).map(|i| 1.0 + 0.1 * i as f32).collect();
            let beta: Vec<f32> = (0..d).map(|i| -0.05 * i as f32).collect();
            let a = ReferenceRowOps.layernorm_rows(&x, &gamma, &beta, 1e-5);
            let b = VectorizedRowOps.layernorm_rows(&x, &gamma, &beta, 1e-5);
            assert_bitwise(a.y.as_slice(), b.y.as_slice(), &format!("ln y {n}x{d}"));
            assert_bitwise(
                a.xhat.as_slice(),
                b.xhat.as_slice(),
                &format!("ln xhat {n}x{d}"),
            );
            assert_bitwise(&a.inv_sigma, &b.inv_sigma, &format!("ln inv {n}x{d}"));
        }
    }

    #[test]
    fn vectorized_adam_is_bit_identical() {
        let mut rng = Rng::seed_from(33);
        for len in [1usize, 100, 4095, 4096, 10_000] {
            let grad: Vec<f32> = Tensor::randn(&[len], 1.0, &mut rng).as_slice().to_vec();
            let init: Vec<f32> = Tensor::randn(&[len], 1.0, &mut rng).as_slice().to_vec();
            let (mut va, mut ma, mut sa) = (init.clone(), vec![0.1f32; len], vec![0.2f32; len]);
            let (mut vb, mut mb, mut sb) = (init.clone(), vec![0.1f32; len], vec![0.2f32; len]);
            ReferenceRowOps.adam_update(&mut va, &grad, &mut ma, &mut sa, &step());
            VectorizedRowOps.adam_update(&mut vb, &grad, &mut mb, &mut sb, &step());
            assert_bitwise(&va, &vb, &format!("adam value {len}"));
            assert_bitwise(&ma, &mb, &format!("adam m {len}"));
            assert_bitwise(&sa, &sb, &format!("adam v {len}"));
        }
    }

    #[test]
    fn registry_resolves_thread_then_process_then_reference() {
        assert_eq!(current_row_ops().name(), process_row_ops().name());
        {
            let _g = install_row_ops(Arc::new(VectorizedRowOps));
            assert_eq!(current_row_ops().name(), "vectorized");
            {
                let _g2 = install_row_ops(Arc::new(ReferenceRowOps));
                assert_eq!(current_row_ops().name(), "reference");
            }
            assert_eq!(current_row_ops().name(), "vectorized");
        }
        // A fresh thread sees the process default, not this thread's stack.
        let _g = install_row_ops(Arc::new(VectorizedRowOps));
        let other = std::thread::spawn(|| current_row_ops().name())
            .join()
            .unwrap();
        assert_eq!(other, process_row_ops().name());
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (7, 1), (4096, 8)] {
            let rs = split_ranges(len, parts);
            let mut next = 0;
            for r in &rs {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let mut empty = Tensor::zeros(&[0, 4]);
        VectorizedRowOps.softmax_rows_inplace(&mut empty);
        let out =
            VectorizedRowOps.layernorm_rows(&Tensor::zeros(&[0, 4]), &[1.0; 4], &[0.0; 4], 1e-5);
        assert_eq!(out.y.shape(), &[0, 4]);
        assert!(out.inv_sigma.is_empty());
        VectorizedRowOps.adam_update(&mut [], &[], &mut [], &mut [], &step());
    }
}
