//! The pluggable GEMM seam: [`MatmulBackend`] and the backend registry.
//!
//! Every GEMM in the workspace goes through the free functions in
//! [`mod@crate::ops::matmul`], which resolve a backend *at call time*:
//!
//! 1. the calling thread's installed backend, if any ([`install_backend`] —
//!    the trainer installs one per rank thread so concurrent runs with
//!    different backends never interfere),
//! 2. else the process default ([`set_process_backend`] — what the CLI
//!    arms once at startup),
//! 3. else [`Reference`](crate::ops::matmul::Reference).
//!
//! Model code never names a concrete backend; swapping in SIMD intrinsics
//! or an accelerator later means implementing this trait, nothing else.
//!
//! # Contract
//!
//! All backends must agree with the naive triple loop within their
//! documented tolerance:
//!
//! * `Reference` and `Tiled` are **bit-identical** to each other on every
//!   shape: both accumulate each output element in strictly increasing
//!   reduction-index order (NN/TN), and both compute NT dot products with
//!   the same four-chain pattern (`dot4` in the reference module). Tiling
//!   changes *which* element is computed when, never the order of additions
//!   *within* an element.
//! * `HalfCompute` rounds both operands through its 16-bit format before
//!   multiplying and accumulates in `f32`; it is bit-identical to `Tiled`
//!   run on pre-quantized operands (half×half products are exact in `f32`).

use crate::dtype::DType;
use crate::ops::elementwise::gelu_scalar;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock, RwLock};

/// Epilogue activation fused into [`MatmulBackend::matmul_bias_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation: the epilogue is just the bias broadcast (or nothing).
    #[default]
    Identity,
    /// GELU (tanh approximation) — the FFN/expert activation.
    Gelu,
    /// ReLU.
    Relu,
}

impl Activation {
    /// Apply to one value. Uses the exact same scalar functions as the
    /// standalone element-wise kernels, so a fused epilogue is bit-identical
    /// to `matmul` + `add_row_broadcast` + `gelu`/`relu`.
    #[inline]
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Gelu => gelu_scalar(x),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Apply element-wise in place.
    pub fn apply(self, t: &mut Tensor) {
        if self != Activation::Identity {
            for x in t.as_mut_slice() {
                *x = self.apply_scalar(*x);
            }
        }
    }
}

/// A GEMM implementation covering the three layouts training needs plus a
/// fused bias+activation epilogue.
///
/// Implementations must be `Send + Sync`: one instance may be shared by
/// every rank thread of a trainer.
pub trait MatmulBackend: fmt::Debug + Send + Sync {
    /// Short stable identifier (used in reports, benches, and traces).
    fn name(&self) -> &'static str;

    /// Format operands are rounded through before multiplication.
    /// [`DType::F32`] means full-precision compute; accumulation is always
    /// `f32` regardless.
    fn compute_dtype(&self) -> DType {
        DType::F32
    }

    /// `C[m,n] = A[m,k] · B[k,n]`.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `C[m,n] = A[m,k] · B[n,k]ᵀ`.
    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `C[k,n] = A[m,k]ᵀ · B[m,n]`.
    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `C = act(A·B + bias)` with `bias` broadcast over rows.
    ///
    /// The provided default composes the unfused steps — exactly the
    /// historical `matmul` → `add_row_broadcast` → activation sequence, so
    /// any backend whose `matmul` is bit-identical to [`Reference`]'s stays
    /// bit-identical here too. Backends with their own tiling override this
    /// to apply the epilogue while the output tile is still cache-resident.
    ///
    /// The bias (when present) and the activation are always applied in
    /// `f32`, even under a half-precision compute dtype: epilogues run at
    /// accumulator precision, as on real mixed-precision hardware.
    ///
    /// [`Reference`]: crate::ops::matmul::Reference
    fn matmul_bias_act(
        &self,
        a: &Tensor,
        b: &Tensor,
        bias: Option<&[f32]>,
        act: Activation,
    ) -> Tensor {
        let mut c = self.matmul(a, b);
        if let Some(bias) = bias {
            c.add_row_broadcast(bias);
        }
        act.apply(&mut c);
        c
    }
}

fn process_slot() -> &'static RwLock<Arc<dyn MatmulBackend>> {
    static SLOT: OnceLock<RwLock<Arc<dyn MatmulBackend>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(Arc::new(crate::ops::matmul::Reference)))
}

thread_local! {
    /// Stack of thread-scoped backend overrides (a stack so scopes nest).
    static THREAD_BACKEND: RefCell<Vec<Arc<dyn MatmulBackend>>> = const { RefCell::new(Vec::new()) };
}

/// Swap the process-default backend; returns the previous one. Affects every
/// thread that has no [`install_backend`] override.
pub fn set_process_backend(backend: Arc<dyn MatmulBackend>) -> Arc<dyn MatmulBackend> {
    std::mem::replace(&mut *process_slot().write().unwrap(), backend)
}

/// The current process-default backend.
pub fn process_backend() -> Arc<dyn MatmulBackend> {
    Arc::clone(&process_slot().read().unwrap())
}

/// Install `backend` for the *calling thread* until the returned guard
/// drops. Nested installs shadow outer ones. The trainer installs each
/// rank's configured backend this way, so two trainers with different
/// compute configurations can run concurrently in one process (as the test
/// suite does) without racing on the process default.
#[must_use = "the override lasts only while the guard is alive"]
pub fn install_backend(backend: Arc<dyn MatmulBackend>) -> BackendGuard {
    THREAD_BACKEND.with(|s| s.borrow_mut().push(backend));
    BackendGuard { _private: () }
}

/// RAII guard for [`install_backend`]; pops the override on drop.
#[derive(Debug)]
pub struct BackendGuard {
    _private: (),
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        THREAD_BACKEND.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Resolve the backend the calling thread should use right now: innermost
/// thread override, else the process default.
pub fn current_backend() -> Arc<dyn MatmulBackend> {
    THREAD_BACKEND
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(process_backend)
}

/// Copyable *name* of a backend configuration — what rides inside
/// `TrainConfig`/`TrainReport` and parses from `--compute-backend` /
/// `--compute-dtype`. [`ComputeBackend::instantiate`] turns it into the
/// actual trait object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComputeBackend {
    /// The original rayon blocked kernels — the correctness oracle.
    #[default]
    Reference,
    /// Cache-tiled, packed-panel, register-blocked kernels. Bit-identical
    /// to `Reference` on every f32 input, just faster.
    Tiled,
    /// The tiled kernels with fused multiply-add in the wide micro-kernels.
    /// **Not** bit-identical to `Reference` — results sit in a documented
    /// tolerance band — so any run whose tests or tooling assert bit-pinned
    /// curves must not use it (see [`ComputeBackend::bit_identical`]).
    TiledFma,
    /// Tiled kernels over operands stored and multiplied in a 16-bit
    /// format, accumulating in `f32`. The dtype must be [`DType::F16`] or
    /// [`DType::BF16`].
    Half(DType),
}

impl ComputeBackend {
    /// Reject configurations that name no real kernel.
    pub fn validate(self) -> Result<(), String> {
        match self {
            ComputeBackend::Half(DType::F32) => {
                Err("half compute needs a 16-bit dtype (fp16 or bf16)".into())
            }
            _ => Ok(()),
        }
    }

    /// The format operands are rounded through ([`DType::F32`] = none).
    pub fn compute_dtype(self) -> DType {
        match self {
            ComputeBackend::Half(dt) => dt,
            _ => DType::F32,
        }
    }

    /// Whether this backend reproduces its tier's pinned bits exactly.
    ///
    /// `Reference` and `Tiled` are bit-identical to each other;
    /// `Half` is bit-pinned within its own dtype tier (deterministic and
    /// reproducible run to run). `TiledFma` is the one tier that trades
    /// bit-identity for speed, so workflows that compare loss curves or
    /// checkpoints bit-for-bit (elastic re-shard pins, resume pins) must
    /// reject it — the CLI does.
    pub fn bit_identical(self) -> bool {
        !matches!(self, ComputeBackend::TiledFma)
    }

    /// Build the backend this configuration names.
    ///
    /// # Panics
    /// Panics when [`ComputeBackend::validate`] would fail.
    pub fn instantiate(self) -> Arc<dyn MatmulBackend> {
        self.validate().expect("invalid compute backend");
        match self {
            ComputeBackend::Reference => Arc::new(crate::ops::matmul::Reference),
            ComputeBackend::Tiled => Arc::new(crate::ops::tiled::Tiled),
            ComputeBackend::TiledFma => Arc::new(crate::ops::tiled::TiledFma),
            ComputeBackend::Half(dt) => Arc::new(crate::ops::half_compute::HalfCompute::new(dt)),
        }
    }

    /// Build the row-op backend ([`RowOpsBackend`]) that pairs with this
    /// GEMM configuration: the reference tier for `Reference` (the oracle
    /// stays the oracle end to end), the vectorized tier — bit-identical to
    /// reference, just parallel/fused — for every faster GEMM tier.
    ///
    /// [`RowOpsBackend`]: crate::ops::rowops::RowOpsBackend
    pub fn instantiate_row_ops(self) -> Arc<dyn crate::ops::rowops::RowOpsBackend> {
        match self {
            ComputeBackend::Reference => Arc::new(crate::ops::rowops::ReferenceRowOps),
            _ => Arc::new(crate::ops::rowops::VectorizedRowOps),
        }
    }
}

impl fmt::Display for ComputeBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeBackend::Reference => write!(f, "reference"),
            ComputeBackend::Tiled => write!(f, "tiled"),
            ComputeBackend::TiledFma => write!(f, "tiled:fma"),
            ComputeBackend::Half(dt) => write!(f, "half:{dt}"),
        }
    }
}

impl FromStr for ComputeBackend {
    type Err = String;

    /// `reference | tiled | tiled:fma | half[:fp16|:bf16]` (bare `half`
    /// means bf16, the format that keeps f32's exponent range). `f16` is
    /// accepted as an alias for `fp16`, and `fma` for `tiled:fma`.
    fn from_str(s: &str) -> Result<ComputeBackend, String> {
        match s {
            "reference" | "ref" => Ok(ComputeBackend::Reference),
            "tiled" => Ok(ComputeBackend::Tiled),
            "tiled:fma" | "fma" => Ok(ComputeBackend::TiledFma),
            "half" | "half:bf16" => Ok(ComputeBackend::Half(DType::BF16)),
            "half:fp16" | "half:f16" => Ok(ComputeBackend::Half(DType::F16)),
            other => Err(format!(
                "unknown compute backend: {other} \
                 (want reference | tiled | tiled:fma | half[:fp16|:bf16])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_backend_round_trips_through_strings() {
        for cb in [
            ComputeBackend::Reference,
            ComputeBackend::Tiled,
            ComputeBackend::TiledFma,
            ComputeBackend::Half(DType::F16),
            ComputeBackend::Half(DType::BF16),
        ] {
            let s = cb.to_string();
            assert_eq!(s.parse::<ComputeBackend>().unwrap(), cb, "{s}");
        }
        assert_eq!(
            "half".parse::<ComputeBackend>().unwrap(),
            ComputeBackend::Half(DType::BF16)
        );
        assert!("gpu".parse::<ComputeBackend>().is_err());
    }

    #[test]
    fn half_f32_is_rejected() {
        assert!(ComputeBackend::Half(DType::F32).validate().is_err());
        assert!(ComputeBackend::Tiled.validate().is_ok());
        assert!(ComputeBackend::TiledFma.validate().is_ok());
    }

    #[test]
    fn only_fma_gives_up_bit_identity() {
        assert!(ComputeBackend::Reference.bit_identical());
        assert!(ComputeBackend::Tiled.bit_identical());
        assert!(ComputeBackend::Half(DType::BF16).bit_identical());
        assert!(!ComputeBackend::TiledFma.bit_identical());
    }

    #[test]
    fn fma_alias_parses() {
        assert_eq!(
            "fma".parse::<ComputeBackend>().unwrap(),
            ComputeBackend::TiledFma
        );
    }

    #[test]
    fn row_ops_tier_follows_the_gemm_tier() {
        assert_eq!(
            ComputeBackend::Reference.instantiate_row_ops().name(),
            "reference"
        );
        for cb in [
            ComputeBackend::Tiled,
            ComputeBackend::TiledFma,
            ComputeBackend::Half(DType::BF16),
        ] {
            assert_eq!(cb.instantiate_row_ops().name(), "vectorized");
        }
    }

    #[test]
    fn thread_override_shadows_process_default_and_nests() {
        // The process default is shared test-wide; only read it.
        let base = current_backend().name();
        {
            let _g = install_backend(ComputeBackend::Tiled.instantiate());
            assert_eq!(current_backend().name(), "tiled");
            {
                let _g2 = install_backend(ComputeBackend::Reference.instantiate());
                assert_eq!(current_backend().name(), "reference");
            }
            assert_eq!(current_backend().name(), "tiled");
        }
        assert_eq!(current_backend().name(), base);
    }

    #[test]
    fn overrides_are_per_thread() {
        let _g = install_backend(ComputeBackend::Tiled.instantiate());
        let other = std::thread::spawn(|| current_backend().name())
            .join()
            .unwrap();
        // A fresh thread sees the process default, not this thread's guard.
        assert_eq!(other, process_backend().name());
    }

    #[test]
    fn fused_epilogue_default_matches_unfused_sequence() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from(7);
        let a = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let bias = [0.5f32, -1.0, 2.0];
        let backend = crate::ops::matmul::Reference;
        let fused = backend.matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu);
        let mut manual = backend.matmul(&a, &b);
        manual.add_row_broadcast(&bias);
        let manual = crate::ops::elementwise::gelu(&manual);
        for (x, y) in fused.as_slice().iter().zip(manual.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
