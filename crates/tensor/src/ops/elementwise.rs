//! Fused element-wise activation kernels and their backward passes.

use crate::tensor::Tensor;

/// GELU activation (tanh approximation, as used by GPT-style pretrained
/// models): `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_scalar`] with respect to its input.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Element-wise GELU.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

/// Backward of GELU: `dX = dY ⊙ gelu'(X)` where `X` is the forward input.
pub fn gelu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(dy.shape(), x.shape());
    let mut out = dy.clone();
    for (g, &xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *g *= gelu_grad_scalar(xi);
    }
    out
}

/// Element-wise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward of ReLU.
pub fn relu_backward(dy: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(dy.shape(), x.shape());
    let mut out = dy.clone();
    for (g, &xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if xi <= 0.0 {
            *g = 0.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_points() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        // GELU(x) → x for large positive x, → 0 for large negative x.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
        // Tabulated value: gelu(1.0) ≈ 0.8412 (tanh approximation).
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        // GELU is slightly negative around x ≈ -0.75.
        assert!(gelu_scalar(-0.75) < 0.0);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        let eps = 1e-3f32;
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let fd = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            let an = gelu_grad_scalar(x);
            assert!((fd - an).abs() < 2e-3, "x={x}: fd={fd} an={an}");
        }
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        let dy = Tensor::ones(&[3]);
        assert_eq!(relu_backward(&dy, &x).as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_backward_shapes_and_values() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let dy = Tensor::from_vec(vec![2.0, 3.0], &[2]);
        let dx = gelu_backward(&dy, &x);
        assert!((dx.as_slice()[0] - 2.0 * gelu_grad_scalar(0.0)).abs() < 1e-6);
        assert!((dx.as_slice()[1] - 3.0 * gelu_grad_scalar(1.0)).abs() < 1e-6);
    }
}
