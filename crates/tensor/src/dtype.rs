//! Software half-precision floating-point types.
//!
//! The New Generation Sunway's CPEs execute FP16/BF16 vector arithmetic in
//! hardware. We reproduce the *numerics* of those formats — rounding to
//! nearest-even, gradual underflow (for FP16), saturation to infinity — with
//! bit-exact software conversions, so that experiments on loss scaling and
//! precision ablations behave like the real system.

/// Element type of a tensor as stored or communicated.
///
/// Compute in this reproduction always happens in `f32`; `DType` describes
/// the format values are *rounded through* when a kernel, optimizer, or
/// collective is configured for reduced precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// IEEE 754 binary32.
    #[default]
    F32,
    /// IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits).
    F16,
    /// bfloat16 (1 sign, 8 exponent, 7 mantissa bits).
    BF16,
}

impl DType {
    /// Size in bytes of one element in this format.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
        }
    }

    /// Round an `f32` value through this format and back.
    #[inline]
    pub fn round_trip(self, x: f32) -> f32 {
        match self {
            DType::F32 => x,
            DType::F16 => F16::from_f32(x).to_f32(),
            DType::BF16 => BF16::from_f32(x).to_f32(),
        }
    }

    /// Round every element of a slice through this format in place.
    pub fn round_trip_slice(self, xs: &mut [f32]) {
        match self {
            DType::F32 => {}
            DType::F16 => {
                for x in xs {
                    *x = F16::from_f32(*x).to_f32();
                }
            }
            DType::BF16 => {
                for x in xs {
                    *x = BF16::from_f32(*x).to_f32();
                }
            }
        }
    }

    /// Largest finite positive value representable in this format.
    pub fn max_finite(self) -> f32 {
        match self {
            DType::F32 => f32::MAX,
            DType::F16 => 65504.0,
            DType::BF16 => BF16(0x7F7F).to_f32(),
        }
    }

    /// Smallest positive *normal* value representable in this format.
    pub fn min_positive_normal(self) -> f32 {
        match self {
            DType::F32 => f32::MIN_POSITIVE,
            DType::F16 => 6.103_515_6e-5, // rounds to exactly 2^-14 in f32
            DType::BF16 => f32::MIN_POSITIVE,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "fp32"),
            DType::F16 => write!(f, "fp16"),
            DType::BF16 => write!(f, "bf16"),
        }
    }
}

impl std::str::FromStr for DType {
    type Err = String;

    /// `fp32 | fp16 | bf16` (with `f32`/`f16` accepted as aliases), the
    /// inverse of [`Display`](std::fmt::Display).
    fn from_str(s: &str) -> Result<DType, String> {
        match s {
            "fp32" | "f32" => Ok(DType::F32),
            "fp16" | "f16" => Ok(DType::F16),
            "bf16" => Ok(DType::BF16),
            other => Err(format!("unknown dtype: {other} (want fp32 | fp16 | bf16)")),
        }
    }
}

/// IEEE 754 binary16 value stored as its raw bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3C00);
    pub const INFINITY: F16 = F16(0x7C00);
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);

    /// Convert from `f32` with round-to-nearest-even, handling subnormals,
    /// overflow to infinity, and NaN payloads.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
            let payload = if mant != 0 {
                0x0200 | (mant >> 13) as u16 & 0x03FF | 0x0001
            } else {
                0
            };
            return F16(sign | 0x7C00 | payload);
        }

        // Re-bias exponent from 127 to 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow → infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Round mantissa from 23 to 10 bits, nearest-even.
            let half_exp = (unbiased + 15) as u16;
            let shifted = mant >> 13;
            let rest = mant & 0x1FFF;
            let mut out = (half_exp << 10) | shifted as u16;
            if rest > 0x1000 || (rest == 0x1000 && (shifted & 1) == 1) {
                out += 1; // may carry into exponent; that is correct rounding
            }
            return F16(sign | out);
        }
        if unbiased >= -25 {
            // Subnormal range: implicit leading 1 becomes explicit, shift right.
            let full = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let shifted = full >> shift;
            let rest_mask = (1u32 << shift) - 1;
            let rest = full & rest_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = shifted as u16;
            if rest > halfway || (rest == halfway && (shifted & 1) == 1) {
                out += 1;
            }
            return F16(sign | out);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Convert to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = mant · 2⁻²⁴. Normalize so the leading
                // set bit becomes the implicit one.
                let b = 31 - mant.leading_zeros(); // highest set bit, 0..=9
                let exp_f32 = 127 - 24 + b;
                let mant_norm = (mant << (23 - b)) & 0x007F_FFFF;
                sign | (exp_f32 << 23) | mant_norm
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // Inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }
}

/// bfloat16 value stored as its raw bit pattern (the top 16 bits of an f32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BF16(pub u16);

impl BF16 {
    pub const ZERO: BF16 = BF16(0);
    pub const ONE: BF16 = BF16(0x3F80);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> BF16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet NaN, preserving sign.
            return BF16(((bits >> 16) as u16) | 0x0040 | 0x0001);
        }
        let rest = bits & 0xFFFF;
        let mut top = (bits >> 16) as u16;
        if rest > 0x8000 || (rest == 0x8000 && (top & 1) == 1) {
            top = top.wrapping_add(1);
        }
        BF16(top)
    }

    /// Convert to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_values() {
        assert_eq!(F16::from_f32(0.0).0, 0);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(2.0).to_f32(), 2.0);
        assert_eq!(F16::from_f32(-1.5).to_f32(), -1.5);
        assert_eq!(F16::from_f32(0.5).to_f32(), 0.5);
        assert_eq!(F16::from_f32(65504.0).to_f32(), 65504.0);
    }

    #[test]
    fn f16_overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(1e30), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e30), F16::NEG_INFINITY);
        assert!(F16::INFINITY.to_f32().is_infinite());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).0, 1);
        assert_eq!(F16(1).to_f32(), tiny);
        // 2^-14 is the smallest normal.
        let min_normal = 2.0f32.powi(-14);
        assert_eq!(F16::from_f32(min_normal).to_f32(), min_normal);
        // Below half the smallest subnormal → zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).0, 0);
    }

    #[test]
    fn f16_nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1 + 2^-10);
        // nearest-even rounds down to 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn bf16_exact_values() {
        assert_eq!(BF16::from_f32(1.0), BF16::ONE);
        assert_eq!(BF16::ONE.to_f32(), 1.0);
        assert_eq!(BF16::from_f32(-2.0).to_f32(), -2.0);
        // bf16 keeps the f32 exponent range: no overflow at 1e30.
        let big = BF16::from_f32(1e30).to_f32();
        assert!(big.is_finite());
        assert!((big - 1e30).abs() / 1e30 < 0.01);
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7 in bf16.
        let halfway = 1.0 + 2.0f32.powi(-8);
        assert_eq!(BF16::from_f32(halfway).to_f32(), 1.0);
        let above = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-16);
        assert_eq!(BF16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-7));
    }

    #[test]
    fn bf16_nan_is_preserved() {
        assert!(BF16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn dtype_round_trip_slice() {
        let mut xs = vec![1.0f32, 1e-8, 70000.0, -3.25];
        DType::F16.round_trip_slice(&mut xs);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[1], 0.0); // underflow
        assert!(xs[2].is_infinite()); // overflow
        assert_eq!(xs[3], -3.25);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
    }
}
