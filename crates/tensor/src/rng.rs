//! Deterministic random number generation.
//!
//! Reproducibility across ranks matters for distributed training: every rank
//! must derive its stream from `(seed, rank)` so runs are bit-reproducible
//! regardless of thread scheduling. We wrap `rand`'s `StdRng` and add the few
//! distributions training needs (normal via Box–Muller, Zipf for skewed token
//! streams) so no extra distribution crate is required.

use rand::{Rng as _, RngCore, SeedableRng};

/// A seeded pseudo-random generator with the distributions training needs.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: rand::rngs::StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Construct from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Rng {
        Rng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive a per-rank stream from a global seed. Streams for distinct
    /// ranks are decorrelated by hashing the pair through SplitMix64.
    pub fn for_rank(seed: u64, rank: usize) -> Rng {
        let mut z = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // SplitMix64 finalizer.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng::seed_from(z)
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f32` on `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform integer on `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample (Box–Muller, with caching of the paired value).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        self.spare_normal = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample an index from explicit (not necessarily normalized) weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() needs positive total weight");
        let mut u = self.uniform() as f64 * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }
}

/// A Zipf-distributed sampler over `{0, 1, …, n-1}` with exponent `s`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` concentrates
/// mass on low indices. Used to generate skewed token streams that stress
/// MoE gate load balancing the way natural-language corpora do.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `O(n)` setup, `O(log n)` per sample.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform() as f64;
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rank_streams_differ() {
        let mut a = Rng::for_rank(5, 0);
        let mut b = Rng::for_rank(5, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(9);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(2);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Rng::seed_from(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.02);
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::seed_from(4);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_head() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Rng::seed_from(5);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 5 {
                head += 1;
            }
        }
        // With s=1.2 the top-5 ranks carry well over a third of the mass.
        assert!(
            head as f64 / n as f64 > 0.35,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
