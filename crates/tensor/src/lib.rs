//! Dense tensor kernels for the BaGuaLu reproduction.
//!
//! This crate is the compute substrate that stands in for the hand-tuned
//! SW26010-Pro CPE kernels (SWDNN) used by the original system. It provides:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` tensor with the small
//!   set of shapes deep-learning training needs (vectors, matrices, batched
//!   matrices),
//! * blocked, [rayon]-parallel matrix multiplication in the `NN`/`NT`/`TN`
//!   layouts used by forward and backward passes,
//! * fused element-wise and reduction kernels (GELU, softmax, layer-norm
//!   statistics, …),
//! * bit-exact software [`F16`] and [`BF16`] types so
//!   that mixed-precision *numerics* (rounding, underflow, loss-scale
//!   dynamics) can be reproduced without half-precision hardware.
//!
//! Master storage is always `f32`; half precision is modelled by *round-trip
//! quantization* (`f32 → half → f32`) applied at the points where the real
//! system would store or communicate half-precision values. This keeps the
//! kernels simple while making the numerics faithful.

pub mod dtype;
pub mod ops;
pub mod pack;
pub mod rng;
pub mod tensor;

pub use dtype::{DType, BF16, F16};
pub use ops::{
    current_backend, install_backend, process_backend, set_process_backend, Activation,
    BackendGuard, ComputeBackend, MatmulBackend,
};
pub use pack::{pack_bf16, pack_f16, pack_slice, unpack_bf16, unpack_f16, unpack_slice};
pub use tensor::Tensor;

/// Commonly used items, for glob import in downstream crates.
pub mod prelude {
    pub use crate::dtype::{DType, BF16, F16};
    pub use crate::ops::{Activation, ComputeBackend, MatmulBackend};
    pub use crate::tensor::Tensor;
}
