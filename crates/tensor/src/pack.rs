//! Wire pack/unpack kernels for 16-bit payload compression.
//!
//! The comm layer moves `f32` tensors; at scale the bytes on the wire
//! dominate step time (the β term of the α–β model), so comm-bound paths
//! compress each hop to FP16 or BF16 before sending and expand back to
//! `f32` on receipt. These kernels are the hot path of that compression:
//! they reuse the bit-exact [`F16`]/[`BF16`] conversions from
//! [`crate::dtype`] (round-to-nearest-even, FP16 gradual underflow,
//! saturation to ±∞, NaN preservation), so a pack/unpack round trip is
//! bit-for-bit identical to [`DType::round_trip`].
//!
//! Buffers below [`PAR_THRESHOLD`] elements convert sequentially; larger
//! ones are chunked across the rayon pool. Parallelism is expressed over
//! the *output* buffer (`par_chunks_mut` + `enumerate`), with each task
//! reading the matching input window — disjoint writes, shared reads, no
//! synchronization. The `_into` variants reuse a caller-owned buffer so
//! steady-state training loops do not allocate per message.

use crate::dtype::{DType, BF16, F16};
use rayon::prelude::*;

/// Element count below which pack/unpack stays sequential. Conversion is a
/// few ns/element, so small payloads (control messages, tail buckets) are
/// cheaper to convert inline than to fan out across threads.
pub const PAR_THRESHOLD: usize = 1 << 16;

/// Chunk size for the parallel path: large enough to amortize task
/// dispatch, small enough to load-balance across the pool.
const PAR_CHUNK: usize = 1 << 14;

/// Core conversion driver: fill `dst` (pre-sized to `src.len()`) with
/// `conv(src[i])`, sequentially below [`PAR_THRESHOLD`] and rayon-chunked
/// over the output above it.
fn convert_into<S, D, F>(src: &[S], dst: &mut Vec<D>, conv: F)
where
    S: Copy + Sync,
    D: Copy + Default + Send,
    F: Fn(S) -> D + Sync,
{
    dst.clear();
    dst.resize(src.len(), D::default());
    if src.len() < PAR_THRESHOLD {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = conv(s);
        }
    } else {
        dst.as_mut_slice()
            .par_chunks_mut(PAR_CHUNK)
            .enumerate()
            .for_each(|(i, chunk)| {
                let base = i * PAR_CHUNK;
                for (j, d) in chunk.iter_mut().enumerate() {
                    *d = conv(src[base + j]);
                }
            });
    }
}

/// Pack `f32` values to FP16 bit patterns into a reused buffer.
pub fn pack_f16_into(src: &[f32], dst: &mut Vec<u16>) {
    convert_into(src, dst, |x| F16::from_f32(x).0);
}

/// Pack `f32` values to BF16 bit patterns into a reused buffer.
pub fn pack_bf16_into(src: &[f32], dst: &mut Vec<u16>) {
    convert_into(src, dst, |x| BF16::from_f32(x).0);
}

/// Expand FP16 bit patterns back to `f32` into a reused buffer.
pub fn unpack_f16_into(bits: &[u16], dst: &mut Vec<f32>) {
    convert_into(bits, dst, |b| F16(b).to_f32());
}

/// Expand BF16 bit patterns back to `f32` into a reused buffer.
pub fn unpack_bf16_into(bits: &[u16], dst: &mut Vec<f32>) {
    convert_into(bits, dst, |b| BF16(b).to_f32());
}

/// Pack `f32` values to FP16 bit patterns (allocating).
pub fn pack_f16(src: &[f32]) -> Vec<u16> {
    let mut out = Vec::new();
    pack_f16_into(src, &mut out);
    out
}

/// Pack `f32` values to BF16 bit patterns (allocating).
pub fn pack_bf16(src: &[f32]) -> Vec<u16> {
    let mut out = Vec::new();
    pack_bf16_into(src, &mut out);
    out
}

/// Expand FP16 bit patterns back to `f32` (allocating).
pub fn unpack_f16(bits: &[u16]) -> Vec<f32> {
    let mut out = Vec::new();
    unpack_f16_into(bits, &mut out);
    out
}

/// Expand BF16 bit patterns back to `f32` (allocating).
pub fn unpack_bf16(bits: &[u16]) -> Vec<f32> {
    let mut out = Vec::new();
    unpack_bf16_into(bits, &mut out);
    out
}

/// Pack to the 16-bit format named by `dtype`.
///
/// # Panics
/// Panics on [`DType::F32`] — a 4-byte format has no 16-bit bit pattern;
/// callers must branch to the uncompressed path before reaching here.
pub fn pack_slice(dtype: DType, src: &[f32]) -> Vec<u16> {
    match dtype {
        DType::F16 => pack_f16(src),
        DType::BF16 => pack_bf16(src),
        DType::F32 => panic!("pack_slice: F32 is not a 16-bit wire format"),
    }
}

/// Expand from the 16-bit format named by `dtype`.
///
/// # Panics
/// Panics on [`DType::F32`]; see [`pack_slice`].
pub fn unpack_slice(dtype: DType, bits: &[u16]) -> Vec<f32> {
    match dtype {
        DType::F16 => unpack_f16(bits),
        DType::BF16 => unpack_bf16(bits),
        DType::F32 => panic!("unpack_slice: F32 is not a 16-bit wire format"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Edge values: signed zeros, subnormals (for both formats), normals,
    /// overflow-to-inf, infinities, NaNs with payloads.
    fn edge_values() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.5,
            std::f32::consts::PI,
            1e-8,   // FP16 subnormal range
            -1e-8,  // FP16 subnormal range, negative
            1e-40,  // f32 subnormal, underflows both formats
            6.0e4,  // near FP16 max finite
            7.0e4,  // overflows FP16 → ±inf
            3.3e38, // near f32/BF16 max
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::from_bits(0xFF80_0001), // signaling-ish negative NaN
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
        ]
    }

    #[test]
    fn round_trip_matches_dtype_round_trip_bitwise() {
        for dt in [DType::F16, DType::BF16] {
            let xs = edge_values();
            let packed = pack_slice(dt, &xs);
            let back = unpack_slice(dt, &packed);
            for (x, b) in xs.iter().zip(&back) {
                assert_eq!(
                    b.to_bits(),
                    dt.round_trip(*x).to_bits(),
                    "dtype {dt} value {x:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // PAR_THRESHOLD + a ragged tail exercises the rayon path with an
        // uneven final chunk.
        let n = PAR_THRESHOLD + 12_345;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 - 1000.0) * 0.37).collect();
        for dt in [DType::F16, DType::BF16] {
            let big = pack_slice(dt, &xs);
            let mut seq = Vec::with_capacity(n);
            for chunk in xs.chunks(100) {
                seq.extend(pack_slice(dt, chunk));
            }
            assert_eq!(big, seq, "dtype {dt}");
            let back = unpack_slice(dt, &big);
            for (x, b) in xs.iter().zip(&back) {
                assert_eq!(b.to_bits(), dt.round_trip(*x).to_bits());
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffer() {
        let xs = [1.0f32, 2.0, 3.0];
        let mut buf = vec![9u16; 100];
        pack_bf16_into(&xs, &mut buf);
        assert_eq!(buf.len(), 3);
        let mut out = vec![0.0f32; 7];
        unpack_bf16_into(&buf, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a 16-bit wire format")]
    fn pack_f32_panics() {
        pack_slice(DType::F32, &[1.0]);
    }

    #[test]
    fn empty_slices_are_fine() {
        assert!(pack_f16(&[]).is_empty());
        assert!(unpack_bf16(&[]).is_empty());
    }
}
