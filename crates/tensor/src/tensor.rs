//! The [`Tensor`] type: an owned, contiguous, row-major `f32` array.
//!
//! Shapes are kept deliberately simple — training a transformer needs
//! vectors, matrices, and "batched matrices" that we flatten to 2-D
//! (`[batch·seq, hidden]`) before hitting the compute kernels, exactly as the
//! original system's kernels do.

use crate::dtype::DType;
use crate::rng::Rng;

/// An owned, contiguous, row-major tensor of `f32` values.
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.data.len())
        }
    }
}

impl Tensor {
    // ---------------------------------------------------------------- create

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![0.0; n],
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Build from an existing buffer. Panics if `data.len()` does not match
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Standard-normal initialization scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(rng.normal() * std);
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Uniform initialization on `[lo, hi)`.
    pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(lo + (hi - lo) * rng.uniform());
        }
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Xavier/Glorot-style initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::randn(&[fan_in, fan_out], std, rng)
    }

    // ---------------------------------------------------------------- access

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a 2-D tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.ndim(),
            2,
            "rows() needs a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.ndim(),
            2,
            "cols() needs a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[1]
    }

    /// Borrow the underlying contiguous storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying contiguous storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i` of a 2-D tensor.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let c = self.cols();
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutably borrow row `i` of a 2-D tensor.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Element access by 2-D index.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.shape[1] + j]
    }

    /// Set element by 2-D index.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.shape[1] + j] = v;
    }

    // ----------------------------------------------------------- reshaping

    /// Reinterpret with a new shape of the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Copy of rows `lo..hi` of a 2-D tensor.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Tensor {
        let c = self.cols();
        assert!(lo <= hi && hi <= self.rows());
        Tensor::from_vec(self.data[lo * c..hi * c].to_vec(), &[hi - lo, c])
    }

    /// Stack 2-D tensors with identical column counts on the row axis.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let c = parts[0].cols();
        let total: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total * c);
        for p in parts {
            assert_eq!(p.cols(), c, "concat_rows: mismatched column counts");
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &[total, c])
    }

    /// Transposed copy of a 2-D tensor.
    pub fn transposed(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            for j0 in (0..c).step_by(B) {
                for i in i0..(i0 + B).min(r) {
                    for j in j0..(j0 + B).min(c) {
                        out[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    // ------------------------------------------------------------- mutation

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= other`, element-wise (Hadamard).
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// `self += alpha * other` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Add a `[cols]` bias vector to every row of a 2-D tensor.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        let c = self.cols();
        assert_eq!(bias.len(), c);
        for row in self.data.chunks_exact_mut(c) {
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// New tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Round every element through `dtype` in place (mixed-precision model).
    pub fn quantize(&mut self, dtype: DType) {
        dtype.round_trip_slice(&mut self.data);
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum of squared elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let c = self.cols();
        self.data
            .chunks_exact(c)
            .map(|row| {
                // First index of the maximum (strict `>` keeps the earliest
                // of tied values and ignores NaN).
                let mut best = 0usize;
                let mut best_v = row[0];
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = i;
                        best_v = v;
                    }
                }
                best
            })
            .collect()
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }

    /// True if any element is NaN or infinite — used by the dynamic loss
    /// scaler to detect half-precision overflow.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn create_and_shape() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_shape() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn row_access_and_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(1, 2, 5.0);
        assert_eq!(t.at(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
        t.row_mut(0)[0] = -1.0;
        assert_eq!(t.at(0, 0), -1.0);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = Rng::seed_from(7);
        let t = Tensor::randn(&[37, 53], 1.0, &mut rng);
        let tt = t.transposed().transposed();
        assert!(t.approx_eq(&tt, 0.0));
        assert_eq!(t.transposed().shape(), &[53, 37]);
        assert_eq!(t.at(3, 11), t.transposed().at(11, 3));
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
        a.sub_assign(&b);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        a.mul_assign(&b);
        assert_eq!(a.as_slice(), &[10.0, 40.0, 90.0]);
        a.scale(0.1);
        assert!(a.approx_eq(&Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]), 1e-6));
        a.axpy(2.0, &b);
        assert!(a.approx_eq(&Tensor::from_vec(vec![21.0, 44.0, 69.0], &[3]), 1e-6));
    }

    #[test]
    fn broadcast_bias() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.sq_norm(), 25.0);
        assert_eq!(t.norm(), 5.0);
        assert_eq!(t.dot(&t), 25.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![0.0, 5.0, 5.0, 9.0, 1.0, 2.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn slice_and_concat_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let a = t.slice_rows(0, 2);
        let b = t.slice_rows(2, 4);
        let r = Tensor::concat_rows(&[a, b]);
        assert!(r.approx_eq(&t, 0.0));
    }

    #[test]
    fn quantize_applies_rounding() {
        let mut t = Tensor::from_vec(vec![1.0 + 2.0f32.powi(-12)], &[1]);
        t.quantize(DType::F16);
        assert_eq!(t.as_slice()[0], 1.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.as_mut_slice()[1] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = Rng::seed_from(42);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        assert!(t.mean().abs() < 0.1);
        let var = t.sq_norm() / t.len() as f32 - t.mean() * t.mean();
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }
}
