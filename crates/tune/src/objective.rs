//! The tuning objective: one modeled step time per [`RunConfig`].
//!
//! Mirrors the byte accounting of `bagualu::perfmodel::project` but reads
//! every knob from the `RunConfig` instead of a hand-built `PerfInput`, so
//! the thing being scored is exactly the thing `bagualu train --config`
//! will run. Three ingredients fold into a single number:
//!
//! - **compute** — training FLOPs per token at the backend's precision,
//!   against the machine's sustained GEMM rate;
//! - **communication** — the four MoE all-to-alls (pairwise, hierarchical,
//!   or locality-aware per the placement knobs) plus the bucketed dense
//!   all-reduce, both charged *wire* bytes so `wire_dtype` compression is
//!   visible to the model; overlap hides all but the last bucket's
//!   all-reduce behind compute, exactly the trainer's pipeline shape;
//! - **checkpoint waste** — the Young/Daly first-order overhead
//!   `δ/τ + τ/(2·MTBF)` at the configured `ckpt_every` interval (shared
//!   math with experiment E22 via `bagualu::perfmodel`).
//!
//! Each cost also carries two diagnostics the ranking table prints: the
//! multiple of the data-movement **roofline floor** the config sits at
//! (1.0 = bandwidth/compute bound, nothing left to tune), and the node
//! count where the config goes **comm-bound** (exposed communication
//! overtakes compute — the scale past which this config stops scaling).

use bagualu::perfmodel::checkpoint_waste_fraction;
use bagualu::runconfig::{preset, RunConfig};
use bagualu::tensor::ComputeBackend;
use bagualu_hw::{MachineConfig, Precision};
use bagualu_model::config::ModelConfig;
use bagualu_net::cost::CollectiveCost;
use bagualu_parallel::ExpertPlacement;

/// The environment a candidate is scored in: the machine scale being
/// targeted plus the run-shape constants no knob controls.
#[derive(Debug, Clone, Copy)]
pub struct CostEnv {
    /// Machine the model projects onto (one rank per node).
    pub machine: MachineConfig,
    /// Micro-batch tokens per node per step.
    pub tokens_per_node: usize,
    /// Max/mean expert-load imbalance multiplier on compute (the step is
    /// set by the slowest shard; 1.0 = balanced).
    pub imbalance: f64,
    /// Mean time between failures, seconds. `None` disables the
    /// checkpoint-waste term even for ft-enabled configs.
    pub mtbf_s: Option<f64>,
    /// Cost of writing one checkpoint, seconds (Young/Daly's δ).
    pub ckpt_cost_s: f64,
}

impl CostEnv {
    /// Sunway-subset environment at a node count, with BaGuaLu-like
    /// defaults: 2048 tokens/node, balanced load, no failures modeled.
    pub fn sunway(nodes: usize) -> CostEnv {
        CostEnv {
            machine: MachineConfig::sunway_subset(nodes),
            tokens_per_node: 2048,
            imbalance: 1.0,
            mtbf_s: None,
            ckpt_cost_s: 1.0,
        }
    }

    /// Same environment moved to another node count.
    pub fn at_nodes(&self, nodes: usize) -> CostEnv {
        CostEnv {
            machine: MachineConfig {
                nodes,
                ..self.machine
            },
            ..*self
        }
    }
}

/// Modeled per-step cost decomposition of one candidate, seconds.
#[derive(Debug, Clone, Copy)]
pub struct ModeledCost {
    /// Dense + gate + expert compute (imbalance applied).
    pub compute_s: f64,
    /// All four all-to-alls across every MoE block.
    pub a2a_s: f64,
    /// Bucketed dense-gradient all-reduce (all buckets).
    pub allreduce_s: f64,
    /// Communication left exposed after overlap hiding.
    pub exposed_comm_s: f64,
    /// Young/Daly waste fraction at the configured checkpoint interval
    /// (0 when fault tolerance is off or no MTBF is modeled).
    pub ckpt_waste_frac: f64,
    /// Young/Daly optimal checkpoint interval for this config's step
    /// time, seconds (`None` when no MTBF is modeled).
    pub tau_opt_s: Option<f64>,
    /// The objective: `(compute + exposed comm) · (1 + waste)`.
    pub step_s: f64,
    /// Data-movement roofline floor: the larger of compute-at-peak and
    /// wire-bytes-at-injection-bandwidth — no schedule beats this.
    pub roofline_floor_s: f64,
    /// `step_s / roofline_floor_s` (≥ 1). Distance from the roofline:
    /// how much modeled time tuning could still recover.
    pub roofline_distance: f64,
    /// Smallest power-of-two node count at which exposed communication
    /// overtakes compute — the comm-bound crossover scale. `None` if the
    /// config stays compute-bound through the full 96k-node machine.
    pub comm_bound_nodes: Option<usize>,
}

/// The model the candidate trains, resolved from its `[model]` section.
fn resolve_model(rc: &RunConfig) -> ModelConfig {
    let base = preset(&rc.model.preset)
        .unwrap_or_else(|e| panic!("model_cost wants a validated RunConfig: {e}"));
    ModelConfig {
        n_experts: rc.model.experts,
        gate: rc.model.gate,
        ..base
    }
}

/// Core accounting shared by [`model_cost`] and the comm-bound scan:
/// `(compute_s, a2a_s, allreduce_s, exposed_comm_s)` at one node count.
fn step_parts(rc: &RunConfig, m: &ModelConfig, env: &CostEnv) -> (f64, f64, f64, f64) {
    let mach = &env.machine;
    let nodes = mach.nodes.max(1);
    let b = env.tokens_per_node as f64;

    // ---- Compute: training FLOPs at the backend's arithmetic precision.
    let precision = match rc.compute.backend {
        ComputeBackend::Half(_) => Precision::Half,
        _ => Precision::FP32,
    };
    let sustained = mach.processor.peak(precision) * mach.gemm_efficiency;
    let compute_s = m.flops_per_token_train() * b * env.imbalance / sustained;

    // ---- All-to-all: 2 exchanges forward + 2 backward per MoE block, in
    // wire precision. Per-pair payload: this node's B·k token vectors
    // spread over all nodes.
    let cc = CollectiveCost::new(*mach);
    let wire_elt = rc.comm.wire_dtype.size_bytes() as f64;
    let a2a_bytes_per_rank = b * m.gate.k() as f64 * m.d_model as f64 * wire_elt;
    let bytes_per_pair = ((a2a_bytes_per_rank / nodes as f64).ceil() as usize).max(1);
    let one_a2a = if nodes <= 1 {
        0.0
    } else {
        match rc.resolved_placement() {
            // Supernode-pinned experts with a gate locality bias: the
            // biased gate keeps a super-proportional fraction of dispatch
            // traffic inside the supernode. Model the kept fraction as
            // exponential saturation from the unbiased baseline s/n
            // toward 1.0 as the bias grows.
            ExpertPlacement::Supernode { .. } if rc.placement.locality_bias > 0.0 => {
                let s = mach.supernode_size.min(nodes) as f64;
                let baseline = s / nodes as f64;
                let kept =
                    1.0 - (1.0 - baseline) * (-(rc.placement.locality_bias as f64) / 2.0).exp();
                cc.alltoall_with_locality(nodes, a2a_bytes_per_rank.ceil() as usize, kept)
            }
            _ if rc.comm.hierarchical => cc.alltoall_hierarchical(nodes, bytes_per_pair),
            _ => cc.alltoall_pairwise(nodes, bytes_per_pair),
        }
    };
    let a2a_s = one_a2a * 4.0 * m.n_moe_blocks() as f64;

    // ---- Dense-gradient all-reduce: wire bytes, split into the trainer's
    // buckets. Each bucket pays its collective's α once — more, smaller
    // buckets trade bandwidth efficiency for overlap opportunity.
    let grad_wire_bytes = m.dense_params() as f64 * wire_elt;
    let bucket_bytes = (rc.comm.bucket_kib << 10) as f64;
    let n_buckets = (grad_wire_bytes / bucket_bytes).ceil().max(1.0);
    let per_bucket = (grad_wire_bytes / n_buckets).ceil() as usize;
    let allreduce_s = if nodes <= 1 {
        0.0
    } else if rc.comm.hierarchical {
        n_buckets * cc.allreduce_hierarchical(nodes, per_bucket)
    } else {
        n_buckets * cc.allreduce_ring(nodes, per_bucket)
    };

    // ---- Overlap: the trainer reduces bucket i while computing the
    // gradients feeding bucket i+1, so all but the last bucket can hide
    // behind backward compute. The all-to-alls sit on the critical path
    // (activations are needed immediately) and stay exposed.
    let hidden = if rc.comm.overlap {
        ((1.0 - 1.0 / n_buckets) * allreduce_s).min(compute_s)
    } else {
        0.0
    };
    let exposed_comm_s = a2a_s + allreduce_s - hidden;
    (compute_s, a2a_s, allreduce_s, exposed_comm_s)
}

/// Score one candidate: fold compute, exposed communication, and
/// checkpoint waste into a single modeled step time, with roofline and
/// scale-crossover diagnostics. Wants a config that passes
/// `RunConfig::validate` (the search space guarantees this).
pub fn model_cost(rc: &RunConfig, env: &CostEnv) -> ModeledCost {
    let m = resolve_model(rc);
    let (compute_s, a2a_s, allreduce_s, exposed_comm_s) = step_parts(rc, &m, env);
    let base_step_s = compute_s + exposed_comm_s;

    // ---- Young/Daly checkpoint waste at the configured interval.
    let (ckpt_waste_frac, tau_opt_s) = match env.mtbf_s {
        Some(mtbf) if rc.ft.enabled && rc.ft.ckpt_every > 0 => {
            let tau = rc.ft.ckpt_every as f64 * base_step_s;
            (
                checkpoint_waste_fraction(env.ckpt_cost_s, tau, mtbf),
                Some(bagualu::perfmodel::young_daly_tau_opt(
                    env.ckpt_cost_s,
                    mtbf,
                )),
            )
        }
        Some(mtbf) => (
            0.0,
            Some(bagualu::perfmodel::young_daly_tau_opt(
                env.ckpt_cost_s,
                mtbf,
            )),
        ),
        None => (0.0, None),
    };
    let step_s = base_step_s * (1.0 + ckpt_waste_frac);

    // ---- Data-movement roofline floor: even a perfect schedule cannot
    // beat compute at *peak* rate or the wire bytes at full injection
    // bandwidth, whichever is larger.
    let nodes = env.machine.nodes.max(1);
    let b = env.tokens_per_node as f64;
    let precision = match rc.compute.backend {
        ComputeBackend::Half(_) => Precision::Half,
        _ => Precision::FP32,
    };
    let compute_floor = m.flops_per_token_train() * b / env.machine.processor.peak(precision);
    let wire_elt = rc.comm.wire_dtype.size_bytes() as f64;
    let wire_bytes_per_node = if nodes > 1 {
        4.0 * m.n_moe_blocks() as f64 * b * m.gate.k() as f64 * m.d_model as f64 * wire_elt
            + 2.0 * m.dense_params() as f64 * wire_elt
    } else {
        0.0
    };
    let comm_floor = wire_bytes_per_node / env.machine.network.intra_bw;
    let roofline_floor_s = compute_floor.max(comm_floor);

    // ---- Comm-bound crossover: scan power-of-two scales for the first
    // where exposed communication overtakes compute. Compute per node is
    // scale-invariant; collectives only get more expensive, so the first
    // crossing is the crossing.
    let mut comm_bound_nodes = None;
    let mut n = 2usize;
    while n <= 131_072 {
        let at = env.at_nodes(n);
        let (c, _, _, e) = step_parts(rc, &m, &at);
        if e >= c {
            comm_bound_nodes = Some(n);
            break;
        }
        n *= 2;
    }

    ModeledCost {
        compute_s,
        a2a_s,
        allreduce_s,
        exposed_comm_s,
        ckpt_waste_frac,
        tau_opt_s,
        step_s,
        roofline_floor_s,
        roofline_distance: step_s / roofline_floor_s,
        comm_bound_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_comm::WireDType;

    fn env() -> CostEnv {
        CostEnv::sunway(4096)
    }

    /// The satellite invariant: halving the wire bytes (16-bit wire
    /// instead of 32-bit) must never *increase* modeled communication
    /// time — total or exposed — across topology/overlap combinations.
    #[test]
    fn halving_wire_bytes_never_increases_modeled_comm_time() {
        for hier in [false, true] {
            for overlap in [false, true] {
                for bucket_kib in [64, 1024, 1 << 20] {
                    let mut rc = RunConfig::default();
                    rc.comm.hierarchical = hier;
                    rc.comm.overlap = overlap;
                    rc.comm.bucket_kib = bucket_kib;
                    rc.comm.wire_dtype = WireDType::F32;
                    let full = model_cost(&rc, &env());
                    rc.comm.wire_dtype = WireDType::F16;
                    let half = model_cost(&rc, &env());
                    let tag = format!("hier={hier} overlap={overlap} bucket={bucket_kib}KiB");
                    assert!(
                        half.a2a_s + half.allreduce_s <= full.a2a_s + full.allreduce_s + 1e-15,
                        "{tag}: total comm grew"
                    );
                    assert!(
                        half.exposed_comm_s <= full.exposed_comm_s + 1e-15,
                        "{tag}: exposed comm grew ({} -> {})",
                        full.exposed_comm_s,
                        half.exposed_comm_s
                    );
                    assert!(half.step_s <= full.step_s + 1e-15, "{tag}: step grew");
                }
            }
        }
    }

    #[test]
    fn hierarchical_a2a_wins_at_scale() {
        let mut flat = RunConfig::default();
        flat.comm.overlap = false;
        let mut hier = flat.clone();
        hier.comm.hierarchical = true;
        let e = CostEnv::sunway(96_000);
        let cf = model_cost(&flat, &e);
        let ch = model_cost(&hier, &e);
        assert!(
            ch.a2a_s < cf.a2a_s,
            "hier {} vs flat {}",
            ch.a2a_s,
            cf.a2a_s
        );
        assert!(ch.step_s < cf.step_s);
    }

    #[test]
    fn overlap_reduces_exposed_comm_only() {
        let mut serial = RunConfig::default();
        serial.comm.overlap = false;
        // Tiny buckets: the tiny preset's dense gradients fit in one
        // default 1 MiB bucket, and a single bucket has nothing to hide
        // behind (the trainer reduces bucket i during bucket i+1's
        // backward) — shrink the bucket so the pipeline exists.
        serial.comm.bucket_kib = 1;
        let mut overlapped = serial.clone();
        overlapped.comm.overlap = true;
        let cs = model_cost(&serial, &env());
        let co = model_cost(&overlapped, &env());
        assert_eq!(cs.a2a_s, co.a2a_s);
        assert_eq!(cs.allreduce_s, co.allreduce_s);
        assert!(co.exposed_comm_s < cs.exposed_comm_s);
        assert!(co.step_s < cs.step_s);
    }

    #[test]
    fn locality_bias_shrinks_the_a2a() {
        // Supernode placement + bias must beat plain hierarchical a2a at a
        // multi-supernode scale (the E15 story, through the tuner's lens).
        let mut hier = RunConfig::default();
        hier.train.ranks = 4;
        hier.comm.hierarchical = true;
        hier.comm.supernode_size = 2;
        let mut biased = hier.clone();
        biased.placement.policy = ExpertPlacement::Supernode { supernode_size: 2 };
        biased.placement.locality_bias = 2.0;
        let e = CostEnv::sunway(96_000);
        let c0 = model_cost(&hier, &e);
        let c1 = model_cost(&biased, &e);
        assert!(c1.a2a_s < c0.a2a_s, "biased {} vs {}", c1.a2a_s, c0.a2a_s);
        // More bias keeps more traffic local, monotonically.
        let mut more = biased.clone();
        more.placement.locality_bias = 4.0;
        assert!(model_cost(&more, &e).a2a_s < c1.a2a_s);
    }

    #[test]
    fn checkpoint_waste_costs_time_and_tau_opt_is_reported() {
        let mut rc = RunConfig::default();
        rc.ft.enabled = true;
        rc.ft.ckpt_every = 10;
        let mut e = env();
        let off = model_cost(&rc, &e);
        assert_eq!(off.ckpt_waste_frac, 0.0);
        e.mtbf_s = Some(3600.0);
        let on = model_cost(&rc, &e);
        assert!(on.ckpt_waste_frac > 0.0);
        assert!(on.step_s > off.step_s);
        let tau = on.tau_opt_s.unwrap();
        assert_eq!(tau, bagualu::perfmodel::young_daly_tau_opt(1.0, 3600.0));
    }

    #[test]
    fn diagnostics_are_sane() {
        let c = model_cost(&RunConfig::default(), &env());
        assert!(c.roofline_floor_s > 0.0);
        assert!(c.roofline_distance >= 1.0);
        assert!(c.step_s >= c.compute_s);
        // A flat pairwise a2a at tiny per-pair payloads is α-dominated and
        // must go comm-bound somewhere below the full machine.
        assert!(c.comm_bound_nodes.is_some());
        // Hierarchical + compression pushes the crossover out (or off the
        // scanned range entirely).
        let mut tuned = RunConfig::default();
        tuned.comm.hierarchical = true;
        tuned.comm.wire_dtype = WireDType::F16;
        let ct = model_cost(&tuned, &env());
        match (c.comm_bound_nodes, ct.comm_bound_nodes) {
            (Some(flat_n), Some(tuned_n)) => assert!(tuned_n >= flat_n),
            (Some(_), None) => {}
            other => panic!("unexpected crossover pair {other:?}"),
        }
    }

    #[test]
    fn single_node_has_no_communication() {
        let c = model_cost(&RunConfig::default(), &CostEnv::sunway(1));
        assert_eq!(c.a2a_s, 0.0);
        assert_eq!(c.allreduce_s, 0.0);
        assert_eq!(c.exposed_comm_s, 0.0);
    }
}
