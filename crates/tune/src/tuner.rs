//! The tuning loop: enumerate → model → rank → measure top-K → emit TOML.
//!
//! The cost model ranks the whole space for free; only the handful of
//! top-ranked candidates (plus the baseline) are validated with short
//! *measured* runs of the real trainer. The winner is the candidate with
//! the best **measured** step time — the model proposes, the measurement
//! disposes — so a mis-modeled candidate can be ranked first and still
//! lose. The report records both orderings, which is exactly what
//! experiment E29 grades (modeled-vs-measured ranking fidelity).

use crate::objective::{model_cost, CostEnv, ModeledCost};
use crate::space::{Candidate, SearchSpace};
use bagualu::runconfig::RunConfig;
use bagualu::trainer::Trainer;

/// Knobs of one tuning run (not of the config being tuned).
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Node count the cost model targets. The interesting regime is well
    /// past the measured world size — the model extrapolates, the
    /// measurement sanity-checks.
    pub scale_nodes: usize,
    /// How many model-ranked candidates get a measured validation run.
    pub top_k: usize,
    /// Steps per measured run (short: we time steady-state steps, not
    /// convergence).
    pub measure_steps: usize,
    /// Skip measurement entirely (rank on the model alone). The winner is
    /// then the top modeled candidate.
    pub measure: bool,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            scale_nodes: 4096,
            top_k: 3,
            measure_steps: 8,
            measure: true,
        }
    }
}

/// One candidate after scoring (and possibly measuring).
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    pub name: String,
    pub rc: RunConfig,
    pub cost: ModeledCost,
    /// Measured seconds per step, for the baseline and the modeled top-K.
    pub measured_step_s: Option<f64>,
}

/// Everything a tuning run learned.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// All candidates, sorted by modeled step time (ascending).
    pub scored: Vec<ScoredCandidate>,
    /// Index (into `scored`) of the baseline candidate (`default`).
    pub default_index: usize,
    /// Index (into `scored`) of the winner.
    pub winner_index: usize,
    /// The environment the model scored against.
    pub env: CostEnv,
}

impl TuneReport {
    pub fn winner(&self) -> &ScoredCandidate {
        &self.scored[self.winner_index]
    }

    pub fn default_candidate(&self) -> &ScoredCandidate {
        &self.scored[self.default_index]
    }

    /// The winning config as reproducible TOML — feed it straight back to
    /// `bagualu train --config`.
    pub fn winning_toml(&self) -> String {
        self.winner().rc.to_toml()
    }

    /// Human-readable ranking table (one candidate per line, modeled
    /// order, measured column where available).
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:>4}  {:>12}  {:>12}  {:>8}  {:>10}  {:>10}  candidate\n",
            "rank", "modeled_ms", "measured_ms", "roofl_x", "commbound", "ckpt_waste"
        ));
        for (i, c) in self.scored.iter().enumerate() {
            let measured = match c.measured_step_s {
                Some(t) => format!("{:.3}", t * 1e3),
                None => "-".into(),
            };
            let crossover = match c.cost.comm_bound_nodes {
                Some(n) => format!("{n}"),
                None => ">131072".into(),
            };
            let mut tag = String::new();
            if i == self.winner_index {
                tag.push_str("  <- winner");
            }
            if i == self.default_index {
                tag.push_str("  (default)");
            }
            s.push_str(&format!(
                "{:>4}  {:>12.3}  {:>12}  {:>8.2}  {:>10}  {:>9.1}%  {}{}\n",
                i + 1,
                c.cost.step_s * 1e3,
                measured,
                c.cost.roofline_distance,
                crossover,
                c.cost.ckpt_waste_frac * 100.0,
                c.name,
                tag,
            ));
        }
        s
    }
}

/// Time one short real run of a candidate, seconds per step. Best of
/// three repetitions: the first run of a fresh thread pool pays spawn and
/// page-fault warm-up that would otherwise punish whichever candidate
/// happens to be measured first, and the minimum is the standard robust
/// statistic for "how fast can this config go".
fn measure(rc: &RunConfig, steps: usize) -> Result<f64, String> {
    let mut cfg = rc.to_train_config()?;
    cfg.steps = steps.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let report = Trainer::new(cfg).run();
        if report.tokens_per_sec <= 0.0 {
            return Err(format!(
                "{}: measured run produced no throughput",
                rc.to_toml()
            ));
        }
        best = best.min(report.total_tokens as f64 / report.tokens_per_sec / cfg.steps as f64);
    }
    Ok(best)
}

/// How many searched knobs differ from the base config (the parsimony
/// tie-break for candidates the model scores identically).
fn knob_deviations(rc: &RunConfig, base: &RunConfig) -> usize {
    usize::from(rc.comm.wire_dtype != base.comm.wire_dtype)
        + usize::from(rc.comm.hierarchical != base.comm.hierarchical)
        + usize::from(rc.comm.supernode_size != base.comm.supernode_size)
        + usize::from(rc.comm.overlap != base.comm.overlap)
        + usize::from(rc.comm.bucket_kib != base.comm.bucket_kib)
        + usize::from(rc.placement.policy != base.placement.policy)
        + usize::from(rc.placement.locality_bias != base.placement.locality_bias)
}

/// Run the full tuning loop over `space`, anchored at `base`.
///
/// `base` fixes everything outside the search axes (model shape, world
/// size, steps, …); candidates only vary the communication-side knobs.
/// Fails if the space yields no valid candidate (e.g. the base config
/// itself is contradictory) or a measured run cannot be built.
pub fn tune(
    base: &RunConfig,
    space: &SearchSpace,
    env: &CostEnv,
    opts: &TuneOptions,
) -> Result<TuneReport, String> {
    let candidates = space.enumerate(base);
    if candidates.is_empty() {
        base.validate()?;
        return Err("search space enumerated no valid candidates".into());
    }

    // Score the whole space against the model — this is the cheap part.
    let mut scored: Vec<ScoredCandidate> = candidates
        .into_iter()
        .map(|Candidate { name, rc }| {
            let cost = model_cost(&rc, env);
            ScoredCandidate {
                name,
                rc,
                cost,
                measured_step_s: None,
            }
        })
        .collect();
    // Deterministic ranking: modeled step time first. Ties are broken by
    // parsimony — fewest knobs changed from the base config — because
    // when the model is indifferent, the candidate that deviates less is
    // the safer bet (the model cannot see software overheads like a
    // blocking sync or a wire-format conversion, but "change less" hedges
    // against them). Name is the final, purely deterministic tie-break.
    scored.sort_by(|a, b| {
        a.cost
            .step_s
            .total_cmp(&b.cost.step_s)
            .then_with(|| knob_deviations(&a.rc, base).cmp(&knob_deviations(&b.rc, base)))
            .then_with(|| a.name.cmp(&b.name))
    });
    let default_index = scored
        .iter()
        .position(|c| c.name == "default")
        .expect("enumerate always seeds the base candidate");

    let winner_index = if opts.measure {
        // Measure the modeled top-K plus the baseline, and let the
        // measurements pick. Including the baseline in the measured set
        // guarantees the winner is never *measured*-worse than default.
        let mut to_measure: Vec<usize> = (0..opts.top_k.max(1).min(scored.len())).collect();
        if !to_measure.contains(&default_index) {
            to_measure.push(default_index);
        }
        for &i in &to_measure {
            scored[i].measured_step_s = Some(measure(&scored[i].rc, opts.measure_steps)?);
        }
        to_measure
            .into_iter()
            .min_by(|&a, &b| {
                let ta = scored[a].measured_step_s.unwrap();
                let tb = scored[b].measured_step_s.unwrap();
                ta.total_cmp(&tb)
                    .then_with(|| scored[a].name.cmp(&scored[b].name))
            })
            .expect("measured set is non-empty")
    } else {
        0
    };

    Ok(TuneReport {
        scored,
        default_index,
        winner_index,
        env: *env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_space() -> SearchSpace {
        // A deliberately small grid so tests stay fast.
        SearchSpace {
            wire_dtypes: vec![bagualu_comm::WireDType::F32, bagualu_comm::WireDType::F16],
            hierarchical: vec![false, true],
            placements: vec![crate::space::PlacementChoice::RoundRobin],
            overlap: vec![true],
            bucket_kibs: vec![1024],
        }
    }

    fn quick_base() -> RunConfig {
        let mut rc = RunConfig::default();
        rc.train.steps = 2;
        rc.train.batch = 1;
        rc.train.seq = 4;
        rc
    }

    #[test]
    fn model_only_tuning_ranks_and_emits_reproducible_toml() {
        let opts = TuneOptions {
            measure: false,
            ..TuneOptions::default()
        };
        let report = tune(&quick_base(), &quick_space(), &CostEnv::sunway(4096), &opts).unwrap();
        // Sorted by modeled time.
        for w in report.scored.windows(2) {
            assert!(w[0].cost.step_s <= w[1].cost.step_s);
        }
        // Winner TOML round-trips to the exact same RunConfig — the
        // reproducibility contract.
        let rc = RunConfig::from_toml(&report.winning_toml()).unwrap();
        assert_eq!(rc, report.winner().rc);
        // At 4096 nodes the compressed hierarchical a2a must out-model the
        // flat fp32 default.
        assert!(report.winner().cost.step_s <= report.default_candidate().cost.step_s);
        assert_ne!(report.winner_index, report.default_index);
    }

    #[test]
    fn measured_tuning_never_loses_to_default_on_measured_time() {
        let opts = TuneOptions {
            top_k: 2,
            measure_steps: 2,
            ..TuneOptions::default()
        };
        let report = tune(&quick_base(), &quick_space(), &CostEnv::sunway(4096), &opts).unwrap();
        let w = report.winner().measured_step_s.unwrap();
        let d = report.default_candidate().measured_step_s.unwrap();
        assert!(w <= d, "winner {w}s vs default {d}s");
        // The table mentions both roles.
        let table = report.table();
        assert!(
            table.contains("<- winner") && table.contains("(default)"),
            "{table}"
        );
    }

    #[test]
    fn contradictory_base_fails_with_its_own_validation_error() {
        let mut base = quick_base();
        base.train.zero = true;
        base.train.dtype = bagualu::tensor::DType::F16;
        let e = tune(
            &base,
            &quick_space(),
            &CostEnv::sunway(64),
            &TuneOptions {
                measure: false,
                ..TuneOptions::default()
            },
        )
        .unwrap_err();
        assert!(e.contains("zero"), "{e}");
    }
}
