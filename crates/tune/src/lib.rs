//! `bagualu-tune` — cost-model-driven auto-tuning over the [`RunConfig`]
//! space (the ROADMAP's "close the loop" axis; see `docs/TUNING.md`).
//!
//! Humans stop picking the knobs. The tuner:
//!
//! 1. **enumerates** the knob space ([`space::SearchSpace`]) — wire dtype,
//!    all-to-all topology, expert placement + locality bias, overlap
//!    bucket size — as concrete [`RunConfig`] candidates, each one already
//!    validated (contradictory combinations never reach the objective);
//! 2. **scores** each candidate against the calibrated α–β network model
//!    (`bagualu_net::cost::CollectiveCost`) at a target machine scale,
//!    folding compute, exposed communication, and the Young/Daly
//!    checkpoint waste (`bagualu::perfmodel::{young_daly_tau_opt,
//!    checkpoint_waste_fraction}` — the same math E22 plots) into **one
//!    modeled step time** ([`objective::ModeledCost`]);
//! 3. annotates every candidate with its **distance from the
//!    data-movement roofline** (how far modeled time sits above the
//!    bandwidth-bound floor) and the **scale at which it goes comm-bound**
//!    (the node count where exposed communication overtakes compute);
//! 4. **validates the top-K** with short measured runs of the real
//!    trainer, and picks the winner on *measured* step time
//!    ([`tuner::tune`]);
//! 5. emits the winner as a reproducible TOML — `bagualu train --config`
//!    on that file is bit-identical to passing the same knobs by hand,
//!    because both paths construct the identical `RunConfig`.
//!
//! Experiment E29 (`bagualu-bench`) reports the modeled-vs-measured
//! ranking fidelity and gates the tuned-vs-default win in CI.

pub mod objective;
pub mod space;
pub mod tuner;

pub use bagualu::runconfig::RunConfig;
pub use objective::{CostEnv, ModeledCost};
pub use space::{Candidate, SearchSpace};
pub use tuner::{tune, ScoredCandidate, TuneOptions, TuneReport};
