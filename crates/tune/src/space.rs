//! The knob space the tuner searches.
//!
//! A [`SearchSpace`] is a small grid over the communication-side knobs —
//! the ones the cost model can rank without running anything: wire dtype,
//! all-to-all topology, expert placement + gate locality bias, overlap,
//! and all-reduce bucket size. Model-shape and optimizer knobs (`[model]`,
//! `[train]`) are *not* axes: they change what is being trained, not how
//! fast, so the tuner holds them fixed at the base config's values.
//!
//! [`SearchSpace::enumerate`] takes the cartesian product, overlays each
//! combination on the base [`RunConfig`], drops everything
//! [`RunConfig::validate`] rejects (contradictory combinations never reach
//! the objective), and dedups configs that resolve identically.

use bagualu::runconfig::RunConfig;
use bagualu_comm::WireDType;
use bagualu_parallel::ExpertPlacement;

/// One point on the placement axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementChoice {
    /// Expert `e` on rank `e mod R` — the topology-blind baseline.
    RoundRobin,
    /// Contiguous expert blocks per rank.
    Block,
    /// Supernode-pinned experts (at the comm layer's resolved supernode
    /// size) with the given gate locality bias. Only meaningful with the
    /// hierarchical all-to-all — non-hierarchical combinations are
    /// filtered out.
    Supernode { locality_bias: f32 },
}

/// The axes of the search grid.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    pub wire_dtypes: Vec<WireDType>,
    pub hierarchical: Vec<bool>,
    pub placements: Vec<PlacementChoice>,
    pub overlap: Vec<bool>,
    pub bucket_kibs: Vec<usize>,
}

impl Default for SearchSpace {
    /// The standard grid: every wire format, both a2a topologies, the
    /// three placement stories (blind, pinned, pinned+biased), overlap
    /// on/off, and three bucket sizes bracketing the default.
    fn default() -> SearchSpace {
        SearchSpace {
            wire_dtypes: vec![WireDType::F32, WireDType::F16, WireDType::BF16],
            hierarchical: vec![false, true],
            placements: vec![
                PlacementChoice::RoundRobin,
                PlacementChoice::Supernode { locality_bias: 0.0 },
                PlacementChoice::Supernode { locality_bias: 2.0 },
            ],
            overlap: vec![true, false],
            bucket_kibs: vec![256, 1024, 4096],
        }
    }
}

/// One validated point of the space: a complete [`RunConfig`] plus a
/// human-readable name for ranking tables.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub name: String,
    pub rc: RunConfig,
}

impl SearchSpace {
    /// Number of raw grid points (before validity filtering and dedup).
    pub fn grid_points(&self) -> usize {
        self.wire_dtypes.len()
            * self.hierarchical.len()
            * self.placements.len()
            * self.overlap.len()
            * self.bucket_kibs.len()
    }

    /// Overlay every grid combination on `base`, keeping only configs
    /// that validate, deduplicated. The base config itself is always the
    /// first candidate (named `default`) so rankings and measured
    /// comparisons have their baseline in-band.
    pub fn enumerate(&self, base: &RunConfig) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = Vec::new();
        let mut push = |name: String, rc: RunConfig| {
            if rc.validate().is_ok() && !out.iter().any(|c| c.rc == rc) {
                out.push(Candidate { name, rc });
            }
        };
        push("default".into(), base.clone());
        for &wire in &self.wire_dtypes {
            for &hier in &self.hierarchical {
                for &place in &self.placements {
                    for &overlap in &self.overlap {
                        for &bucket_kib in &self.bucket_kibs {
                            let mut rc = base.clone();
                            rc.comm.wire_dtype = wire;
                            rc.comm.hierarchical = hier;
                            if !hier {
                                rc.comm.supernode_size = 0;
                            }
                            rc.comm.overlap = overlap;
                            rc.comm.bucket_kib = bucket_kib;
                            let place_name = match place {
                                PlacementChoice::RoundRobin => {
                                    rc.placement.policy = ExpertPlacement::RoundRobin;
                                    rc.placement.locality_bias = 0.0;
                                    "rr".to_string()
                                }
                                PlacementChoice::Block => {
                                    rc.placement.policy = ExpertPlacement::Block;
                                    rc.placement.locality_bias = 0.0;
                                    "block".to_string()
                                }
                                PlacementChoice::Supernode { locality_bias } => {
                                    if !hier {
                                        continue; // needs the two-level a2a
                                    }
                                    rc.placement.policy =
                                        ExpertPlacement::Supernode { supernode_size: 0 };
                                    rc.placement.locality_bias = locality_bias;
                                    if locality_bias > 0.0 {
                                        format!("sn+bias{locality_bias}")
                                    } else {
                                        "sn".to_string()
                                    }
                                }
                            };
                            let name = format!(
                                "wire={wire} a2a={} place={place_name} overlap={} bucket={bucket_kib}KiB",
                                if hier { "hier" } else { "pairwise" },
                                if overlap { "on" } else { "off" },
                            );
                            push(name, rc);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_space_enumerates_valid_deduped_candidates() {
        let space = SearchSpace::default();
        let base = RunConfig::default();
        let cands = space.enumerate(&base);
        assert_eq!(cands[0].name, "default");
        assert_eq!(cands[0].rc, base);
        // Everything validates; no duplicates.
        for (i, c) in cands.iter().enumerate() {
            c.rc.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", c.name));
            for later in &cands[i + 1..] {
                assert_ne!(c.rc, later.rc, "{} duplicates {}", c.name, later.name);
            }
        }
        // Supernode placement only ever appears with the hierarchical a2a.
        for c in &cands {
            if matches!(c.rc.placement.policy, ExpertPlacement::Supernode { .. }) {
                assert!(c.rc.comm.hierarchical, "{}", c.name);
            }
        }
        // The filter bites (grid minus invalid combos minus dups), but a
        // healthy majority of the grid survives.
        assert!(cands.len() > space.grid_points() / 3, "{}", cands.len());
        assert!(cands.len() <= space.grid_points() + 1);
    }

    #[test]
    fn base_knobs_outside_the_axes_are_preserved() {
        let mut base = RunConfig::default();
        base.train.ranks = 4;
        base.train.steps = 123;
        base.model.experts = 8;
        for c in SearchSpace::default().enumerate(&base) {
            assert_eq!(c.rc.train.ranks, 4, "{}", c.name);
            assert_eq!(c.rc.train.steps, 123, "{}", c.name);
            assert_eq!(c.rc.model.experts, 8, "{}", c.name);
        }
    }

    #[test]
    fn an_invalid_base_still_yields_valid_grid_points() {
        // A base that itself fails validation (zero + half dtype is
        // contradictory) is skipped, but its overlays can still be valid
        // ... here they are not (the contradiction is outside the axes),
        // so enumerate returns nothing rather than junk.
        let mut base = RunConfig::default();
        base.train.zero = true;
        base.train.dtype = bagualu::tensor::DType::F16;
        assert!(base.validate().is_err());
        assert!(SearchSpace::default().enumerate(&base).is_empty());
    }
}
