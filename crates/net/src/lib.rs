//! Network substrate: discrete-event simulation and collective cost models.
//!
//! Two complementary tools replace the Sunway interconnect we cannot run on:
//!
//! * [`simnet`] — a message-level **discrete-event simulator**. Every node
//!   has an injection and an ejection port, every supernode a tapered uplink
//!   and downlink; messages serialize on those resources, so incast,
//!   uplink congestion, and phase structure emerge rather than being
//!   hand-asserted. Used for microbenchmark-scale experiments (hundreds to
//!   thousands of endpoints).
//! * [`cost`] — **closed-form α–β models** of the collectives (ring/tree
//!   all-reduce, pairwise and hierarchical all-to-all, hierarchical
//!   all-reduce) on the two-level topology. Used to project the same
//!   algorithms to the full 96,000-node machine, where even event-level
//!   simulation is too slow.
//!
//! Both consume the topology constants from [`bagualu_hw::MachineConfig`].

pub mod cost;
pub mod event;
pub mod simnet;

pub use cost::CollectiveCost;
pub use event::EventQueue;
pub use simnet::{Message, SimNet};
