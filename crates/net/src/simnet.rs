//! Message-level discrete-event network simulator.
//!
//! Resources modelled per the two-level Sunway topology:
//!
//! * one **injection** and one **ejection** port per node (bandwidth =
//!   intra-supernode injection bandwidth),
//! * one **uplink** and one **downlink** per supernode with *aggregate*
//!   bandwidth `supernode_size × inter_bw` — the 4:1 taper expressed as a
//!   shared resource, so cross-supernode congestion emerges when many nodes
//!   transmit at once.
//!
//! A message claims every resource on its path at a common start time (the
//! fluid single-claim approximation), holds each for `bytes / bw(resource)`,
//! and completes after the path latency plus its bottleneck serialization
//! time. Incast (many→one) therefore serializes on the destination's
//! ejection port, and bulk cross-supernode traffic on the uplink — the two
//! effects the hierarchical all-to-all is designed around.

use crate::event::EventQueue;
use bagualu_hw::MachineConfig;

/// One point-to-point transfer to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Earliest start time (seconds) — models dependency on a prior phase.
    pub release: f64,
}

/// Per-message result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Time the message started moving.
    pub start: f64,
    /// Time the last byte arrived.
    pub finish: f64,
}

/// The simulator. One instance is single-use per `run` call batch; resource
/// state persists across calls so phases can be chained.
pub struct SimNet {
    machine: MachineConfig,
    /// Next free time of each node's injection port.
    inj_free: Vec<f64>,
    /// Next free time of each node's ejection port.
    ej_free: Vec<f64>,
    /// Next free time of each supernode's uplink.
    up_free: Vec<f64>,
    /// Next free time of each supernode's downlink.
    down_free: Vec<f64>,
    /// Accumulated busy time per supernode uplink (utilization accounting).
    up_busy: Vec<f64>,
    /// Accumulated busy time across all injection ports.
    inj_busy: f64,
}

impl SimNet {
    /// Build a simulator for `machine`.
    pub fn new(machine: MachineConfig) -> SimNet {
        let sn = machine.supernodes();
        SimNet {
            machine,
            inj_free: vec![0.0; machine.nodes],
            ej_free: vec![0.0; machine.nodes],
            up_free: vec![0.0; sn],
            down_free: vec![0.0; sn],
            up_busy: vec![0.0; sn],
            inj_busy: 0.0,
        }
    }

    /// Aggregate uplink/downlink bandwidth of one supernode, bytes/s.
    fn trunk_bw(&self) -> f64 {
        self.machine.supernode_size as f64 * self.machine.network.inter_bw
    }

    /// Simulate a batch of messages; returns one [`Completion`] per message
    /// in input order. Messages are admitted in `(release, index)` order,
    /// which keeps the simulation deterministic.
    pub fn run(&mut self, messages: &[Message]) -> Vec<Completion> {
        let mut queue = EventQueue::new();
        for (i, m) in messages.iter().enumerate() {
            assert!(
                m.src < self.machine.nodes && m.dst < self.machine.nodes,
                "node out of range"
            );
            queue.schedule(m.release, i);
        }

        let net = self.machine.network;
        let node_bw = net.intra_bw;
        let trunk = self.trunk_bw();
        let mut out = vec![
            Completion {
                start: 0.0,
                finish: 0.0
            };
            messages.len()
        ];

        while let Some((t, i)) = queue.pop() {
            let m = &messages[i];
            if m.src == m.dst {
                // Loopback: free, instantaneous beyond software overhead.
                out[i] = Completion {
                    start: t,
                    finish: t + net.sw_overhead,
                };
                continue;
            }
            let bytes = m.bytes as f64;
            let cross = !self.machine.same_supernode(m.src, m.dst);
            let (ssn, dsn) = (
                self.machine.supernode_of(m.src),
                self.machine.supernode_of(m.dst),
            );

            // Claim every resource on the path at a common start time.
            let mut start = t.max(self.inj_free[m.src]).max(self.ej_free[m.dst]);
            if cross {
                start = start.max(self.up_free[ssn]).max(self.down_free[dsn]);
            }

            let t_node = bytes / node_bw;
            self.inj_free[m.src] = start + t_node;
            self.ej_free[m.dst] = start + t_node;
            self.inj_busy += t_node;
            let mut bottleneck = t_node;
            if cross {
                let t_trunk = bytes / trunk;
                self.up_free[ssn] = start + t_trunk;
                self.down_free[dsn] = start + t_trunk;
                self.up_busy[ssn] += t_trunk;
                bottleneck = bottleneck.max(t_trunk);
            }

            let finish = start + net.latency(!cross) + bottleneck;
            out[i] = Completion { start, finish };
        }
        out
    }

    /// Convenience: simulate and return the makespan (max finish time).
    pub fn makespan(&mut self, messages: &[Message]) -> f64 {
        self.run(messages).iter().fold(0.0, |a, c| a.max(c.finish))
    }

    /// Utilization of supernode `sn`'s uplink over a window of `duration`
    /// seconds (busy time / duration).
    pub fn uplink_utilization(&self, sn: usize, duration: f64) -> f64 {
        assert!(duration > 0.0);
        self.up_busy[sn] / duration
    }

    /// Mean injection-port utilization across all nodes over `duration`.
    pub fn injection_utilization(&self, duration: f64) -> f64 {
        assert!(duration > 0.0);
        self.inj_busy / (self.machine.nodes as f64 * duration)
    }

    /// Reset all resource availability to time zero.
    pub fn reset(&mut self) {
        self.inj_free.iter_mut().for_each(|x| *x = 0.0);
        self.ej_free.iter_mut().for_each(|x| *x = 0.0);
        self.up_free.iter_mut().for_each(|x| *x = 0.0);
        self.down_free.iter_mut().for_each(|x| *x = 0.0);
        self.up_busy.iter_mut().for_each(|x| *x = 0.0);
        self.inj_busy = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(nodes: usize) -> MachineConfig {
        MachineConfig::sunway_subset(nodes)
    }

    #[test]
    fn single_intra_message_is_alpha_beta() {
        let m = machine(8);
        let mut net = SimNet::new(m);
        let bytes = 1 << 20;
        let c = net.run(&[Message {
            src: 0,
            dst: 1,
            bytes,
            release: 0.0,
        }]);
        let expect = m.network.latency(true) + bytes as f64 / m.network.intra_bw;
        assert!((c[0].finish - expect).abs() < 1e-12);
    }

    #[test]
    fn incast_serializes_on_ejection_port() {
        let m = machine(9);
        let mut net = SimNet::new(m);
        let bytes = 1 << 20;
        // 8 senders, 1 receiver.
        let msgs: Vec<Message> = (1..9)
            .map(|s| Message {
                src: s,
                dst: 0,
                bytes,
                release: 0.0,
            })
            .collect();
        let makespan = net.makespan(&msgs);
        let one = m.network.latency(true) + bytes as f64 / m.network.intra_bw;
        // Must take ~8× a single transfer, not ~1×.
        assert!(makespan > 7.0 * (bytes as f64 / m.network.intra_bw));
        assert!(makespan < 9.0 * one);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let m = machine(8);
        let mut net = SimNet::new(m);
        let bytes = 1 << 20;
        let msgs: Vec<Message> = (0..4)
            .map(|i| Message {
                src: 2 * i,
                dst: 2 * i + 1,
                bytes,
                release: 0.0,
            })
            .collect();
        let makespan = net.makespan(&msgs);
        let one = m.network.latency(true) + bytes as f64 / m.network.intra_bw;
        assert!(
            (makespan - one).abs() < 1e-9,
            "parallel pairs should not serialize"
        );
    }

    #[test]
    fn cross_supernode_traffic_saturates_trunk() {
        // 2 supernodes of 256: all 256 nodes of SN0 send to their partner in
        // SN1 simultaneously → uplink aggregate limits throughput.
        let m = machine(512);
        let mut net = SimNet::new(m);
        let bytes = 4 << 20;
        let msgs: Vec<Message> = (0..256)
            .map(|i| Message {
                src: i,
                dst: 256 + i,
                bytes,
                release: 0.0,
            })
            .collect();
        let makespan = net.makespan(&msgs);
        // Aggregate trunk moves 256×4 MiB at 256×inter_bw → bytes/inter_bw
        // per node effectively.
        let expect = bytes as f64 / m.network.inter_bw;
        assert!(
            makespan > 0.8 * expect,
            "makespan {makespan} vs trunk-bound {expect}"
        );
        // And far slower than if every node had full injection bandwidth.
        assert!(makespan > 2.0 * (bytes as f64 / m.network.intra_bw));
    }

    #[test]
    fn single_cross_message_is_not_trunk_bound() {
        let m = machine(512);
        let mut net = SimNet::new(m);
        let bytes = 4 << 20;
        let c = net.run(&[Message {
            src: 0,
            dst: 300,
            bytes,
            release: 0.0,
        }]);
        // Alone on the trunk, the node port is the bottleneck.
        let expect = m.network.latency(false) + bytes as f64 / m.network.intra_bw;
        assert!((c[0].finish - expect).abs() < 1e-9);
    }

    #[test]
    fn release_times_are_respected() {
        let m = machine(4);
        let mut net = SimNet::new(m);
        let c = net.run(&[Message {
            src: 0,
            dst: 1,
            bytes: 1024,
            release: 1.0,
        }]);
        assert!(c[0].start >= 1.0);
    }

    #[test]
    fn loopback_is_free() {
        let m = machine(4);
        let mut net = SimNet::new(m);
        let c = net.run(&[Message {
            src: 2,
            dst: 2,
            bytes: 1 << 30,
            release: 0.0,
        }]);
        assert!(c[0].finish < 1e-5);
    }

    #[test]
    fn utilization_accounting() {
        // Saturating cross-supernode traffic drives uplink utilization to
        // ~100% of the makespan; sparse traffic leaves it low.
        let m = machine(512);
        let mut net = SimNet::new(m);
        let bytes = 4 << 20;
        let msgs: Vec<Message> = (0..256)
            .map(|i| Message {
                src: i,
                dst: 256 + i,
                bytes,
                release: 0.0,
            })
            .collect();
        let makespan = net.makespan(&msgs);
        let u = net.uplink_utilization(0, makespan);
        // The makespan includes the final port-drain tail, so a fully
        // saturated uplink reads just under 1.
        assert!(u > 0.75, "saturated uplink utilization {u}");
        // One lonely message: utilization is far below 1.
        net.reset();
        let makespan = net.makespan(&[Message {
            src: 0,
            dst: 300,
            bytes,
            release: 0.0,
        }]);
        let u = net.uplink_utilization(0, makespan);
        assert!(u < 0.5, "sparse uplink utilization {u}");
        assert!(net.injection_utilization(makespan) < 0.1);
    }

    #[test]
    fn reset_clears_state() {
        let m = machine(4);
        let mut net = SimNet::new(m);
        let msg = Message {
            src: 0,
            dst: 1,
            bytes: 1 << 20,
            release: 0.0,
        };
        let a = net.makespan(&[msg]);
        net.reset();
        let b = net.makespan(&[msg]);
        assert!((a - b).abs() < 1e-12);
    }
}
