//! Closed-form α–β cost models for collectives on the two-level topology.
//!
//! These models let the experiments project collective algorithms to the
//! full 96,000-node machine. They charge each algorithm its textbook step
//! structure with the topology-correct constants: intra-supernode steps use
//! `(α_intra, intra_bw)`, cross-supernode steps `(α_inter, inter_bw)`.
//!
//! The key asymmetry BaGuaLu exploits: a **pairwise all-to-all** over `P`
//! nodes pays `Θ(P)` cross-supernode latencies per node, while the
//! **hierarchical all-to-all** pays only `Θ(S + s)` (supernode count plus
//! supernode size) at the price of moving each byte up to three times.
//!
//! Every model here is affine in `bytes`: `t = Σ steps·α + bytes·β_eff`.
//! Wire compression (`WireDType::{F16, BF16}`) halves `bytes` and therefore
//! exactly halves the β term while leaving the α term untouched — the
//! complement of the hierarchical algorithms, which attack α. Experiments
//! feed these models *wire* bytes (`payload.wire_bytes()`), so projections
//! pick up compression with no model changes.

use bagualu_hw::MachineConfig;

/// Cost evaluator bound to a machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveCost {
    pub machine: MachineConfig,
}

impl CollectiveCost {
    pub fn new(machine: MachineConfig) -> CollectiveCost {
        CollectiveCost { machine }
    }

    /// Supernode size `s` clamped to the node count.
    fn s(&self) -> f64 {
        self.machine.supernode_size.min(self.machine.nodes) as f64
    }

    fn alpha_intra(&self) -> f64 {
        self.machine.network.latency(true)
    }

    fn alpha_inter(&self) -> f64 {
        self.machine.network.latency(false)
    }

    // ------------------------------------------------------------ broadcast

    /// Binomial-tree broadcast of `bytes` to `n` ranks.
    pub fn broadcast_tree(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        // Conservatively charge inter-supernode constants once the tree
        // spans supernodes.
        let (alpha, bw) = if n as f64 > self.s() {
            (self.alpha_inter(), self.machine.network.inter_bw)
        } else {
            (self.alpha_intra(), self.machine.network.intra_bw)
        };
        rounds * (alpha + bytes as f64 / bw)
    }

    // ------------------------------------------------------------ allreduce

    /// Flat ring all-reduce of `bytes` over `n` ranks
    /// (reduce-scatter + all-gather, `2(n-1)` steps of `bytes/n`).
    pub fn allreduce_ring(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let chunk = bytes as f64 / n as f64;
        // A rank-ordered ring crosses supernode boundaries on ~S of its n
        // links; each *step* is gated by its slowest concurrent link, which
        // is a cross link whenever the ring spans supernodes.
        let (alpha, bw) = if n as f64 > self.s() {
            (self.alpha_inter(), self.machine.network.inter_bw)
        } else {
            (self.alpha_intra(), self.machine.network.intra_bw)
        };
        2.0 * (n as f64 - 1.0) * (alpha + chunk / bw)
    }

    /// Recursive-doubling all-reduce: `⌈log₂ n⌉` rounds of full-buffer
    /// exchange. Latency-optimal; bandwidth-suboptimal by a factor
    /// `log₂(n)·n/(2(n−1))`. The algorithm of choice for the small scalar
    /// reductions on a training step's control path.
    pub fn allreduce_recursive_doubling(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = (n as f64).log2().ceil();
        // Doubling partners are distance 2^k apart — beyond the first few
        // rounds they live in other supernodes.
        let (alpha, bw) = if n as f64 > self.s() {
            (self.alpha_inter(), self.machine.network.inter_bw)
        } else {
            (self.alpha_intra(), self.machine.network.intra_bw)
        };
        let extra = if n.is_power_of_two() { 0.0 } else { 2.0 }; // fold/unfold
        (rounds + extra) * (alpha + bytes as f64 / bw)
    }

    /// Hierarchical all-reduce: reduce-scatter inside the supernode, ring
    /// all-reduce of the local shard across supernodes, all-gather inside.
    pub fn allreduce_hierarchical(&self, n: usize, bytes: usize) -> f64 {
        let s = self.s().min(n as f64);
        let local_steps = s - 1.0;
        let chunk_local = bytes as f64 / s;
        let t_local =
            2.0 * local_steps * (self.alpha_intra() + chunk_local / self.machine.network.intra_bw);

        let sn = (n as f64 / s).ceil();
        if sn <= 1.0 {
            return t_local;
        }
        // Each of the s local ranks owns a shard of bytes/s and runs a ring
        // over S supernode peers concurrently.
        let shard = bytes as f64 / s;
        let t_cross =
            2.0 * (sn - 1.0) * (self.alpha_inter() + shard / sn / self.machine.network.inter_bw);
        t_local + t_cross
    }

    // ------------------------------------------------------------ all-to-all

    /// Pairwise-exchange all-to-all: every one of `n` ranks sends
    /// `bytes_per_pair` to every other rank, one partner per round.
    pub fn alltoall_pairwise(&self, n: usize, bytes_per_pair: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let b = bytes_per_pair as f64;
        let s = self.s();
        // Of the n-1 partners, (s-1) share the supernode, the rest do not.
        let local_partners = (s - 1.0).min(n as f64 - 1.0);
        let remote_partners = (n as f64 - 1.0) - local_partners;
        local_partners * (self.alpha_intra() + b / self.machine.network.intra_bw)
            + remote_partners * (self.alpha_inter() + b / self.machine.network.inter_bw)
    }

    /// Hierarchical (two-phase, aggregating) all-to-all, matching the
    /// algorithm implemented in `bagualu_comm::alltoallv_hierarchical`:
    ///
    /// 1. intra-supernode exchange bundling messages by destination local
    ///    index — `s-1` rounds of `S·b`,
    /// 2. inter-supernode exchange of aggregated bundles between same-index
    ///    ranks — `S-1` rounds of `s·b`.
    ///
    /// Every message reaches its destination in exactly two hops; per-rank
    /// cross-supernode latency drops from `Θ(n)·α_inter` to `Θ(S)·α_inter`,
    /// at the price of moving each byte twice.
    pub fn alltoall_hierarchical(&self, n: usize, bytes_per_pair: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let b = bytes_per_pair as f64;
        let s = self.s().min(n as f64);
        let sn = (n as f64 / s).ceil();
        if sn <= 1.0 {
            // Degenerates to the flat algorithm inside one supernode.
            return self.alltoall_pairwise(n, bytes_per_pair);
        }
        let t_intra_phase =
            (s - 1.0) * (self.alpha_intra() + sn * b / self.machine.network.intra_bw);
        let t_inter_phase =
            (sn - 1.0) * (self.alpha_inter() + s * b / self.machine.network.inter_bw);
        t_intra_phase + t_inter_phase
    }

    /// Two-level all-to-all with **expert-placement locality**: a fraction
    /// `local_frac` of each rank's total payload `bytes_per_rank` is
    /// destined to experts inside its own supernode (delivered directly),
    /// and the rest crosses supernodes through the aggregated phase.
    ///
    /// Round-robin placement gives `local_frac ≈ s/n`; topology-aware
    /// placement/gating raises it, shrinking the expensive inter-supernode
    /// phase. Backs the placement ablation (experiment E15).
    pub fn alltoall_with_locality(&self, n: usize, bytes_per_rank: usize, local_frac: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        assert!((0.0..=1.0).contains(&local_frac));
        let s = self.s().min(n as f64);
        let sn = (n as f64 / s).ceil();
        let v = bytes_per_rank as f64;
        // Intra-supernode: direct delivery of the local fraction.
        let local_peers = (s - 1.0).max(1.0);
        let t_local = (s - 1.0)
            * (self.alpha_intra() + local_frac * v / local_peers / self.machine.network.intra_bw);
        if sn <= 1.0 {
            return t_local;
        }
        // Inter-supernode: the remaining volume in aggregated bundles.
        let t_cross = (sn - 1.0)
            * (self.alpha_inter()
                + (1.0 - local_frac) * v / (sn - 1.0) / self.machine.network.inter_bw);
        t_local + t_cross
    }

    /// All-gather of `bytes` per rank over `n` ranks (ring).
    pub fn allgather_ring(&self, n: usize, bytes: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let (alpha, bw) = if n as f64 > self.s() {
            (self.alpha_inter(), self.machine.network.inter_bw)
        } else {
            (self.alpha_intra(), self.machine.network.intra_bw)
        };
        (n as f64 - 1.0) * (alpha + bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(nodes: usize) -> CollectiveCost {
        CollectiveCost::new(MachineConfig::sunway_subset(nodes))
    }

    #[test]
    fn trivial_sizes_cost_nothing() {
        let c = cc(1024);
        assert_eq!(c.allreduce_ring(1, 1 << 20), 0.0);
        assert_eq!(c.alltoall_pairwise(0, 1024), 0.0);
        assert_eq!(c.alltoall_hierarchical(1, 1024), 0.0);
        assert_eq!(c.broadcast_tree(1, 1024), 0.0);
    }

    #[test]
    fn hierarchical_a2a_wins_at_scale_for_small_messages() {
        let c = cc(96_000);
        let b = 256; // small per-pair payload — the latency-dominated regime
                     // MoE dispatch actually sits in at 96k ranks
        let flat = c.alltoall_pairwise(96_000, b);
        let hier = c.alltoall_hierarchical(96_000, b);
        assert!(
            hier < flat / 10.0,
            "hierarchical must dominate at scale: flat={flat:.3}s hier={hier:.3}s"
        );
    }

    #[test]
    fn pairwise_a2a_wins_inside_one_supernode() {
        let c = cc(64);
        let flat = c.alltoall_pairwise(64, 1 << 20);
        let hier = c.alltoall_hierarchical(64, 1 << 20);
        // Single supernode: hierarchical degenerates to pairwise.
        assert_eq!(flat, hier);
    }

    #[test]
    fn a2a_crossover_exists_in_message_size() {
        // At full machine scale, very large per-pair payloads erode the
        // hierarchical advantage (3× volume), while small payloads favour it
        // enormously. Verify the ratio moves in the right direction.
        let c = cc(96_000);
        let r_small = c.alltoall_hierarchical(96_000, 256) / c.alltoall_pairwise(96_000, 256);
        let r_large =
            c.alltoall_hierarchical(96_000, 1 << 20) / c.alltoall_pairwise(96_000, 1 << 20);
        assert!(
            r_small < r_large,
            "advantage should shrink as messages grow"
        );
        assert!(r_small < 0.05);
    }

    #[test]
    fn hierarchical_allreduce_beats_flat_ring_at_scale() {
        let c = cc(96_000);
        let bytes = 256 << 20; // 256 MiB of gradients
        let flat = c.allreduce_ring(96_000, bytes);
        let hier = c.allreduce_hierarchical(96_000, bytes);
        assert!(hier < flat, "flat={flat:.3}s hier={hier:.3}s");
    }

    #[test]
    fn costs_scale_monotonically_with_bytes_and_ranks() {
        let c = cc(4096);
        assert!(c.alltoall_pairwise(4096, 2048) > c.alltoall_pairwise(4096, 1024));
        assert!(c.alltoall_pairwise(4096, 1024) > c.alltoall_pairwise(2048, 1024));
        assert!(c.allreduce_ring(4096, 2 << 20) > c.allreduce_ring(4096, 1 << 20));
        assert!(c.allreduce_hierarchical(4096, 2 << 20) > c.allreduce_hierarchical(4096, 1 << 20));
        assert!(c.broadcast_tree(1024, 1 << 20) > c.broadcast_tree(64, 1 << 20));
    }

    #[test]
    fn recursive_doubling_wins_for_tiny_buffers_loses_for_big() {
        let c = cc(96_000);
        // 4-byte flag: log(n) α beats 2(n-1) α by orders of magnitude.
        assert!(c.allreduce_recursive_doubling(96_000, 4) < c.allreduce_ring(96_000, 4) / 100.0);
        assert!(c.allreduce_recursive_doubling(96_000, 4) < c.allreduce_hierarchical(96_000, 4));
        // 1 GiB of gradients: full-buffer rounds are hopeless.
        let big = 1 << 30;
        assert!(
            c.allreduce_recursive_doubling(96_000, big) > c.allreduce_hierarchical(96_000, big)
        );
    }

    #[test]
    fn locality_reduces_alltoall_time() {
        let c = cc(96_000);
        let v = 32 << 20; // 32 MiB per rank total
        let baseline = c.alltoall_with_locality(96_000, v, 256.0 / 96_000.0);
        let local = c.alltoall_with_locality(96_000, v, 0.75);
        assert!(
            local < baseline,
            "locality must help: {local} vs {baseline}"
        );
        // Fully local traffic never touches the tapered links.
        let all_local = c.alltoall_with_locality(96_000, v, 1.0);
        assert!(all_local < local);
    }

    #[test]
    fn halving_bytes_halves_the_beta_term_only() {
        // 16-bit wire compression halves `bytes`. Because every model is
        // affine in bytes, the bandwidth (β) term must halve exactly while
        // the latency (α) term — the cost at bytes = 0 — stays fixed.
        let c = cc(96_000);
        let n = 96_000;
        let b = 64 << 20;
        let models: [(&str, &dyn Fn(usize) -> f64); 4] = [
            ("ring", &|bytes| c.allreduce_ring(n, bytes)),
            ("hier_ar", &|bytes| c.allreduce_hierarchical(n, bytes)),
            ("pairwise", &|bytes| c.alltoall_pairwise(n, bytes)),
            ("hier_a2a", &|bytes| c.alltoall_hierarchical(n, bytes)),
        ];
        for (name, t) in models {
            let alpha = t(0);
            let beta_full = t(b) - alpha;
            let beta_half = t(b / 2) - alpha;
            assert!(beta_full > 0.0, "{name}: β term must be positive");
            let ratio = beta_half / beta_full;
            assert!(
                (ratio - 0.5).abs() < 1e-9,
                "{name}: β must halve exactly, got ratio {ratio}"
            );
            // α unchanged by construction; the end-to-end speedup is
            // strictly less than 2× whenever α > 0.
            let speedup = t(b) / t(b / 2);
            assert!(speedup > 1.0 && speedup < 2.0, "{name}: speedup {speedup}");
        }
    }

    #[test]
    fn allgather_ring_scales_with_ranks() {
        let c = cc(1024);
        assert!(c.allgather_ring(1024, 1 << 16) > c.allgather_ring(128, 1 << 16));
        assert_eq!(c.allgather_ring(1, 1 << 16), 0.0);
    }
}
