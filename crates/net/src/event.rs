//! A minimal discrete-event queue with a monotone simulated clock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in seconds, wrapped so it can live in a `BinaryHeap`
/// (total order; NaN is forbidden by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(pub f64);

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime must be finite")
    }
}

/// A time-ordered queue of events carrying payload `E`.
///
/// Events scheduled at equal times pop in insertion order (a stable
/// tie-break keeps simulations deterministic).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `at` (seconds). Panics if `at` is
    /// NaN or in the past — discrete-event time never rewinds.
    pub fn schedule(&mut self, at: f64, event: E) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(
            at >= self.now,
            "cannot schedule in the past: {at} < {}",
            self.now
        );
        let idx = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((SimTime(at), self.seq, idx)));
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let Reverse((t, _, idx)) = self.heap.pop()?;
        self.now = t.0;
        let e = self.payloads[idx]
            .take()
            .expect("event payload already taken");
        Some((t.0, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
