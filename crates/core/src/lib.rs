//! BaGuaLu-rs: brain-scale MoE pretraining, reproduced in Rust.
//!
//! This crate is the public facade over the full stack:
//!
//! * [`bagualu_tensor`] — compute kernels and software half precision,
//! * [`bagualu_hw`] / [`bagualu_net`] — the simulated Sunway machine and
//!   network (substituting for hardware this reproduction cannot access),
//! * [`bagualu_comm`] — rank communicator and collective algorithms,
//! * [`bagualu_model`] — transformer + mixture-of-experts layers,
//! * [`bagualu_optim`] — Adam, loss scaling, mixed precision,
//! * [`bagualu_parallel`] — MoDa hybrid parallelism,
//! * [`bagualu_serve`] — continuous-batching expert-parallel inference
//!   with a paged KV cache (see `docs/SERVING.md`),
//! * [`bagualu_trace`] — per-rank structured tracing (spans, counters,
//!   Chrome-trace export; see `docs/OBSERVABILITY.md`). Enable it with
//!   [`trainer::TrainConfig::trace`] and read the result from
//!   [`trainer::TrainReport::trace`].
//!
//! What this crate adds:
//!
//! * [`trainer`] — a multi-rank functional trainer (one OS thread per rank)
//!   with mixed precision, gradient clipping, and full metrics,
//! * [`data`] — synthetic workload generators (learnable next-token tasks,
//!   Zipf-skewed token streams that stress gate load balancing),
//! * [`checkpoint`] — sharded binary checkpointing,
//! * [`perfmodel`] — the performance projection to the full 96,000-node /
//!   37-million-core machine that regenerates the paper-style scaling
//!   tables and figures,
//! * [`metrics`] — formatting and throughput bookkeeping.
//!
//! # Quickstart
//!
//! ```
//! use bagualu::trainer::{TrainConfig, Trainer};
//! use bagualu::model::config::ModelConfig;
//!
//! let cfg = TrainConfig {
//!     model: ModelConfig::tiny(),
//!     nranks: 2,
//!     steps: 5,
//!     ..TrainConfig::default()
//! };
//! let report = Trainer::new(cfg).run();
//! assert_eq!(report.loss_curve.len(), 5);
//! ```

pub mod checkpoint;
pub mod data;
pub mod metrics;
pub mod perfmodel;
pub mod runconfig;
pub mod tokenizer;
pub mod trainer;

pub use checkpoint::{
    load_params, load_params_from_files, load_params_sharded, save_params, save_params_sharded,
};
pub use perfmodel::{
    checkpoint_waste_fraction, young_daly_tau_opt, PerfInput, Projection, StepBreakdown,
};
pub use runconfig::{RunConfig, RUN_CONFIG_VERSION};
pub use tokenizer::Bpe;
pub use trainer::{FtConfig, TrainConfig, TrainReport, Trainer};

// Re-export the sub-crates under one roof for downstream users.
pub use bagualu_comm as comm;
pub use bagualu_hw as hw;
pub use bagualu_model as model;
pub use bagualu_net as net;
pub use bagualu_optim as optim;
pub use bagualu_parallel as parallel;
pub use bagualu_serve as serve;
pub use bagualu_tensor as tensor;
pub use bagualu_trace as trace;
