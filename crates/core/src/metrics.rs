//! Metric bookkeeping and human-readable formatting.

/// Format a FLOP/s figure with the right SI prefix.
pub fn format_flops(flops: f64) -> String {
    format_si(flops, "FLOPS")
}

/// Format a byte count (binary prefixes).
pub fn format_bytes(bytes: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Format a value with SI prefixes (k, M, G, T, P, E).
pub fn format_si(value: f64, unit: &str) -> String {
    const PREFIX: [&str; 7] = ["", "k", "M", "G", "T", "P", "E"];
    let mut v = value;
    let mut p = 0;
    while v.abs() >= 1000.0 && p + 1 < PREFIX.len() {
        v /= 1000.0;
        p += 1;
    }
    format!("{v:.2} {}{}", PREFIX[p], unit)
}

/// Format a parameter count the way the paper does (e.g. "14.5T").
pub fn format_params(params: u128) -> String {
    let v = params as f64;
    if v >= 1e12 {
        format!("{:.2}T", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else {
        format!("{params}")
    }
}

/// Model FLOPs utilization: the fraction of a machine's peak that the
/// model's *useful* arithmetic sustains — the standard cross-system
/// efficiency metric for large-model training.
pub fn mfu(tokens_per_sec: f64, flops_per_token_train: f64, machine_peak_flops: f64) -> f64 {
    assert!(machine_peak_flops > 0.0);
    (tokens_per_sec * flops_per_token_train / machine_peak_flops).clamp(0.0, 1.0)
}

/// Online mean/max accumulator for per-step statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stat {
    pub count: u64,
    pub sum: f64,
    pub max: f64,
}

impl Stat {
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v > self.max || self.count == 1 {
            self.max = v;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_formatting() {
        assert_eq!(format_flops(1.002e18), "1.00 EFLOPS");
        assert_eq!(format_flops(2.3e12), "2.30 TFLOPS");
        assert_eq!(format_si(999.0, "x"), "999.00 x");
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512.0), "512.00 B");
        assert_eq!(format_bytes(2.0 * 1024.0 * 1024.0), "2.00 MiB");
    }

    #[test]
    fn params_formatting() {
        assert_eq!(format_params(174_000_000_000_000), "174.00T");
        assert_eq!(format_params(1_930_000_000_000), "1.93T");
        assert_eq!(format_params(2_600_000_000), "2.60B");
        assert_eq!(format_params(125_000_000), "125.0M");
        assert_eq!(format_params(123), "123");
    }

    #[test]
    fn mfu_is_a_fraction() {
        // 1M tok/s at 1 GF/token on a 10 PF machine = 10% MFU.
        assert!((mfu(1e6, 1e9, 1e16) - 0.1).abs() < 1e-12);
        assert_eq!(mfu(1e20, 1e9, 1e16), 1.0); // clamped
        assert_eq!(mfu(0.0, 1e9, 1e16), 0.0);
    }

    #[test]
    fn stat_accumulates() {
        let mut s = Stat::default();
        s.push(1.0);
        s.push(3.0);
        s.push(2.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }
}
