//! The unified, serializable description of a run: [`RunConfig`].
//!
//! Every knob the stack exposes — model preset and gate, world size, wire
//! dtype, placement policy, locality bias, compute backend, overlap bucket
//! size, checkpoint interval, supernode size, serving engine limits — lives
//! here as one versioned, TOML-(de)serializable struct. It is the single
//! source of truth the rest of the system is constructed *from*:
//!
//! * the CLI parses flags **into** a `RunConfig` (and `--config FILE` /
//!   `--dump-config` read and write the TOML form),
//! * [`TrainConfig`], [`FtConfig`] and the serving [`EngineConfig`] are
//!   built **from** it ([`to_train_config`](RunConfig::to_train_config),
//!   [`to_ft_config`](RunConfig::to_ft_config),
//!   [`to_engine_config`](RunConfig::to_engine_config)),
//! * [`TrainReport`](crate::trainer::TrainReport) and checkpoints embed it
//!   (the `__runconfig__` record), so any run is reproducible from one
//!   file,
//! * the auto-tuner (`bagualu-tune`) searches the space of `RunConfig`s
//!   and emits its winner as a TOML that feeds straight back into
//!   `bagualu train --config`.
//!
//! The TOML dialect is the small subset the hand-rolled reader/writer here
//! agree on (no external dependency): `[section]` tables, `key = value`
//! lines with string / integer / float / boolean values, `#` comments.
//! Unknown sections or keys are **errors** — a typo must never silently
//! fall back to a default — and contradictory settings are rejected by
//! [`validate`](RunConfig::validate) with the fix spelled out.

use crate::data::TokenDistribution;
use crate::trainer::{FtConfig, TrainConfig};
use bagualu_comm::payload::WireDType;
use bagualu_model::config::ModelConfig;
use bagualu_model::moe::GateKind;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::ExpertPlacement;
use bagualu_serve::{EngineConfig, ServerOptions};
use bagualu_tensor::ops::ComputeBackend;
use bagualu_tensor::DType;
use std::fmt::Write as _;

/// The config-schema version this build reads and writes.
pub const RUN_CONFIG_VERSION: u32 = 1;

/// Resolve a model preset name (`tiny | 1.93t | 14.5t | 174t`).
pub fn preset(name: &str) -> Result<ModelConfig, String> {
    match name {
        "tiny" => Ok(ModelConfig::tiny()),
        "1.93t" => Ok(ModelConfig::bagualu_1_93t()),
        "14.5t" => Ok(ModelConfig::bagualu_14_5t()),
        "174t" => Ok(ModelConfig::bagualu_174t()),
        other => Err(format!(
            "unknown preset: {other} (tiny | 1.93t | 14.5t | 174t)"
        )),
    }
}

/// `[model]` — which model the run trains or serves.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSection {
    /// Architecture preset the remaining fields override.
    pub preset: String,
    /// Global expert count (overrides the preset's).
    pub experts: usize,
    /// Gating policy.
    pub gate: GateKind,
}

/// `[train]` — workload shape and optimizer basics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSection {
    /// Data/expert-parallel width (threads).
    pub ranks: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Sequences per rank per step.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Learning rate.
    pub lr: f32,
    /// Working precision of parameters.
    pub dtype: DType,
    /// Master RNG seed (data, init, fault schedules).
    pub seed: u64,
    /// Zipf skew of the token stream (0 = uniform).
    pub skew: f64,
    /// ZeRO-style sharded dense optimizer (requires fp32, disables clip).
    pub zero: bool,
}

/// `[comm]` — everything about bytes in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSection {
    /// Element format for tensor traffic on the wire.
    pub wire_dtype: WireDType,
    /// Two-phase hierarchical all-to-all (vs pairwise).
    pub hierarchical: bool,
    /// Supernode size for the hierarchical a2a; 0 = infer `ranks/2`.
    pub supernode_size: usize,
    /// Overlap the dense gradient all-reduce with backward compute.
    pub overlap: bool,
    /// Overlap bucket size, KiB of wire payload.
    pub bucket_kib: usize,
}

/// `[placement]` — expert↔rank mapping and the gate's locality bias.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSection {
    /// Placement policy (`roundrobin | block | supernode[:S] | shed:V`).
    pub policy: ExpertPlacement,
    /// Log-space gate bonus toward intra-supernode experts (0 = off).
    pub locality_bias: f32,
}

/// `[compute]` — the GEMM/row-op kernel tier every rank installs.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSection {
    /// Backend (`reference | tiled | tiled:fma | half[:fp16|:bf16]`).
    pub backend: ComputeBackend,
}

/// `[ft]` — checkpointing, recovery, and degradation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FtSection {
    /// Run through the fault-tolerant driver (checkpoints + recovery).
    pub enabled: bool,
    /// Checkpoint directory ("" = a per-process temp directory).
    pub ckpt_dir: String,
    /// Checkpoint every this many steps.
    pub ckpt_every: usize,
    /// Give up after this many restarts.
    pub max_restarts: usize,
    /// Continue on R−1 ranks after a crash instead of full restore.
    pub elastic: bool,
    /// Straggler flag threshold (× median send occupancy); 0 = off.
    pub straggler_factor: f64,
    /// Samples averaged before the straggler detector may flag.
    pub straggler_window: usize,
}

/// `[serve]` — the inference engine's admission and memory limits.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSection {
    /// Maximum in-flight sequences per rank.
    pub max_batch: usize,
    /// KV pool size in blocks.
    pub kv_blocks: usize,
    /// Positions per KV block.
    pub block_tokens: usize,
}

/// The full, versioned description of a run. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Schema version ([`RUN_CONFIG_VERSION`]).
    pub version: u32,
    /// `[model]`.
    pub model: ModelSection,
    /// `[train]`.
    pub train: TrainSection,
    /// `[comm]`.
    pub comm: CommSection,
    /// `[placement]`.
    pub placement: PlacementSection,
    /// `[compute]`.
    pub compute: ComputeSection,
    /// `[ft]`.
    pub ft: FtSection,
    /// `[serve]`.
    pub serve: ServeSection,
}

impl Default for RunConfig {
    /// The all-defaults run — also the single source of the CLI's flag
    /// defaults (the CLI derives every default from this value; a test pins
    /// the two can never drift). Note `compute` defaults to the fast tiled
    /// kernels (bit-identical to the reference oracle), matching the CLI,
    /// while the *library* [`TrainConfig::default`] stays on `Reference`.
    fn default() -> RunConfig {
        RunConfig {
            version: RUN_CONFIG_VERSION,
            model: ModelSection {
                preset: "tiny".into(),
                experts: 4,
                gate: GateKind::Top2,
            },
            train: TrainSection {
                ranks: 2,
                steps: 50,
                batch: 2,
                seq: 8,
                lr: 1e-2,
                dtype: DType::F32,
                seed: 42,
                skew: 0.0,
                zero: false,
            },
            comm: CommSection {
                wire_dtype: WireDType::F32,
                hierarchical: false,
                supernode_size: 0,
                overlap: true,
                bucket_kib: 1024,
            },
            placement: PlacementSection {
                policy: ExpertPlacement::RoundRobin,
                locality_bias: 0.0,
            },
            compute: ComputeSection {
                backend: ComputeBackend::Tiled,
            },
            ft: FtSection {
                enabled: false,
                ckpt_dir: String::new(),
                ckpt_every: 10,
                max_restarts: 3,
                elastic: false,
                straggler_factor: 0.0,
                straggler_window: 3,
            },
            serve: ServeSection {
                max_batch: 8,
                kv_blocks: 64,
                block_tokens: 4,
            },
        }
    }
}

impl RunConfig {
    /// The all-to-all topology this config names (supernode size 0 infers
    /// `ranks/2`, the CLI's historical `--hierarchical` behavior).
    pub fn a2a(&self) -> A2aKind {
        if self.comm.hierarchical {
            A2aKind::Hierarchical {
                supernode_size: if self.comm.supernode_size == 0 {
                    self.train.ranks.max(2) / 2
                } else {
                    self.comm.supernode_size
                },
            }
        } else {
            A2aKind::Pairwise
        }
    }

    /// Cross-knob validation: reject contradictory or meaningless settings
    /// with the fix spelled out. Individual field formats are validated at
    /// parse time; this checks the combinations.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != RUN_CONFIG_VERSION {
            return Err(format!(
                "unsupported config version {} (this build reads version {RUN_CONFIG_VERSION})",
                self.version
            ));
        }
        preset(&self.model.preset)?;
        if self.train.ranks == 0 {
            return Err("train.ranks must be >= 1".into());
        }
        if self.train.steps == 0 || self.train.batch == 0 || self.train.seq == 0 {
            return Err("train.steps, train.batch, and train.seq must all be >= 1".into());
        }
        if self.train.lr.is_nan() || self.train.lr <= 0.0 {
            return Err(format!("train.lr must be positive, got {}", self.train.lr));
        }
        if self.train.skew < 0.0 {
            return Err(format!(
                "train.skew must be >= 0 (0 = uniform), got {}",
                self.train.skew
            ));
        }
        if self.model.experts > 0 && !self.model.experts.is_multiple_of(self.train.ranks) {
            return Err(format!(
                "model.experts = {} must divide evenly over train.ranks = {} \
                 (every rank hosts the same number of experts)",
                self.model.experts, self.train.ranks
            ));
        }
        if self.train.zero && self.train.dtype != DType::F32 {
            return Err(format!(
                "train.zero shards an fp32 optimizer; it cannot run with train.dtype = \
                 \"{}\" — set dtype = \"fp32\" or drop zero",
                self.train.dtype
            ));
        }
        if self.comm.supernode_size > 0 && !self.comm.hierarchical {
            return Err(
                "comm.supernode_size only shapes the hierarchical all-to-all; set \
                 comm.hierarchical = true or drop it (a supernode *placement* carries \
                 its own size as placement.policy = \"supernode:S\")"
                    .into(),
            );
        }
        if self.placement.policy == (ExpertPlacement::Supernode { supernode_size: 0 })
            && !self.comm.hierarchical
        {
            return Err(
                "placement.policy = \"supernode\" needs an explicit size (\"supernode:S\") \
                 unless comm.hierarchical = true gives it a topology to infer one from"
                    .into(),
            );
        }
        self.a2a()
            .validate(self.train.ranks)
            .map_err(|e| format!("comm: {e}"))?;
        self.resolved_placement()
            .validate(self.train.ranks)
            .map_err(|e| format!("placement.policy: {e}"))?;
        if self.placement.locality_bias.is_nan() || self.placement.locality_bias < 0.0 {
            return Err(format!(
                "placement.locality_bias must be >= 0, got {}",
                self.placement.locality_bias
            ));
        }
        self.compute
            .backend
            .validate()
            .map_err(|e| format!("compute.backend: {e}"))?;
        if self.comm.bucket_kib == 0 {
            return Err("comm.bucket_kib must be >= 1 (the overlap bucket cannot be empty)".into());
        }
        // [ft]: knobs that only mean something under the recovery driver
        // must not be set while it is off — a config that silently ignores
        // half its keys is worse than an error.
        if !self.ft.enabled {
            if self.ft.elastic {
                return Err(
                    "ft.elastic = true but ft.enabled = false — the elastic resize only \
                     exists inside the fault-tolerant driver; set ft.enabled = true or \
                     drop elastic"
                        .into(),
                );
            }
            if self.ft.straggler_factor != 0.0 {
                return Err(
                    "ft.straggler_factor is set but ft.enabled = false — straggler \
                     detection runs inside the fault-tolerant driver; set ft.enabled = \
                     true or drop it"
                        .into(),
                );
            }
        } else {
            if self.ft.elastic && !self.compute.backend.bit_identical() {
                return Err(format!(
                    "ft.elastic verifies its resume against a fresh shrunk run bit for \
                     bit, but compute.backend = \"{}\" only promises a tolerance band; \
                     use \"tiled\" (same kernels, bit-identical) or drop elastic",
                    self.compute.backend
                ));
            }
            if self.ft.elastic && self.train.ranks < 2 {
                return Err(
                    "ft.elastic needs train.ranks >= 2: a 1-rank world has no survivors \
                     to continue on"
                        .into(),
                );
            }
            if self.ft.ckpt_every == 0 && (self.ft.elastic || self.ft.straggler_factor != 0.0) {
                return Err(
                    "ft.ckpt_every = 0 disables checkpoints, but ft.elastic re-shards \
                     from the last checkpoint and straggler migration re-places experts \
                     at checkpoint boundaries; give ckpt_every a positive interval"
                        .into(),
                );
            }
            if self.ft.straggler_factor != 0.0 && self.ft.straggler_factor <= 1.0 {
                return Err(format!(
                    "ft.straggler_factor {} would flag healthy ranks on noise alone; it \
                     must exceed 1.0 (e.g. 1.5), or be 0 to disable detection",
                    self.ft.straggler_factor
                ));
            }
            if self.ft.straggler_window == 0 {
                return Err("ft.straggler_window must be >= 1".into());
            }
        }
        if self.serve.max_batch == 0 || self.serve.kv_blocks == 0 || self.serve.block_tokens == 0 {
            return Err(
                "serve.max_batch, serve.kv_blocks, and serve.block_tokens must all be >= 1".into(),
            );
        }
        Ok(())
    }

    /// The placement policy with inferred supernode sizes resolved (mirrors
    /// [`TrainConfig::resolved_placement`], but total — unresolvable
    /// configs are caught by [`validate`](Self::validate) instead of
    /// panicking).
    pub fn resolved_placement(&self) -> ExpertPlacement {
        match self.placement.policy {
            ExpertPlacement::Supernode { supernode_size: 0 } => ExpertPlacement::Supernode {
                supernode_size: self.a2a().supernode_size(),
            },
            p => p,
        }
    }

    /// Build the trainer's config. Fails on anything
    /// [`validate`](Self::validate) rejects. The `trace` flag (an
    /// observation artifact, not a run description) starts `false`; callers
    /// that want a trace set it on the result.
    pub fn to_train_config(&self) -> Result<TrainConfig, String> {
        self.validate()?;
        let model = ModelConfig {
            n_experts: self.model.experts,
            gate: self.model.gate,
            ..preset(&self.model.preset)?
        };
        Ok(TrainConfig {
            model,
            nranks: self.train.ranks,
            batch_per_rank: self.train.batch,
            seq: self.train.seq,
            steps: self.train.steps,
            lr: self.train.lr,
            dtype: self.train.dtype,
            a2a: self.a2a(),
            clip: if self.train.zero { None } else { Some(1.0) },
            seed: self.train.seed,
            data: if self.train.skew > 0.0 {
                TokenDistribution::Zipf(self.train.skew)
            } else {
                TokenDistribution::Uniform
            },
            zero_optimizer: self.train.zero,
            overlap: self.comm.overlap,
            bucket_bytes: self.comm.bucket_kib << 10,
            wire: self.comm.wire_dtype,
            placement: self.placement.policy,
            compute: self.compute.backend,
            locality_bias: self.placement.locality_bias,
            ..TrainConfig::default()
        })
    }

    /// Build the recovery driver's config, or `None` when `ft.enabled`
    /// is off. An empty `ckpt_dir` maps to a per-process temp directory
    /// (matching the CLI's historical behavior); the fault *schedule* is
    /// injection tooling, not a run description, so it stays
    /// [`FaultPlan::none`](bagualu_comm::FaultPlan::none) here.
    pub fn to_ft_config(&self) -> Option<FtConfig> {
        if !self.ft.enabled {
            return None;
        }
        let dir = if self.ft.ckpt_dir.is_empty() {
            std::env::temp_dir().join(format!("bagualu-run-ckpt-{}", std::process::id()))
        } else {
            std::path::PathBuf::from(&self.ft.ckpt_dir)
        };
        Some(FtConfig {
            ckpt_every: self.ft.ckpt_every,
            max_restarts: self.ft.max_restarts,
            elastic: self.ft.elastic,
            straggler_factor: (self.ft.straggler_factor != 0.0).then_some(self.ft.straggler_factor),
            straggler_window: self.ft.straggler_window,
            ..FtConfig::new(dir)
        })
    }

    /// Build the serving engine's per-rank limits.
    pub fn to_engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_batch: self.serve.max_batch,
            kv_blocks: self.serve.kv_blocks,
            block_tokens: self.serve.block_tokens,
        }
    }

    /// Build the serving server options (`ranks` comes from `[train]` —
    /// one world size per run).
    pub fn to_server_options(&self, trace: bool) -> ServerOptions {
        ServerOptions {
            nranks: self.train.ranks,
            engine: self.to_engine_config(),
            trace,
        }
    }

    /// Copy `ft`'s knobs into the `[ft]` section (enabled).
    pub fn with_ft(mut self, ft: &FtConfig) -> RunConfig {
        self.ft = FtSection {
            enabled: true,
            ckpt_dir: ft.ckpt_dir.display().to_string(),
            ckpt_every: ft.ckpt_every,
            max_restarts: ft.max_restarts,
            elastic: ft.elastic,
            straggler_factor: ft.straggler_factor.unwrap_or(0.0),
            straggler_window: ft.straggler_window,
        };
        self
    }

    /// Recover the `RunConfig` a [`TrainConfig`] (plus optional
    /// [`FtConfig`]) was built from — the inverse of
    /// [`to_train_config`](Self::to_train_config), used to stamp reports
    /// and checkpoints so they are self-describing.
    ///
    /// Returns `None` when `cfg` uses a library-only feature the config
    /// schema does not describe (a custom model that matches no preset, LR
    /// schedules, gradient accumulation, periodic eval, disabled loss
    /// scaling, or a clip policy other than the standard `zero ⇒ none,
    /// else 1.0`). For every config the schema *can* express,
    /// `reconstruct(rc.to_train_config()?, …)` round-trips back to the
    /// same `TrainConfig`.
    pub fn reconstruct(cfg: &TrainConfig, ft: Option<&FtConfig>) -> Option<RunConfig> {
        let mut preset_name = None;
        for name in ["tiny", "1.93t", "14.5t", "174t"] {
            let candidate = ModelConfig {
                n_experts: cfg.model.n_experts,
                gate: cfg.model.gate,
                ..preset(name).expect("known preset")
            };
            if candidate == cfg.model {
                preset_name = Some(name);
                break;
            }
        }
        let preset_name = preset_name?;
        let skew = match cfg.data {
            TokenDistribution::Uniform => 0.0,
            // Zipf(0) is spelled `Uniform` by the schema; a literal
            // `Zipf(0.0)` (or Burst, the adversarial stress stream) is a
            // library-only shape.
            TokenDistribution::Zipf(s) if s > 0.0 => s,
            TokenDistribution::Zipf(_) | TokenDistribution::Burst => return None,
        };
        let expected_clip = if cfg.zero_optimizer { None } else { Some(1.0) };
        if cfg.clip != expected_clip
            || cfg.schedule.is_some()
            || cfg.grad_accum != 1
            || cfg.eval_every.is_some()
            || cfg.disable_loss_scaling
        {
            return None;
        }
        if !cfg.bucket_bytes.is_multiple_of(1 << 10) || cfg.bucket_bytes == 0 {
            return None;
        }
        let (hierarchical, supernode_size) = match cfg.a2a {
            A2aKind::Pairwise => (false, 0),
            A2aKind::Hierarchical { supernode_size } => (true, supernode_size),
        };
        let rc = RunConfig {
            version: RUN_CONFIG_VERSION,
            model: ModelSection {
                preset: preset_name.into(),
                experts: cfg.model.n_experts,
                gate: cfg.model.gate,
            },
            train: TrainSection {
                ranks: cfg.nranks,
                steps: cfg.steps,
                batch: cfg.batch_per_rank,
                seq: cfg.seq,
                lr: cfg.lr,
                dtype: cfg.dtype,
                seed: cfg.seed,
                skew,
                zero: cfg.zero_optimizer,
            },
            comm: CommSection {
                wire_dtype: cfg.wire,
                hierarchical,
                supernode_size,
                overlap: cfg.overlap,
                bucket_kib: cfg.bucket_bytes >> 10,
            },
            placement: PlacementSection {
                policy: cfg.placement,
                locality_bias: cfg.locality_bias,
            },
            compute: ComputeSection {
                backend: cfg.compute,
            },
            ..RunConfig::default()
        };
        Some(match ft {
            Some(ft) => rc.with_ft(ft),
            None => rc,
        })
    }

    // ---------------------------------------------------------------- TOML

    /// Serialize to the canonical TOML form.
    /// [`from_toml`](Self::from_toml) parses it back to an equal value.
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# bagualu run configuration (docs/TUNING.md)");
        let _ = writeln!(s, "# reproduce with: bagualu train --config <this file>");
        let _ = writeln!(s, "version = {}", self.version);
        let _ = writeln!(s, "\n[model]");
        let _ = writeln!(s, "preset = \"{}\"", self.model.preset);
        let _ = writeln!(s, "experts = {}", self.model.experts);
        let _ = writeln!(s, "gate = \"{}\"", self.model.gate);
        let _ = writeln!(s, "\n[train]");
        let _ = writeln!(s, "ranks = {}", self.train.ranks);
        let _ = writeln!(s, "steps = {}", self.train.steps);
        let _ = writeln!(s, "batch = {}", self.train.batch);
        let _ = writeln!(s, "seq = {}", self.train.seq);
        let _ = writeln!(s, "lr = {:?}", self.train.lr);
        let _ = writeln!(s, "dtype = \"{}\"", self.train.dtype);
        let _ = writeln!(s, "seed = {}", self.train.seed);
        let _ = writeln!(s, "skew = {:?}", self.train.skew);
        let _ = writeln!(s, "zero = {}", self.train.zero);
        let _ = writeln!(s, "\n[comm]");
        let _ = writeln!(s, "wire_dtype = \"{}\"", self.comm.wire_dtype);
        let _ = writeln!(s, "hierarchical = {}", self.comm.hierarchical);
        let _ = writeln!(s, "supernode_size = {}", self.comm.supernode_size);
        let _ = writeln!(s, "overlap = {}", self.comm.overlap);
        let _ = writeln!(s, "bucket_kib = {}", self.comm.bucket_kib);
        let _ = writeln!(s, "\n[placement]");
        let _ = writeln!(s, "policy = \"{}\"", self.placement.policy);
        let _ = writeln!(s, "locality_bias = {:?}", self.placement.locality_bias);
        let _ = writeln!(s, "\n[compute]");
        let _ = writeln!(s, "backend = \"{}\"", self.compute.backend);
        let _ = writeln!(s, "\n[ft]");
        let _ = writeln!(s, "enabled = {}", self.ft.enabled);
        let _ = writeln!(s, "ckpt_dir = \"{}\"", self.ft.ckpt_dir);
        let _ = writeln!(s, "ckpt_every = {}", self.ft.ckpt_every);
        let _ = writeln!(s, "max_restarts = {}", self.ft.max_restarts);
        let _ = writeln!(s, "elastic = {}", self.ft.elastic);
        let _ = writeln!(s, "straggler_factor = {:?}", self.ft.straggler_factor);
        let _ = writeln!(s, "straggler_window = {}", self.ft.straggler_window);
        let _ = writeln!(s, "\n[serve]");
        let _ = writeln!(s, "max_batch = {}", self.serve.max_batch);
        let _ = writeln!(s, "kv_blocks = {}", self.serve.kv_blocks);
        let _ = writeln!(s, "block_tokens = {}", self.serve.block_tokens);
        s
    }

    /// Parse the TOML form. Every error names the offending line and key
    /// and lists what would have been accepted; unknown sections and keys
    /// are hard errors, never silent defaults. Absent keys keep their
    /// [`default`](RunConfig::default) value, so a partial file is a valid
    /// override set. The parsed value is also
    /// [`validate`](Self::validate)d.
    pub fn from_toml(text: &str) -> Result<RunConfig, String> {
        let mut rc = RunConfig::default();
        let mut section = String::new();
        let mut seen: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {line_no}: malformed section header: {raw}"))?
                    .trim();
                if !SECTIONS.contains(&name) {
                    return Err(format!(
                        "line {line_no}: unknown section [{name}] (valid sections: {})",
                        SECTIONS.join(", ")
                    ));
                }
                section = name.to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("line {line_no}: expected `key = value` or `[section]`, got: {raw}")
            })?;
            let key = key.trim();
            let val = parse_value(value.trim())
                .map_err(|e| format!("line {line_no}: value for {key}: {e}"))?;
            let path = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            if seen.contains(&path) {
                return Err(format!("line {line_no}: duplicate key {path}"));
            }
            seen.push(path);
            rc.apply(&section, key, &val, line_no)?;
        }
        rc.validate()?;
        Ok(rc)
    }

    /// Set one `section.key` from a parsed value.
    fn apply(&mut self, section: &str, key: &str, val: &Val, line: usize) -> Result<(), String> {
        let unknown = |valid: &[&str]| {
            format!(
                "line {line}: unknown key '{key}' in {} (valid keys: {})",
                if section.is_empty() {
                    "the top level".to_string()
                } else {
                    format!("[{section}]")
                },
                valid.join(", ")
            )
        };
        let at = |e: String| format!("line {line}: {section}.{key}: {e}");
        match section {
            "" => match key {
                "version" => self.version = val.as_u64(line, key)? as u32,
                _ => return Err(unknown(&["version"])),
            },
            "model" => match key {
                "preset" => {
                    let p = val.as_str(line, key)?;
                    preset(&p).map_err(at)?;
                    self.model.preset = p;
                }
                "experts" => self.model.experts = val.as_usize(line, key)?,
                "gate" => self.model.gate = val.as_str(line, key)?.parse().map_err(at)?,
                _ => return Err(unknown(&["preset", "experts", "gate"])),
            },
            "train" => match key {
                "ranks" => self.train.ranks = val.as_usize(line, key)?,
                "steps" => self.train.steps = val.as_usize(line, key)?,
                "batch" => self.train.batch = val.as_usize(line, key)?,
                "seq" => self.train.seq = val.as_usize(line, key)?,
                "lr" => self.train.lr = val.as_f64(line, key)? as f32,
                "dtype" => self.train.dtype = val.as_str(line, key)?.parse().map_err(at)?,
                "seed" => self.train.seed = val.as_u64(line, key)?,
                "skew" => self.train.skew = val.as_f64(line, key)?,
                "zero" => self.train.zero = val.as_bool(line, key)?,
                _ => {
                    return Err(unknown(&[
                        "ranks", "steps", "batch", "seq", "lr", "dtype", "seed", "skew", "zero",
                    ]))
                }
            },
            "comm" => match key {
                "wire_dtype" => {
                    self.comm.wire_dtype = val.as_str(line, key)?.parse().map_err(at)?
                }
                "hierarchical" => self.comm.hierarchical = val.as_bool(line, key)?,
                "supernode_size" => self.comm.supernode_size = val.as_usize(line, key)?,
                "overlap" => self.comm.overlap = val.as_bool(line, key)?,
                "bucket_kib" => self.comm.bucket_kib = val.as_usize(line, key)?,
                _ => {
                    return Err(unknown(&[
                        "wire_dtype",
                        "hierarchical",
                        "supernode_size",
                        "overlap",
                        "bucket_kib",
                    ]))
                }
            },
            "placement" => match key {
                "policy" => self.placement.policy = val.as_str(line, key)?.parse().map_err(at)?,
                "locality_bias" => self.placement.locality_bias = val.as_f64(line, key)? as f32,
                _ => return Err(unknown(&["policy", "locality_bias"])),
            },
            "compute" => match key {
                "backend" => self.compute.backend = val.as_str(line, key)?.parse().map_err(at)?,
                _ => return Err(unknown(&["backend"])),
            },
            "ft" => match key {
                "enabled" => self.ft.enabled = val.as_bool(line, key)?,
                "ckpt_dir" => self.ft.ckpt_dir = val.as_str(line, key)?,
                "ckpt_every" => self.ft.ckpt_every = val.as_usize(line, key)?,
                "max_restarts" => self.ft.max_restarts = val.as_usize(line, key)?,
                "elastic" => self.ft.elastic = val.as_bool(line, key)?,
                "straggler_factor" => self.ft.straggler_factor = val.as_f64(line, key)?,
                "straggler_window" => self.ft.straggler_window = val.as_usize(line, key)?,
                _ => {
                    return Err(unknown(&[
                        "enabled",
                        "ckpt_dir",
                        "ckpt_every",
                        "max_restarts",
                        "elastic",
                        "straggler_factor",
                        "straggler_window",
                    ]))
                }
            },
            "serve" => match key {
                "max_batch" => self.serve.max_batch = val.as_usize(line, key)?,
                "kv_blocks" => self.serve.kv_blocks = val.as_usize(line, key)?,
                "block_tokens" => self.serve.block_tokens = val.as_usize(line, key)?,
                _ => return Err(unknown(&["max_batch", "kv_blocks", "block_tokens"])),
            },
            other => unreachable!("section [{other}] passed the header check"),
        }
        Ok(())
    }
}

const SECTIONS: [&str; 7] = [
    "model",
    "train",
    "comm",
    "placement",
    "compute",
    "ft",
    "serve",
];

/// A scalar value from the TOML subset.
enum Val {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Val {
    fn type_name(&self) -> &'static str {
        match self {
            Val::Str(_) => "a string",
            Val::Int(_) => "an integer",
            Val::Float(_) => "a float",
            Val::Bool(_) => "a boolean",
        }
    }

    fn as_str(&self, line: usize, key: &str) -> Result<String, String> {
        match self {
            Val::Str(s) => Ok(s.clone()),
            v => Err(format!(
                "line {line}: {key} wants a quoted string, got {}",
                v.type_name()
            )),
        }
    }

    fn as_bool(&self, line: usize, key: &str) -> Result<bool, String> {
        match self {
            Val::Bool(b) => Ok(*b),
            v => Err(format!(
                "line {line}: {key} wants true or false, got {}",
                v.type_name()
            )),
        }
    }

    fn as_u64(&self, line: usize, key: &str) -> Result<u64, String> {
        match self {
            Val::Int(i) if *i >= 0 => Ok(*i as u64),
            Val::Int(i) => Err(format!("line {line}: {key} must be >= 0, got {i}")),
            v => Err(format!(
                "line {line}: {key} wants an integer, got {}",
                v.type_name()
            )),
        }
    }

    fn as_usize(&self, line: usize, key: &str) -> Result<usize, String> {
        Ok(self.as_u64(line, key)? as usize)
    }

    fn as_f64(&self, line: usize, key: &str) -> Result<f64, String> {
        match self {
            Val::Float(f) => Ok(*f),
            Val::Int(i) => Ok(*i as f64),
            v => Err(format!(
                "line {line}: {key} wants a number, got {}",
                v.type_name()
            )),
        }
    }
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Val, String> {
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {s}"))?;
        if inner.contains('"') {
            return Err(format!("embedded quotes are not supported: {s}"));
        }
        return Ok(Val::Str(inner.to_string()));
    }
    match s {
        "true" => return Ok(Val::Bool(true)),
        "false" => return Ok(Val::Bool(false)),
        "" => return Err("empty value".into()),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Val::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        return Ok(Val::Float(f));
    }
    Err(format!(
        "cannot parse {s:?} (want a quoted string, integer, float, or true/false)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_round_trips() {
        let rc = RunConfig::default();
        rc.validate().expect("default config is valid");
        let parsed = RunConfig::from_toml(&rc.to_toml()).expect("canonical TOML parses");
        assert_eq!(parsed, rc);
    }

    #[test]
    fn non_default_round_trips_exactly() {
        let rc = RunConfig {
            model: ModelSection {
                preset: "tiny".into(),
                experts: 8,
                gate: GateKind::Balanced,
            },
            train: TrainSection {
                ranks: 4,
                steps: 17,
                batch: 3,
                seq: 16,
                lr: 3.5e-3,
                dtype: DType::BF16,
                seed: 777,
                skew: 1.1,
                zero: false,
            },
            comm: CommSection {
                wire_dtype: WireDType::BF16,
                hierarchical: true,
                supernode_size: 2,
                overlap: false,
                bucket_kib: 64,
            },
            placement: PlacementSection {
                policy: ExpertPlacement::Supernode { supernode_size: 2 },
                locality_bias: 2.5,
            },
            compute: ComputeSection {
                backend: ComputeBackend::Half(DType::BF16),
            },
            ft: FtSection {
                enabled: true,
                ckpt_dir: "/tmp/ck".into(),
                ckpt_every: 4,
                max_restarts: 7,
                elastic: true,
                straggler_factor: 1.5,
                straggler_window: 2,
            },
            ..RunConfig::default()
        };
        rc.validate().expect("valid");
        let parsed = RunConfig::from_toml(&rc.to_toml()).expect("parses");
        assert_eq!(parsed, rc);
    }

    #[test]
    fn unknown_keys_and_sections_are_actionable_errors() {
        let e = RunConfig::from_toml("[train]\nstepz = 5\n").unwrap_err();
        assert!(
            e.contains("unknown key 'stepz'") && e.contains("steps"),
            "{e}"
        );
        let e = RunConfig::from_toml("[tarin]\nsteps = 5\n").unwrap_err();
        assert!(
            e.contains("unknown section [tarin]") && e.contains("train"),
            "{e}"
        );
        let e = RunConfig::from_toml("steps = 5\n").unwrap_err();
        assert!(e.contains("top level"), "{e}");
        let e = RunConfig::from_toml("[train]\nsteps = 5\nsteps = 6\n").unwrap_err();
        assert!(e.contains("duplicate key train.steps"), "{e}");
    }

    #[test]
    fn type_and_value_errors_name_the_line() {
        let e = RunConfig::from_toml("[train]\nsteps = \"many\"\n").unwrap_err();
        assert!(e.contains("line 2") && e.contains("integer"), "{e}");
        let e = RunConfig::from_toml("[train]\ndtype = \"fp12\"\n").unwrap_err();
        assert!(e.contains("fp12"), "{e}");
        let e = RunConfig::from_toml("[comm]\nbucket_kib = -1\n").unwrap_err();
        assert!(e.contains(">= 0"), "{e}");
    }

    #[test]
    fn contradictory_settings_are_rejected_with_fixes() {
        let mut rc = RunConfig::default();
        rc.ft.elastic = true; // without ft.enabled
        let e = rc.validate().unwrap_err();
        assert!(e.contains("ft.enabled"), "{e}");

        let mut rc = RunConfig::default();
        rc.comm.supernode_size = 2; // without hierarchical
        let e = rc.validate().unwrap_err();
        assert!(e.contains("hierarchical"), "{e}");

        let mut rc = RunConfig::default();
        rc.train.zero = true;
        rc.train.dtype = DType::BF16;
        let e = rc.validate().unwrap_err();
        assert!(e.contains("fp32"), "{e}");

        let mut rc = RunConfig::default();
        rc.ft.enabled = true;
        rc.ft.elastic = true;
        rc.ft.ckpt_every = 0;
        let e = rc.validate().unwrap_err();
        assert!(e.contains("ckpt_every"), "{e}");

        let mut rc = RunConfig::default();
        rc.model.experts = 6;
        rc.train.ranks = 4;
        let e = rc.validate().unwrap_err();
        assert!(e.contains("divide evenly"), "{e}");

        let mut rc = RunConfig::default();
        rc.ft.enabled = true;
        rc.ft.elastic = true;
        rc.compute.backend = ComputeBackend::TiledFma;
        let e = rc.validate().unwrap_err();
        assert!(e.contains("bit"), "{e}");
    }

    #[test]
    fn version_gate() {
        let e = RunConfig::from_toml("version = 99\n").unwrap_err();
        assert!(e.contains("version 99"), "{e}");
    }

    #[test]
    fn partial_file_overrides_defaults_only() {
        let rc = RunConfig::from_toml("[train]\nsteps = 7\n").unwrap();
        assert_eq!(rc.train.steps, 7);
        assert_eq!(rc.train.ranks, RunConfig::default().train.ranks);
        assert_eq!(
            rc,
            RunConfig {
                train: TrainSection {
                    steps: 7,
                    ..RunConfig::default().train
                },
                ..RunConfig::default()
            }
        );
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let rc = RunConfig::from_toml(
            "# header\nversion = 1  # inline\n\n[train]   \n  steps = 9 # why not\n",
        )
        .unwrap();
        assert_eq!(rc.train.steps, 9);
    }

    #[test]
    fn to_train_config_then_reconstruct_is_identity() {
        let mut rc = RunConfig::default();
        rc.train.ranks = 4;
        rc.model.experts = 8;
        rc.comm.wire_dtype = WireDType::F16;
        rc.comm.hierarchical = true;
        rc.comm.supernode_size = 2;
        rc.placement.policy = ExpertPlacement::Supernode { supernode_size: 2 };
        rc.placement.locality_bias = 1.5;
        let cfg = rc.to_train_config().expect("valid");
        let back = RunConfig::reconstruct(&cfg, None).expect("expressible");
        assert_eq!(back.to_train_config().expect("valid"), cfg);
        assert_eq!(back, rc);
    }

    #[test]
    fn reconstruct_refuses_library_only_features() {
        let mut cfg = RunConfig::default().to_train_config().unwrap();
        cfg.grad_accum = 2;
        assert!(RunConfig::reconstruct(&cfg, None).is_none());
        let mut cfg = RunConfig::default().to_train_config().unwrap();
        cfg.clip = Some(2.0);
        assert!(RunConfig::reconstruct(&cfg, None).is_none());
        let mut cfg = RunConfig::default().to_train_config().unwrap();
        cfg.model.d_model += 1; // matches no preset
        assert!(RunConfig::reconstruct(&cfg, None).is_none());
    }

    #[test]
    fn ft_round_trips_through_with_ft() {
        let rc = RunConfig {
            ft: FtSection {
                enabled: true,
                ckpt_dir: "/tmp/x".into(),
                ckpt_every: 5,
                max_restarts: 2,
                elastic: true,
                straggler_factor: 2.0,
                straggler_window: 4,
            },
            ..RunConfig::default()
        };
        let ft = rc.to_ft_config().expect("enabled");
        let back = RunConfig::default().with_ft(&ft);
        assert_eq!(back.ft, rc.ft);
    }

    #[test]
    fn serve_section_maps_to_engine_config() {
        let mut rc = RunConfig::default();
        rc.serve.max_batch = 3;
        rc.serve.kv_blocks = 17;
        let e = rc.to_engine_config();
        assert_eq!((e.max_batch, e.kv_blocks, e.block_tokens), (3, 17, 4));
        assert_eq!(rc.to_server_options(true).nranks, rc.train.ranks);
    }
}
