//! End-to-end performance projection to the full machine.
//!
//! The functional trainer cannot run on 37 million cores; this model
//! charges one training step its component costs using the roofline
//! (compute) and α–β collective (communication) models, at any machine
//! size. It regenerates the scaling tables and figures: weak/strong
//! scaling, the pairwise-vs-hierarchical all-to-all ablation, per-step
//! time breakdowns, and the sustained mixed-precision FLOPS headline.
//!
//! Conventions: the projection uses one aggregated rank per node (the six
//! core groups of an SW26010-Pro act as one roofline unit), `tokens_per_
//! node` tokens of micro-batch per node per step, and charges forward +
//! backward as 3× forward FLOPs. Communication and compute are not
//! overlapped — the conservative (and at these message sizes, realistic)
//! assumption.

use bagualu_hw::{MachineConfig, Precision};
use bagualu_model::config::ModelConfig;
use bagualu_model::ffn::FeedForward;
use bagualu_net::cost::CollectiveCost;

/// Inputs of one projection.
#[derive(Debug, Clone, Copy)]
pub struct PerfInput {
    pub model: ModelConfig,
    pub machine: MachineConfig,
    /// Micro-batch tokens per node per step.
    pub tokens_per_node: usize,
    /// Arithmetic precision of the dense/expert kernels.
    pub precision: Precision,
    /// Use the two-phase hierarchical all-to-all (vs pairwise).
    pub hierarchical_a2a: bool,
    /// Use the hierarchical all-reduce (vs flat ring).
    pub hierarchical_allreduce: bool,
    /// Max/mean expert-load imbalance; multiplies expert compute (step time
    /// is set by the slowest expert shard).
    pub imbalance: f64,
    /// Bytes per gradient element in the dense all-reduce (4 = FP32 reduce).
    pub grad_bytes: f64,
    /// Fraction of communication hidden behind compute (0 = fully serial,
    /// 1 = perfectly overlapped, bounded by the available compute time).
    pub overlap: f64,
    /// Charge the two-level router's gate FLOPs (`d·(√E + E/√E)`) instead
    /// of the flat gate's `d·E` — the ablation of experiment E18.
    pub two_level_gate: bool,
}

impl PerfInput {
    /// BaGuaLu-like defaults on the full machine: half precision, both
    /// hierarchical collectives, balanced routing, FP32 gradient reduce.
    pub fn sunway_full(model: ModelConfig) -> PerfInput {
        PerfInput {
            model,
            machine: MachineConfig::new_generation_sunway(),
            tokens_per_node: 2048,
            precision: Precision::Half,
            hierarchical_a2a: true,
            hierarchical_allreduce: true,
            imbalance: 1.0,
            grad_bytes: 4.0,
            overlap: 0.0,
            two_level_gate: false,
        }
    }

    /// Same, on a subset of nodes.
    pub fn sunway_nodes(model: ModelConfig, nodes: usize) -> PerfInput {
        PerfInput {
            machine: MachineConfig::sunway_subset(nodes),
            ..PerfInput::sunway_full(model)
        }
    }
}

/// Per-step wall-time decomposition, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepBreakdown {
    /// Attention + dense FFN + LM head compute.
    pub dense_compute: f64,
    /// Gate projection compute (grows with expert count).
    pub gate_compute: f64,
    /// Expert FFN compute (constant per token; scaled by imbalance).
    pub expert_compute: f64,
    /// All four all-to-alls per MoE layer.
    pub a2a: f64,
    /// Dense-gradient all-reduce.
    pub allreduce: f64,
}

impl StepBreakdown {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.dense_compute + self.gate_compute + self.expert_compute + self.a2a + self.allreduce
    }

    /// Fraction of the step spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        (self.a2a + self.allreduce) / self.total()
    }
}

/// Result of one projection.
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    pub breakdown: StepBreakdown,
    /// Seconds per training step.
    pub step_time: f64,
    /// Tokens processed machine-wide per step.
    pub global_tokens: f64,
    /// Training throughput, tokens/second.
    pub tokens_per_sec: f64,
    /// Useful model FLOPs sustained per second (the paper-style headline).
    pub sustained_flops: f64,
    /// Sustained as a fraction of the machine's GEMM-sustained peak.
    pub efficiency: f64,
}

/// Per-token *forward* FLOPs, decomposed. Train charges 3×.
struct FlopsPerToken {
    dense: f64,
    gate: f64,
    expert: f64,
}

fn flops_per_token(m: &ModelConfig, two_level_gate: bool) -> FlopsPerToken {
    let d = m.d_model as f64;
    let expert_p = FeedForward::param_count(m.d_model, m.d_ff) as f64;
    let attn_p =
        (m.d_model * 3 * m.d_model + 3 * m.d_model + m.d_model * m.d_model + m.d_model) as f64;
    let mut dense = 0.0;
    let mut gate = 0.0;
    let mut expert = 0.0;
    for i in 0..m.n_layers {
        dense += 2.0 * attn_p + 2.0 * m.max_seq as f64 * d; // proj + scores at avg context
        if m.is_moe_block(i) {
            gate += if two_level_gate {
                // Two-stage routing at the FLOPs-optimal group count √E.
                let g = (m.n_experts as f64).sqrt().max(1.0);
                2.0 * d * (g + m.n_experts as f64 / g)
            } else {
                2.0 * d * m.n_experts as f64
            };
            expert += 2.0 * expert_p * m.gate.k() as f64;
        } else {
            dense += 2.0 * expert_p;
        }
    }
    dense += 2.0 * d * m.vocab as f64; // LM head
    FlopsPerToken {
        dense,
        gate,
        expert,
    }
}

/// Project one training step.
pub fn project(input: &PerfInput) -> Projection {
    let m = &input.model;
    let mach = &input.machine;
    let nodes = mach.nodes;
    let b = input.tokens_per_node as f64;
    let fl = flops_per_token(m, input.two_level_gate);

    // ---- Compute, per node (one roofline unit per node).
    let sustained = mach.processor.peak(input.precision) * mach.gemm_efficiency;
    let dense_compute = 3.0 * fl.dense * b / sustained;
    let gate_compute = 3.0 * fl.gate * b / sustained;
    let expert_compute = 3.0 * fl.expert * b * input.imbalance / sustained;

    // ---- All-to-all: per MoE layer, 2 exchanges forward + 2 backward.
    // Per-pair payload: this node's B·k token vectors spread over all nodes.
    let cc = CollectiveCost::new(*mach);
    let elt = match input.precision {
        Precision::Half => 2.0,
        Precision::FP32 => 4.0,
        Precision::FP64 => 8.0,
    };
    let bytes_per_pair =
        ((b * m.gate.k() as f64 * m.d_model as f64 * elt) / nodes as f64).ceil() as usize;
    let one_a2a = if input.hierarchical_a2a {
        cc.alltoall_hierarchical(nodes, bytes_per_pair.max(1))
    } else {
        cc.alltoall_pairwise(nodes, bytes_per_pair.max(1))
    };
    let a2a = one_a2a * 4.0 * m.n_moe_blocks() as f64;

    // ---- Dense gradient all-reduce, once per step.
    let dense_grad_bytes = (m.dense_params() as f64 * input.grad_bytes) as usize;
    let allreduce = if nodes > 1 {
        if input.hierarchical_allreduce {
            cc.allreduce_hierarchical(nodes, dense_grad_bytes)
        } else {
            cc.allreduce_ring(nodes, dense_grad_bytes)
        }
    } else {
        0.0
    };

    let breakdown = StepBreakdown {
        dense_compute,
        gate_compute,
        expert_compute,
        a2a,
        allreduce,
    };
    // Overlap hides up to `overlap · comm` behind compute, bounded by the
    // compute actually available to hide it behind.
    let compute = dense_compute + gate_compute + expert_compute;
    let comm = a2a + allreduce;
    let hidden = (input.overlap.clamp(0.0, 1.0) * comm).min(compute);
    let step_time = breakdown.total() - hidden;
    let global_tokens = b * nodes as f64;
    let useful_flops = 3.0 * (fl.dense + fl.gate + fl.expert) * global_tokens;
    let sustained_flops = useful_flops / step_time;
    Projection {
        breakdown,
        step_time,
        global_tokens,
        tokens_per_sec: global_tokens / step_time,
        sustained_flops,
        efficiency: sustained_flops / (mach.sustained(input.precision) * 1.0),
    }
}

// ----------------------------------------------- checkpoint-interval math

/// Young/Daly first-order optimal checkpoint interval,
/// τ_opt = √(2·δ·MTBF), where δ is the cost of writing one checkpoint and
/// MTBF the mean time between failures (same time unit for both; the
/// result is in that unit). Shared by the E22 experiment and the
/// auto-tuner so the formula lives in exactly one place.
pub fn young_daly_tau_opt(checkpoint_cost_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        checkpoint_cost_s >= 0.0 && mtbf_s > 0.0,
        "young_daly_tau_opt wants δ >= 0 and MTBF > 0, got δ = {checkpoint_cost_s}, \
         MTBF = {mtbf_s}"
    );
    (2.0 * checkpoint_cost_s * mtbf_s).sqrt()
}

/// First-order expected fraction of wall-clock lost to fault tolerance at
/// checkpoint interval τ: δ/τ spent writing plus τ/(2·MTBF) of re-executed
/// work per failure (half an interval lost on average). Minimized exactly
/// at [`young_daly_tau_opt`]; the tuner folds this into its step-time
/// objective.
pub fn checkpoint_waste_fraction(checkpoint_cost_s: f64, interval_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        interval_s > 0.0 && mtbf_s > 0.0,
        "checkpoint_waste_fraction wants τ > 0 and MTBF > 0, got τ = {interval_s}, \
         MTBF = {mtbf_s}"
    );
    checkpoint_cost_s / interval_s + interval_s / (2.0 * mtbf_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PerfInput {
        PerfInput::sunway_full(ModelConfig::bagualu_14_5t())
    }

    #[test]
    fn young_daly_matches_the_closed_form() {
        // δ = 2s, MTBF = 100s → τ = √400 = 20s.
        assert_eq!(young_daly_tau_opt(2.0, 100.0), 20.0);
        // τ_opt minimizes the waste model it pairs with.
        let (delta, mtbf) = (3.0, 500.0);
        let tau = young_daly_tau_opt(delta, mtbf);
        let at_opt = checkpoint_waste_fraction(delta, tau, mtbf);
        for off in [0.5, 0.8, 1.25, 2.0] {
            assert!(at_opt <= checkpoint_waste_fraction(delta, tau * off, mtbf));
        }
    }

    #[test]
    fn hierarchical_a2a_beats_pairwise_at_full_scale() {
        let hier = project(&base());
        let flat = project(&PerfInput {
            hierarchical_a2a: false,
            ..base()
        });
        assert!(
            hier.breakdown.a2a < flat.breakdown.a2a / 5.0,
            "hier {}s vs flat {}s",
            hier.breakdown.a2a,
            flat.breakdown.a2a
        );
        assert!(hier.tokens_per_sec > flat.tokens_per_sec * 1.5);
    }

    #[test]
    fn half_precision_raises_throughput() {
        let half = project(&base());
        let full = project(&PerfInput {
            precision: Precision::FP32,
            ..base()
        });
        assert!(half.tokens_per_sec > full.tokens_per_sec * 1.5);
    }

    #[test]
    fn sustained_flops_is_eflops_scale_at_full_machine() {
        let p = project(&base());
        // Headline shape: ~1 EFLOPS-order sustained mixed precision.
        assert!(
            p.sustained_flops > 2e17 && p.sustained_flops < 6e18,
            "sustained = {:.3e}",
            p.sustained_flops
        );
        assert!(p.efficiency > 0.05 && p.efficiency <= 1.0);
    }

    #[test]
    fn imbalance_slows_the_step() {
        let balanced = project(&base());
        let skewed = project(&PerfInput {
            imbalance: 4.0,
            ..base()
        });
        assert!(skewed.step_time > balanced.step_time);
        assert!(
            (skewed.breakdown.expert_compute / balanced.breakdown.expert_compute - 4.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn weak_scaling_is_near_linear_with_hierarchical_collectives() {
        // Throughput per node should stay within 2× from 1k to 96k nodes.
        let small = project(&PerfInput::sunway_nodes(ModelConfig::bagualu_14_5t(), 1024));
        let big = project(&base());
        let per_node_small = small.tokens_per_sec / 1024.0;
        let per_node_big = big.tokens_per_sec / 96_000.0;
        let eff = per_node_big / per_node_small;
        assert!(eff > 0.5, "weak-scaling efficiency collapsed: {eff}");
    }

    #[test]
    fn single_node_has_no_communication() {
        let p = project(&PerfInput::sunway_nodes(ModelConfig::tiny(), 1));
        assert_eq!(p.breakdown.allreduce, 0.0);
        // One node = one "supernode": a2a degenerates to self-exchange cost 0.
        assert_eq!(p.breakdown.a2a, 0.0);
    }

    #[test]
    fn overlap_hides_communication() {
        let serial = project(&base());
        let overlapped = project(&PerfInput {
            overlap: 1.0,
            ..base()
        });
        assert!(overlapped.step_time < serial.step_time);
        // Perfect overlap: step = max(compute, comm) when comm ≤ compute,
        // otherwise compute disappears entirely behind comm.
        let b = serial.breakdown;
        let compute = b.dense_compute + b.gate_compute + b.expert_compute;
        let comm = b.a2a + b.allreduce;
        let expect = compute.max(comm);
        assert!((overlapped.step_time - expect).abs() < 1e-9);
        // Half overlap sits between.
        let half = project(&PerfInput {
            overlap: 0.5,
            ..base()
        });
        assert!(half.step_time < serial.step_time && half.step_time > overlapped.step_time);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = project(&base());
        let b = p.breakdown;
        let sum = b.dense_compute + b.gate_compute + b.expert_compute + b.a2a + b.allreduce;
        assert!((sum - p.step_time).abs() < 1e-12);
        assert!(b.comm_fraction() > 0.0 && b.comm_fraction() < 1.0);
    }
}
