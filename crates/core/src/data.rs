//! Synthetic workload generators.
//!
//! The original system trains on a web-scale multimodal corpus we do not
//! have. What the experiments actually need from data is (a) a *learnable*
//! next-token structure so convergence is measurable, and (b) a
//! *controllable token-frequency skew* so gate load balancing is stressed
//! the way natural language (Zipfian by nature) stresses it. Both are
//! provided here, deterministically per `(seed, rank, step)`.

use bagualu_tensor::rng::{Rng, Zipf};

/// How token identities are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TokenDistribution {
    /// Uniform over the vocabulary.
    Uniform,
    /// Zipf with exponent `s` (s = 0 is uniform; s ≈ 1 is natural language).
    Zipf(f64),
    /// Adversarial: every token in a batch is the same (rotating per step) —
    /// the worst case for expert load balance.
    Burst,
}

/// A deterministic synthetic language-modelling task: the target of token
/// `t` is `(a·t + b) mod vocab`, a bijective map a small model can learn to
/// near-zero loss. Inputs are drawn from the configured distribution.
#[derive(Debug, Clone)]
pub struct SyntheticLM {
    pub vocab: usize,
    pub dist: TokenDistribution,
    a: usize,
    b: usize,
    zipf: Option<Zipf>,
}

impl SyntheticLM {
    /// `a` must be coprime with `vocab` for the map to be bijective; the
    /// constructor picks a valid multiplier from the seed.
    pub fn new(vocab: usize, dist: TokenDistribution, seed: u64) -> SyntheticLM {
        assert!(vocab >= 2);
        let mut rng = Rng::seed_from(seed);
        // Find a multiplier coprime with vocab.
        let a = loop {
            let cand = 1 + rng.below(vocab - 1);
            if gcd(cand, vocab) == 1 {
                break cand;
            }
        };
        let b = rng.below(vocab);
        let zipf = match dist {
            TokenDistribution::Zipf(s) => Some(Zipf::new(vocab, s)),
            _ => None,
        };
        SyntheticLM {
            vocab,
            dist,
            a,
            b,
            zipf,
        }
    }

    /// The target for an input token.
    pub fn target_of(&self, token: usize) -> usize {
        (self.a * token + self.b) % self.vocab
    }

    /// Generate `(tokens, targets)` for one batch of `batch × seq` tokens.
    /// Deterministic in `(rank, step)` so every run is reproducible and
    /// every rank sees distinct data.
    pub fn batch(
        &self,
        batch: usize,
        seq: usize,
        rank: usize,
        step: usize,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut rng = Rng::for_rank(0xDA7A ^ (step as u64) << 20, rank);
        let n = batch * seq;
        let tokens: Vec<usize> = (0..n)
            .map(|_| match self.dist {
                TokenDistribution::Uniform => rng.below(self.vocab),
                TokenDistribution::Zipf(_) => {
                    self.zipf.as_ref().expect("zipf sampler").sample(&mut rng)
                }
                TokenDistribution::Burst => step % self.vocab,
            })
            .collect();
        let targets = tokens.iter().map(|&t| self.target_of(t)).collect();
        (tokens, targets)
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Which modality a token belongs to in the multimodal task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    Text,
    Image,
}

/// A synthetic **multimodal** pretraining task, mirroring the image+text
/// corpora brain-scale models train on: each sequence is an image-patch
/// prefix followed by a caption. The vocabulary is split into disjoint
/// ranges — image "patch tokens" first, text tokens after — and each
/// modality has its own successor map, so the model (and, interestingly,
/// the MoE gate) can specialize per modality. Experiment E17 measures that
/// specialization.
#[derive(Debug, Clone)]
pub struct MultimodalLM {
    /// Image patch tokens occupy `[0, image_vocab)`.
    pub image_vocab: usize,
    /// Text tokens occupy `[image_vocab, image_vocab + text_vocab)`.
    pub text_vocab: usize,
    image_task: SyntheticLM,
    text_task: SyntheticLM,
}

impl MultimodalLM {
    pub fn new(image_vocab: usize, text_vocab: usize, seed: u64) -> MultimodalLM {
        MultimodalLM {
            image_vocab,
            text_vocab,
            image_task: SyntheticLM::new(image_vocab, TokenDistribution::Uniform, seed),
            text_task: SyntheticLM::new(text_vocab, TokenDistribution::Zipf(0.8), seed ^ 0x99),
        }
    }

    /// Total vocabulary size (a model config needs `vocab >= total_vocab`).
    pub fn total_vocab(&self) -> usize {
        self.image_vocab + self.text_vocab
    }

    /// Modality of a token id.
    pub fn modality_of(&self, token: usize) -> Modality {
        if token < self.image_vocab {
            Modality::Image
        } else {
            Modality::Text
        }
    }

    /// The within-modality next-token target.
    pub fn target_of(&self, token: usize) -> usize {
        match self.modality_of(token) {
            Modality::Image => self.image_task.target_of(token),
            Modality::Text => self.image_vocab + self.text_task.target_of(token - self.image_vocab),
        }
    }

    /// Generate `(tokens, targets)`: each sequence of length `seq` is
    /// `seq/2` image patches followed by `seq - seq/2` text tokens.
    pub fn batch(
        &self,
        batch: usize,
        seq: usize,
        rank: usize,
        step: usize,
    ) -> (Vec<usize>, Vec<usize>) {
        let img_len = seq / 2;
        let (img, _) = self.image_task.batch(batch, img_len.max(1), rank, step);
        let (txt, _) = self
            .text_task
            .batch(batch, (seq - img_len).max(1), rank, step);
        let mut tokens = Vec::with_capacity(batch * seq);
        for b in 0..batch {
            tokens.extend(img[b * img_len.max(1)..][..img_len].iter().copied());
            tokens.extend(
                txt[b * (seq - img_len).max(1)..][..seq - img_len]
                    .iter()
                    .map(|&t| t + self.image_vocab),
            );
        }
        let targets = tokens.iter().map(|&t| self.target_of(t)).collect();
        (tokens, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_bijective() {
        let task = SyntheticLM::new(64, TokenDistribution::Uniform, 1);
        let mut seen = [false; 64];
        for t in 0..64 {
            let y = task.target_of(t);
            assert!(!seen[y], "target {y} repeated");
            seen[y] = true;
        }
    }

    #[test]
    fn batches_are_deterministic_and_rank_distinct() {
        let task = SyntheticLM::new(64, TokenDistribution::Uniform, 2);
        let (a1, _) = task.batch(2, 8, 0, 5);
        let (a2, _) = task.batch(2, 8, 0, 5);
        assert_eq!(a1, a2);
        let (b1, _) = task.batch(2, 8, 1, 5);
        assert_ne!(a1, b1);
        let (c1, _) = task.batch(2, 8, 0, 6);
        assert_ne!(a1, c1);
    }

    #[test]
    fn targets_match_map() {
        let task = SyntheticLM::new(32, TokenDistribution::Uniform, 3);
        let (tokens, targets) = task.batch(1, 16, 0, 0);
        for (&t, &y) in tokens.iter().zip(&targets) {
            assert_eq!(y, task.target_of(t));
        }
    }

    #[test]
    fn zipf_batches_are_skewed() {
        let task = SyntheticLM::new(100, TokenDistribution::Zipf(1.2), 4);
        let (tokens, _) = task.batch(16, 64, 0, 0);
        let head = tokens.iter().filter(|&&t| t < 5).count();
        assert!(
            head as f64 / tokens.len() as f64 > 0.3,
            "zipf head share {}",
            head as f64 / tokens.len() as f64
        );
    }

    #[test]
    fn burst_batches_are_constant() {
        let task = SyntheticLM::new(50, TokenDistribution::Burst, 5);
        let (tokens, _) = task.batch(2, 4, 3, 7);
        assert!(tokens.iter().all(|&t| t == 7));
        let (tokens, _) = task.batch(2, 4, 3, 51);
        assert!(tokens.iter().all(|&t| t == 1));
    }

    #[test]
    fn multimodal_layout_and_targets() {
        let task = MultimodalLM::new(16, 48, 7);
        assert_eq!(task.total_vocab(), 64);
        let (tokens, targets) = task.batch(2, 8, 0, 3);
        assert_eq!(tokens.len(), 16);
        for b in 0..2 {
            // First half image tokens, second half text tokens.
            for i in 0..4 {
                assert_eq!(task.modality_of(tokens[b * 8 + i]), Modality::Image);
            }
            for i in 4..8 {
                assert_eq!(task.modality_of(tokens[b * 8 + i]), Modality::Text);
            }
        }
        // Targets stay within their modality's range.
        for (&t, &y) in tokens.iter().zip(&targets) {
            assert_eq!(
                task.modality_of(t),
                task.modality_of(y),
                "target crossed modality"
            );
            assert_eq!(y, task.target_of(t));
        }
    }

    #[test]
    fn multimodal_is_deterministic_per_rank_step() {
        let task = MultimodalLM::new(8, 8, 1);
        assert_eq!(task.batch(1, 8, 0, 0), task.batch(1, 8, 0, 0));
        assert_ne!(task.batch(1, 8, 0, 0).0, task.batch(1, 8, 1, 0).0);
    }

    #[test]
    fn all_tokens_in_vocab() {
        for dist in [
            TokenDistribution::Uniform,
            TokenDistribution::Zipf(0.8),
            TokenDistribution::Burst,
        ] {
            let task = SyntheticLM::new(17, dist, 6);
            let (tokens, targets) = task.batch(4, 8, 2, 9);
            assert!(tokens.iter().all(|&t| t < 17));
            assert!(targets.iter().all(|&t| t < 17));
        }
    }
}
