//! The multi-rank functional trainer.
//!
//! One OS thread per rank, each holding a [`DistTransformer`] shard and its
//! own mixed-precision optimizer. Per step, each rank:
//!
//! 1. generates its deterministic micro-batch,
//! 2. forward → cross-entropy → loss-scaled backward,
//! 3. [`sync_grads_wire`] (dense all-reduce average + expert rescale,
//!    optionally compressed to 16 bits on the wire),
//! 4. optional global gradient-norm clip,
//! 5. mixed-precision Adam step (skipped coherently on overflow — the
//!    overflow flag is all-reduced so every replica stays in lockstep).

use crate::data::{SyntheticLM, TokenDistribution};
use crate::runconfig::RunConfig;
use bagualu_comm::collectives::{allreduce_recursive_doubling, barrier_ft, ReduceOp};
use bagualu_comm::fault::{FaultPlan, FaultRuntime, FtCommunicator};
use bagualu_comm::harness::{run_ranks_ft, run_ranks_map, RankOutcome};
use bagualu_comm::payload::WireDType;
use bagualu_comm::shm::{CommStats, Communicator, World};
use bagualu_model::config::ModelConfig;
use bagualu_model::loss::cross_entropy;
use bagualu_model::param::HasParams;
use bagualu_optim::adam::AdamConfig;
use bagualu_optim::clip::clip_grad_norm;
use bagualu_optim::mixed::{MixedPrecision, StepOutcome};
use bagualu_optim::schedule::LrSchedule;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::placement::ExpertPlacement;
use bagualu_parallel::sync::{backward_and_sync_overlapped_wire, sync_grads_wire};
use bagualu_tensor::ops::{install_backend, install_row_ops, ComputeBackend};
use bagualu_tensor::DType;
use bagualu_trace::{self as trace, names, Trace, TraceCollector, DRIVER_LANE};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Full training-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    pub model: ModelConfig,
    /// Data/expert-parallel width (threads).
    pub nranks: usize,
    /// Sequences per rank per step.
    pub batch_per_rank: usize,
    /// Sequence length.
    pub seq: usize,
    pub steps: usize,
    pub lr: f32,
    /// Working precision of parameters (FP32 disables scaling).
    pub dtype: DType,
    pub a2a: A2aKind,
    /// Global gradient-norm clip (None = off).
    pub clip: Option<f32>,
    pub seed: u64,
    pub data: TokenDistribution,
    /// Force the loss scale to 1 even for FP16 — the precision ablation
    /// uses this to demonstrate why scaling is necessary.
    pub disable_loss_scaling: bool,
    /// Learning-rate schedule; overrides `lr` when set.
    pub schedule: Option<LrSchedule>,
    /// Micro-batches accumulated per optimizer step (≥ 1).
    pub grad_accum: usize,
    /// Use the ZeRO-style sharded dense optimizer instead of replicated
    /// Adam. Requires `dtype == F32` and `clip == None` (sharded clipping
    /// and sharded loss scaling are not implemented).
    pub zero_optimizer: bool,
    /// Evaluate on held-out data every `eval_every` steps (None = never).
    pub eval_every: Option<usize>,
    /// Overlap dense gradient all-reduce with backward compute by bucketing
    /// gradients as they become ready (ignored under `zero_optimizer`,
    /// whose reduce-scatter replaces the dense all-reduce entirely).
    pub overlap: bool,
    /// Bucket size for the overlapped gradient sync, bytes of f32 payload.
    pub bucket_bytes: usize,
    /// Record a structured per-rank trace (spans + counters) of the run;
    /// the merged [`Trace`] lands in [`TrainReport::trace`].
    pub trace: bool,
    /// Element format for comm-bound tensor traffic (dense gradient
    /// all-reduce, MoE dispatch/combine all-to-alls): 16-bit wires halve
    /// bytes in flight at one rounding per hop, while every reduction still
    /// accumulates in `f32`. Control-path scalars and the ZeRO
    /// reduce-scatter stay uncompressed. `F32` (the default) is lossless.
    pub wire: WireDType,
    /// Expert↔rank mapping policy. `Supernode { supernode_size: 0 }`
    /// infers the size from a [`A2aKind::Hierarchical`] all-to-all (and is
    /// rejected under [`A2aKind::Pairwise`], which has no supernodes to
    /// infer from). The default, round-robin, is bit-identical to the
    /// pre-placement trainer.
    pub placement: ExpertPlacement,
    /// GEMM backend every rank installs for its compute: `Reference` (the
    /// oracle, and the bit-identical default), `Tiled` (same bits, faster),
    /// or `Half(dtype)` (native 16-bit storage-and-compute with f32
    /// accumulation — the end-to-end mixed-precision story, bounded by the
    /// same tolerance band as 16-bit wires). Installed per rank thread, so
    /// concurrent trainers with different backends never interfere.
    pub compute: ComputeBackend,
    /// Log-space gate-selection bonus for experts resident in the caller's
    /// supernode (0 = off, the bit-identical default). Only meaningful when
    /// a supernode size is known — from the placement or from a
    /// hierarchical a2a; with neither the bias is a no-op. Balance is
    /// preserved through the usual auxiliary loss, which operates on the
    /// biased selection counts (raise `model.aux_weight` to push back
    /// harder against the skew).
    pub locality_bias: f32,
}

impl TrainConfig {
    /// The placement policy with `Supernode { supernode_size: 0 }` resolved
    /// against the all-to-all topology. Panics when resolution is
    /// impossible (supernode placement without a size under a pairwise
    /// a2a).
    pub fn resolved_placement(&self) -> ExpertPlacement {
        match self.placement {
            ExpertPlacement::Supernode { supernode_size: 0 } => {
                let s = self.a2a.supernode_size();
                assert!(
                    s > 0,
                    "supernode placement needs an explicit size (supernode:<s>) or a \
                     hierarchical a2a to infer one from"
                );
                ExpertPlacement::Supernode { supernode_size: s }
            }
            p => p,
        }
    }

    /// Supernode size used for locality accounting and the gate bias: the
    /// placement's own, else the hierarchical a2a's, else 0 (disabled).
    pub fn effective_supernode_size(&self) -> usize {
        let s = self.resolved_placement().supernode_size();
        if s > 0 {
            s
        } else {
            self.a2a.supernode_size()
        }
    }
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            model: ModelConfig::tiny(),
            nranks: 2,
            batch_per_rank: 2,
            seq: 8,
            steps: 10,
            lr: 1e-2,
            dtype: DType::F32,
            a2a: A2aKind::Pairwise,
            clip: Some(1.0),
            seed: 42,
            data: TokenDistribution::Uniform,
            disable_loss_scaling: false,
            schedule: None,
            grad_accum: 1,
            zero_optimizer: false,
            eval_every: None,
            overlap: true,
            bucket_bytes: 1 << 20,
            trace: false,
            wire: WireDType::F32,
            placement: ExpertPlacement::RoundRobin,
            compute: ComputeBackend::Reference,
            locality_bias: 0.0,
        }
    }
}

/// What a training run reports.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean cross-entropy per step, averaged over ranks.
    pub loss_curve: Vec<f32>,
    /// Mean auxiliary balance loss per step.
    pub aux_curve: Vec<f32>,
    /// Mean max/mean expert-load imbalance per step (1.0 = balanced), from
    /// the first MoE block.
    pub imbalance_curve: Vec<f64>,
    /// Mean token drop rate per step.
    pub drop_curve: Vec<f64>,
    /// End-to-end training throughput.
    pub tokens_per_sec: f64,
    /// Steps skipped by the loss scaler (summed over ranks / ranks).
    pub skipped_steps: u64,
    /// Global tokens processed.
    pub total_tokens: usize,
    /// Held-out `(step, loss)` evaluations (empty unless `eval_every` set).
    pub eval_curve: Vec<(usize, f32)>,
    /// Measured fraction of ring all-reduce steps that completed while
    /// backward compute was still running, aggregated over all ranks and
    /// steps. `None` when the overlapped sync path did not run (overlap
    /// disabled, or ZeRO); `Some(0.0)` when it ran but nothing could hide
    /// (e.g. single rank — a ring of one has no steps).
    pub overlap_fraction: Option<f64>,
    /// The merged per-rank trace, when [`TrainConfig::trace`] was set.
    pub trace: Option<Arc<Trace>>,
    /// Transport traffic totals, per collective family, when the
    /// communicator collects them.
    pub comm_stats: Option<CommStats>,
    /// Times the run restarted from a checkpoint after a failure
    /// (always 0 under [`Trainer::run`]).
    pub restarts: usize,
    /// Steps that had to be re-executed because they post-dated the last
    /// consistent checkpoint when a failure struck (summed over restarts).
    pub lost_steps: usize,
    /// Wall-clock seconds consumed by attempts that ended in a failure —
    /// detection, plus any re-executed work those attempts performed.
    pub recovery_time_s: f64,
    /// Elastic world resizes: crashes survived by continuing on a shrunk
    /// world instead of restoring at full width (always 0 unless
    /// [`FtConfig::elastic`] was set).
    pub resizes: usize,
    /// Expert-load migrations executed after an online straggler flag
    /// (always 0 unless [`FtConfig::straggler_factor`] was set).
    pub migrations: usize,
    /// The wire format the run's tensor traffic used
    /// (echoes [`TrainConfig::wire`], so reports are self-describing).
    pub wire: WireDType,
    /// The expert placement the run used (the *resolved* policy — a
    /// `supernode` request with inferred size reports the concrete size).
    pub placement: ExpertPlacement,
    /// The GEMM backend the run's ranks computed with
    /// (echoes [`TrainConfig::compute`]).
    pub compute: ComputeBackend,
    /// The full serializable description of the run
    /// ([`RunConfig::reconstruct`]ed from the configs it ran with), so a
    /// report alone is enough to reproduce its run:
    /// `report.run_config.unwrap().to_toml()` feeds straight back into
    /// `bagualu train --config`. `None` when the run used a library-only
    /// feature the config schema does not describe (custom model, LR
    /// schedule, gradient accumulation, …).
    pub run_config: Option<RunConfig>,
}

impl TrainReport {
    /// Last entry of the loss curve (NaN when no steps ran).
    pub fn final_loss(&self) -> f32 {
        *self.loss_curve.last().unwrap_or(&f32::NAN)
    }

    /// Per-step metrics as CSV (`step,loss,aux,imbalance,drop_rate`),
    /// for plotting outside the harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,loss,aux_loss,imbalance,drop_rate\n");
        for i in 0..self.loss_curve.len() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                i,
                self.loss_curve[i],
                self.aux_curve[i],
                self.imbalance_curve[i],
                self.drop_curve[i]
            ));
        }
        out
    }
}

/// Fault-tolerance configuration for [`Trainer::run_ft`].
///
/// Kept separate from [`TrainConfig`] (which stays `Copy`): this carries a
/// fault schedule and a checkpoint directory.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Deterministic fault schedule injected into the transport.
    pub plan: FaultPlan,
    /// Checkpoint directory: `step<N>/rank<r>.bglu` shards plus a
    /// `MANIFEST` naming the latest complete step.
    pub ckpt_dir: PathBuf,
    /// Checkpoint every this many steps (0 = never).
    pub ckpt_every: usize,
    /// Give up (panic) after this many restarts.
    pub max_restarts: usize,
    /// How long a rank waits at a step-boundary heartbeat before declaring
    /// its peers dead.
    pub heartbeat_ms: u64,
    /// Start from this step, restoring `ckpt_dir`'s checkpoint for it
    /// (0 = fresh start).
    pub resume_step: usize,
    /// Online straggler detection: flag a rank whose windowed mean
    /// send-occupancy exceeds `factor ×` the median across ranks (see
    /// `bagualu_trace::StragglerDetector`), then shed half its expert load
    /// at the next checkpoint boundary. `None` (the default) disables
    /// detection entirely — no extra collective per step.
    pub straggler_factor: Option<f64>,
    /// Consecutive steps averaged by the straggler detector before it may
    /// flag (≥ 1); larger windows trade detection latency for immunity to
    /// one-step spikes.
    pub straggler_window: usize,
    /// **Elastic world resize**: when a rank crashes, continue on R−1 ranks
    /// — re-place the lost experts across the survivors and re-shard
    /// optimizer state — instead of restoring at full width. Restore from
    /// the last checkpoint still happens (the shrunk world resumes from it,
    /// re-sharding the R-rank shard set), it just stops being the only
    /// path. Off by default: the historical restore-at-full-width behavior
    /// is unchanged unless asked for.
    pub elastic: bool,
}

impl FtConfig {
    pub fn new(ckpt_dir: impl Into<PathBuf>) -> FtConfig {
        FtConfig {
            plan: FaultPlan::none(),
            ckpt_dir: ckpt_dir.into(),
            ckpt_every: 5,
            max_restarts: 3,
            heartbeat_ms: 1000,
            resume_step: 0,
            straggler_factor: None,
            straggler_window: 3,
            elastic: false,
        }
    }
}

/// Orchestrates a full run over `nranks` threads.
pub struct Trainer {
    pub cfg: TrainConfig,
}

impl Trainer {
    pub fn new(cfg: TrainConfig) -> Trainer {
        assert!(cfg.nranks > 0 && cfg.steps > 0);
        assert!(
            cfg.model.n_experts == 0 || cfg.model.n_experts.is_multiple_of(cfg.nranks),
            "expert count {} must divide evenly over {} ranks",
            cfg.model.n_experts,
            cfg.nranks
        );
        if cfg.zero_optimizer {
            assert!(
                cfg.dtype == DType::F32 && cfg.clip.is_none(),
                "zero_optimizer requires fp32 and no clipping"
            );
        }
        assert_eq!(
            cfg.model.router_groups, 0,
            "the distributed trainer requires the flat gate (two-level routing \
             is a single-rank feature; see MoELayer::new_two_level)"
        );
        cfg.a2a
            .validate(cfg.nranks)
            .expect("invalid a2a configuration");
        cfg.resolved_placement()
            .validate(cfg.nranks)
            .expect("invalid expert placement");
        assert!(
            cfg.locality_bias >= 0.0,
            "locality bias must be >= 0, got {}",
            cfg.locality_bias
        );
        cfg.compute.validate().expect("invalid compute backend");
        Trainer { cfg }
    }

    /// Run to completion and aggregate the report (identical on every rank;
    /// rank 0's copy is returned).
    pub fn run(&self) -> TrainReport {
        let cfg = self.cfg;
        let start = Instant::now();
        let collector = cfg.trace.then(TraceCollector::new);
        let col = collector.clone();
        let mut reports = run_ranks_map(cfg.nranks, move |c| {
            let _lane = col.as_ref().map(|col| col.install(c.rank()));
            rank_main(cfg, &c)
        });
        let report = reports.swap_remove(0);
        let elapsed = start.elapsed().as_secs_f64();
        TrainReport {
            tokens_per_sec: report.total_tokens as f64 / elapsed,
            trace: collector.map(|c| Arc::new(c.finish())),
            ..report
        }
    }

    /// Run with fault injection and checkpoint/restart recovery.
    ///
    /// Each rank heartbeats at every step boundary ([`barrier_ft`]) and
    /// checkpoints its shard every `ft.ckpt_every` steps; rank 0 then
    /// publishes a `MANIFEST` naming the step (atomically, so a failure
    /// mid-checkpoint leaves the previous consistent set in charge). When a
    /// rank crashes, survivors detect it within `ft.heartbeat_ms`, the
    /// world is torn down, and a fresh world restores the last manifest
    /// step and resumes — with a fresh optimizer (Adam moments are not
    /// checkpointed; the run is bit-identical to a fault-free run started
    /// from the restored step, which is what the tests pin down).
    ///
    /// With an empty [`FaultPlan`] and `ckpt_every: 0` this computes
    /// exactly what [`Trainer::run`] computes, plus the heartbeats.
    pub fn run_ft(&self, ft: &FtConfig) -> TrainReport {
        let cfg = self.cfg;
        let start = Instant::now();
        let faults = Arc::new(FaultRuntime::new(ft.plan.clone(), cfg.nranks));
        // One collector for the whole run: lanes from successive restart
        // attempts append to the same per-rank timeline.
        let collector = cfg.trace.then(TraceCollector::new);

        let mut loss = vec![f32::NAN; cfg.steps];
        let mut aux = vec![f32::NAN; cfg.steps];
        let mut imb = vec![f64::NAN; cfg.steps];
        let mut dropr = vec![f64::NAN; cfg.steps];
        let mut eval: std::collections::BTreeMap<usize, f32> = Default::default();
        let mut restarts = 0usize;
        let mut lost_steps = 0usize;
        let mut recovery_time_s = 0.0f64;
        let mut resizes = 0usize;
        let mut migrations = 0usize;
        let mut world_size = cfg.nranks;
        let mut placement = cfg.placement;
        let mut start_step = ft.resume_step;

        loop {
            let cur_cfg = TrainConfig {
                nranks: world_size,
                placement,
                ..cfg
            };
            // Straggler migration is a one-shot per run and only defined
            // from a round-robin layout (Shed is itself the migrated state).
            let allow_migration = ft.straggler_factor.is_some()
                && migrations == 0
                && world_size >= 2
                && cur_cfg.resolved_placement() == ExpertPlacement::RoundRobin;
            // Cross-layout restore (an R-rank shard set onto R−1 ranks, or a
            // round-robin set onto a Shed layout) is only authorized by the
            // degradation features; a plain run keeps the strict gate.
            let allow_reshard = ft.elastic || migrations > 0 || resizes > 0;
            // Pre-flight the restore on rank 0's shard: a mismatched restore
            // is a configuration error, not a transient fault, so it must be
            // a hard error here rather than a crash the restart loop retries
            // into "giving up after N restarts".
            let restore = if start_step == 0 {
                Restore::Fresh
            } else {
                let shard0 = ft
                    .ckpt_dir
                    .join(format!("step{start_step}"))
                    .join("rank0.bglu");
                let current = crate::checkpoint::PlacementMeta {
                    placement: cur_cfg.resolved_placement(),
                    n_experts: cfg.model.n_experts,
                    nranks: world_size,
                };
                if !shard0.exists() {
                    Restore::Strict
                } else {
                    let saved = crate::checkpoint::read_placement(&shard0)
                        .unwrap_or_else(|e| panic!("cannot read checkpoint {shard0:?}: {e}"));
                    match saved {
                        Some(meta) if meta == current => Restore::Strict,
                        Some(meta) if allow_reshard && meta.n_experts == current.n_experts => {
                            Restore::Reshard {
                                from_nranks: meta.nranks,
                            }
                        }
                        Some(meta) if allow_reshard => panic!(
                            "cannot re-shard checkpoint {shard0:?}: it holds {} experts but \
                             this run has {}",
                            meta.n_experts, current.n_experts
                        ),
                        _ => {
                            placement_gate(&shard0, current, 0);
                            Restore::Strict
                        }
                    }
                }
            };
            let attempt_start = Instant::now();
            let attempt_t0_ns = collector.as_ref().map(|c| c.now_ns());
            // The fault runtime is shared across attempts: one-shot events
            // (a crash at step N) stay consumed on the re-execution of N,
            // and after an elastic shrink a crash scheduled for a rank id
            // that no longer exists simply never fires.
            let world = World::new_with_faults(world_size, Arc::clone(&faults));
            let ftc = ft.clone();
            let frt = Arc::clone(&faults);
            let col = collector.clone();
            let outcomes = run_ranks_ft(&world, move |c| {
                let _lane = col.as_ref().map(|col| col.install(c.rank()));
                rank_main_ft(
                    cur_cfg,
                    &ftc,
                    start_step,
                    restore,
                    allow_migration,
                    &frt,
                    &c,
                )
            });

            let mut completed: Option<TrainReport> = None;
            let mut failed = false;
            let mut migrate_to: Option<(usize, usize)> = None;
            let mut through = start_step;
            for o in outcomes {
                match o {
                    RankOutcome::Ok(Attempt::Completed(r)) => completed = Some(*r),
                    RankOutcome::Ok(Attempt::Aborted(seg)) => {
                        failed = true;
                        through = through.max(seg.through);
                        splice(start_step, &seg.loss, &mut loss);
                        splice(start_step, &seg.aux, &mut aux);
                        splice(start_step, &seg.imbalance, &mut imb);
                        splice(start_step, &seg.drop, &mut dropr);
                        eval.extend(seg.eval.iter().copied());
                    }
                    RankOutcome::Ok(Attempt::Migrated { at, victim, seg }) => {
                        migrate_to = Some((at, victim));
                        through = through.max(seg.through);
                        splice(start_step, &seg.loss, &mut loss);
                        splice(start_step, &seg.aux, &mut aux);
                        splice(start_step, &seg.imbalance, &mut imb);
                        splice(start_step, &seg.drop, &mut dropr);
                        eval.extend(seg.eval.iter().copied());
                    }
                    // A genuine panic (not an injected crash): recover from
                    // it like any other failure, up to max_restarts.
                    RankOutcome::Crashed(_) | RankOutcome::TimedOut(_) => failed = true,
                }
            }

            if let Some(report) = completed {
                assert!(!failed, "ranks disagreed on completion");
                splice(start_step, &report.loss_curve, &mut loss);
                splice(start_step, &report.aux_curve, &mut aux);
                splice(start_step, &report.imbalance_curve, &mut imb);
                splice(start_step, &report.drop_curve, &mut dropr);
                eval.extend(report.eval_curve.iter().copied());
                let elapsed = start.elapsed().as_secs_f64();
                return TrainReport {
                    loss_curve: loss,
                    aux_curve: aux,
                    imbalance_curve: imb,
                    drop_curve: dropr,
                    eval_curve: eval.into_iter().collect(),
                    tokens_per_sec: report.total_tokens as f64 / elapsed,
                    restarts,
                    lost_steps,
                    recovery_time_s,
                    resizes,
                    migrations,
                    trace: collector.map(|c| Arc::new(c.finish())),
                    // The report's own reconstruction has no [ft] section
                    // (finish() cannot see it); re-stamp with it included.
                    run_config: RunConfig::reconstruct(&cfg, Some(ft)),
                    ..report
                };
            }

            if let (Some((at, victim)), false) = (migrate_to, failed) {
                // Planned degradation, not a failure: every rank agreed (the
                // detector's verdict is a pure function of all-reduced
                // samples) and a checkpoint for `at` is already published.
                // Shift to the Shed layout and continue from that step —
                // no restart counted, no recovery time charged.
                migrations += 1;
                if let Some(col) = &collector {
                    col.record_count(DRIVER_LANE, names::STRAGGLER_MIGRATIONS, 1);
                }
                placement = ExpertPlacement::Shed { victim };
                start_step = at;
                continue;
            }

            // The failed attempt, recorded on the driver lane: its whole
            // wall time is recovery (detection + re-executed work).
            if let Some(col) = &collector {
                col.record_span(
                    DRIVER_LANE,
                    names::RECOVERY,
                    attempt_t0_ns.unwrap(),
                    col.now_ns(),
                );
                col.record_count(DRIVER_LANE, names::RESTARTS, 1);
            }
            recovery_time_s += attempt_start.elapsed().as_secs_f64();
            restarts += 1;
            assert!(
                restarts <= ft.max_restarts,
                "giving up after {restarts} restarts (failure at step {through}, \
                 max_restarts={})",
                ft.max_restarts
            );
            // "No manifest yet" legitimately means restart from the resume
            // step; an *unreadable or unparsable* manifest means the
            // checkpoint state cannot be trusted and guessing would silently
            // miscount lost work — that is a hard error.
            let restored = match read_manifest(&ft.ckpt_dir) {
                Ok(Some(step)) => step,
                Ok(None) => ft.resume_step,
                Err(e) => panic!(
                    "checkpoint manifest in {:?} is unreadable: {e}. Refusing to guess a \
                     restore step; repair or remove the MANIFEST file.",
                    ft.ckpt_dir
                ),
            };
            lost_steps += through.saturating_sub(restored);
            start_step = restored;
            if ft.elastic && world_size > 1 {
                // Degrade, don't die: drop the crashed rank and continue on
                // the survivors. The next attempt re-shards the full-width
                // checkpoint across R−1 ranks; ZeRO state re-shards itself
                // (optimizer moments are rebuilt from the restored master
                // weights, exactly as on any restore).
                world_size -= 1;
                resizes += 1;
                if let Some(col) = &collector {
                    col.record_count(DRIVER_LANE, names::FT_RESIZES, 1);
                }
                // A Shed victim was named in the old world; fold back to the
                // configured layout for the shrunk one.
                if matches!(placement, ExpertPlacement::Shed { .. }) {
                    placement = ExpertPlacement::RoundRobin;
                }
                let shrunk = TrainConfig {
                    nranks: world_size,
                    placement,
                    ..cfg
                };
                shrunk
                    .resolved_placement()
                    .validate(world_size)
                    .unwrap_or_else(|e| {
                        panic!("elastic resize to {world_size} ranks is impossible: {e}")
                    });
            }
        }
    }
}

/// Everything one rank needs to execute training steps, factored out of
/// `rank_main` so the fault-tolerant driver can restore a checkpoint into
/// it and resume from an arbitrary step.
struct RankState {
    cfg: TrainConfig,
    model: DistTransformer,
    opt: MixedPrecision,
    zopt: bagualu_parallel::zero::ZeroAdam,
    task: SyntheticLM,
    loss_curve: Vec<f32>,
    aux_curve: Vec<f32>,
    imbalance_curve: Vec<f64>,
    drop_curve: Vec<f64>,
    eval_curve: Vec<(usize, f32)>,
    ring_steps: u64,
    ring_steps_overlapped: u64,
}

impl RankState {
    fn new<C: Communicator>(cfg: TrainConfig, comm: &C) -> RankState {
        let placement = cfg.resolved_placement();
        let mut model = DistTransformer::new_placed(
            cfg.model,
            cfg.seed,
            comm.rank(),
            comm.size(),
            cfg.a2a,
            placement,
        );
        model.set_wire_dtype(cfg.wire);
        // Arm intra/inter-supernode byte accounting and the locality-biased
        // gate whenever a supernode size is known (from the placement or
        // the hierarchical a2a).
        let sn = cfg.effective_supernode_size();
        if sn > 0 {
            comm.set_supernode_size(sn);
        }
        if cfg.locality_bias != 0.0 {
            model.set_locality_bias(cfg.locality_bias, sn);
        }
        let mut opt = MixedPrecision::new(
            AdamConfig {
                lr: cfg.lr,
                ..Default::default()
            },
            cfg.dtype,
        );
        if cfg.disable_loss_scaling {
            opt = opt.with_scaler(bagualu_optim::scaler::LossScaler::disabled());
        }
        let zopt = bagualu_parallel::zero::ZeroAdam::new(AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        });
        opt.quantize_model(&mut model);
        let task = SyntheticLM::new(cfg.model.vocab, cfg.data, cfg.seed);
        RankState {
            cfg,
            model,
            opt,
            zopt,
            task,
            loss_curve: Vec::with_capacity(cfg.steps),
            aux_curve: Vec::with_capacity(cfg.steps),
            imbalance_curve: Vec::with_capacity(cfg.steps),
            drop_curve: Vec::with_capacity(cfg.steps),
            eval_curve: Vec::new(),
            ring_steps: 0,
            ring_steps_overlapped: 0,
        }
    }

    /// Execute training step `step`: micro-batches, gradient sync,
    /// optimizer update, cross-rank metric aggregation, optional eval.
    fn step<C: Communicator>(&mut self, step: usize, comm: &C) {
        let _step_span = trace::span(names::STEP);
        let cfg = self.cfg;
        let accum = cfg.grad_accum.max(1);
        // Overlapped sync replaces backward + sync_grads on the *last*
        // micro-batch only: earlier micro-batches still accumulate, so their
        // dense gradients are not final and must not be reduced yet.
        let use_overlap = cfg.overlap && !cfg.zero_optimizer;

        if let Some(schedule) = cfg.schedule {
            self.opt.set_lr(schedule.at(step));
            self.zopt.set_lr(schedule.at(step));
        }

        // Accumulate gradients over `accum` micro-batches before syncing.
        let mut ce = 0.0f32;
        let mut aux = 0.0f32;
        let mut imb = 1.0f64;
        let mut dropr = 0.0f64;
        for micro in 0..accum {
            let (tokens, targets) = self.task.batch(
                cfg.batch_per_rank,
                cfg.seq,
                comm.rank(),
                step * accum + micro,
            );
            let logits = {
                let _span = trace::span(names::FORWARD);
                self.model
                    .forward(&tokens, cfg.batch_per_rank, cfg.seq, comm)
            };
            let (micro_ce, mut dlogits) = cross_entropy(&logits, &targets);
            ce += micro_ce / accum as f32;
            aux += self.model.aux_loss() / accum as f32;
            // Routing statistics must be read here: backward consumes the
            // MoE layer caches that hold them.
            let (i, d) = routing_stats(&self.model);
            imb = i;
            dropr = d;
            dlogits.scale(self.opt.loss_scale() / accum as f32);
            if use_overlap && micro + 1 == accum {
                let s = backward_and_sync_overlapped_wire(
                    &mut self.model,
                    &dlogits,
                    comm,
                    cfg.bucket_bytes,
                    cfg.wire,
                );
                self.ring_steps += s.ring_steps as u64;
                self.ring_steps_overlapped += s.ring_steps_overlapped as u64;
            } else {
                let _span = trace::span(names::BACKWARD);
                self.model.backward(&dlogits, comm);
            }
        }

        if cfg.zero_optimizer {
            // ZeRO path: reduce-scatter + sharded update + all-gather,
            // replacing both the grad sync and the replicated step.
            let _span = trace::span(names::OPTIMIZER);
            self.zopt.step(&mut self.model, comm);
        } else {
            if !use_overlap {
                sync_grads_wire(&mut self.model, comm, cfg.wire);
            }
            let _span = trace::span(names::OPTIMIZER);
            if let Some(max_norm) = cfg.clip {
                // Unscale before measuring the norm so clipping thresholds
                // mean the same thing at every loss scale.
                let inv = 1.0 / self.opt.loss_scale();
                self.model.visit_params(&mut |p| p.grad.scale(inv));
                clip_grad_norm(&mut self.model, max_norm);
                let back = self.opt.loss_scale();
                self.model.visit_params(&mut |p| p.grad.scale(back));
            }
            let outcome = self.opt.step(&mut self.model);
            // Keep replicas in lockstep: if any rank overflowed, all did —
            // the gradients are identical post-allreduce for dense params,
            // and expert overflow is local; force agreement by reducing the
            // flag.
            let flag = if outcome == StepOutcome::SkippedOverflow {
                1.0
            } else {
                0.0
            };
            let agreed = allreduce_recursive_doubling(comm, vec![flag], ReduceOp::Max);
            debug_assert!(agreed[0] == flag || cfg.dtype != DType::F32);
        }
        self.model.zero_grad();

        // Aggregate the step metrics across ranks.
        // Control-path scalars ride the latency-optimal collective (E16).
        let stats = allreduce_recursive_doubling(
            comm,
            vec![ce, aux, imb as f32, dropr as f32],
            ReduceOp::Sum,
        );
        let r = comm.size() as f32;
        self.loss_curve.push(stats[0] / r);
        self.aux_curve.push(stats[1] / r);
        self.imbalance_curve.push((stats[2] / r) as f64);
        self.drop_curve.push((stats[3] / r) as f64);

        // Held-out evaluation (forward only, no gradient contamination:
        // grads were just zeroed and the backward pass is never run).
        if let Some(every) = cfg.eval_every {
            if step.is_multiple_of(every) || step + 1 == cfg.steps {
                let _span = trace::span(names::EVAL);
                // Step indices far outside the training stream.
                let (tokens, targets) =
                    self.task
                        .batch(cfg.batch_per_rank, cfg.seq, comm.rank(), (1 << 20) + step);
                let logits = self
                    .model
                    .forward(&tokens, cfg.batch_per_rank, cfg.seq, comm);
                let (eval_ce, _) = cross_entropy(&logits, &targets);
                let agg = allreduce_recursive_doubling(comm, vec![eval_ce], ReduceOp::Sum);
                self.eval_curve.push((step, agg[0] / r));
            }
        }
    }

    /// Pool run-wide counters and assemble the report. Uses blocking
    /// collectives, so call only when every rank reached the end.
    fn finish<C: Communicator>(self, comm: &C) -> TrainReport {
        let cfg = self.cfg;
        // Pool the overlap counters globally so the fraction reflects the
        // whole job, not just rank 0's slice of the rings.
        let pooled = allreduce_recursive_doubling(
            comm,
            vec![self.ring_steps_overlapped as f32, self.ring_steps as f32],
            ReduceOp::Sum,
        );
        // Divide in f64: the f32 sums are exact (small integer counts), so
        // this matches the trace-derived u64 ratio bit for bit.
        let overlap_fraction = if cfg.overlap && !cfg.zero_optimizer {
            Some(if pooled[1] > 0.0 {
                pooled[0] as f64 / pooled[1] as f64
            } else {
                0.0
            })
        } else {
            None
        };

        // Snapshot transport counters after every rank has gone quiet, so
        // the totals are stable and identical in meaning across ranks.
        comm.barrier();
        let comm_stats = comm.stats();

        let total_tokens =
            cfg.nranks * cfg.batch_per_rank * cfg.seq * cfg.steps * cfg.grad_accum.max(1);
        TrainReport {
            loss_curve: self.loss_curve,
            aux_curve: self.aux_curve,
            imbalance_curve: self.imbalance_curve,
            drop_curve: self.drop_curve,
            tokens_per_sec: 0.0, // filled in by Trainer::run
            skipped_steps: self.opt.skipped_steps,
            total_tokens,
            eval_curve: self.eval_curve,
            overlap_fraction,
            comm_stats,
            restarts: 0,
            lost_steps: 0,
            recovery_time_s: 0.0,
            resizes: 0,
            migrations: 0,
            trace: None, // filled in by Trainer::run / run_ft
            wire: cfg.wire,
            placement: cfg.resolved_placement(),
            compute: cfg.compute,
            run_config: RunConfig::reconstruct(&cfg, None),
        }
    }
}

fn rank_main<C: Communicator>(cfg: TrainConfig, comm: &C) -> TrainReport {
    // Scope the configured compute backends to this rank's thread: every
    // matmul below — model forward/backward, eval, optimizer-adjacent
    // GEMMs — dispatches to the GEMM backend, and every softmax/layer-norm/
    // Adam pass to the paired row-op tier; nothing outside this rank is
    // affected.
    let _backend = install_backend(cfg.compute.instantiate());
    let _row_ops = install_row_ops(cfg.compute.instantiate_row_ops());
    let mut st = RankState::new(cfg, comm);
    for step in 0..cfg.steps {
        st.step(step, comm);
    }
    st.finish(comm)
}

/// What one rank's restart attempt produced.
enum Attempt {
    /// Ran through step `cfg.steps - 1`.
    Completed(Box<TrainReport>),
    /// Stopped early — an injected crash on this rank, or a failed
    /// heartbeat because some peer stopped responding.
    Aborted(Segment),
    /// Stopped deliberately at the published checkpoint for step `at` so
    /// the driver can re-place expert load away from the flagged straggler
    /// `victim` and continue. Every rank returns the same verdict — the
    /// straggler detector is deterministic over all-reduced samples.
    Migrated {
        /// Checkpoint step (already published) the migrated run resumes at.
        at: usize,
        /// The flagged straggler whose expert load is shed.
        victim: usize,
        /// Metrics for the steps this attempt did complete.
        seg: Segment,
    },
}

/// How a restart attempt restores model state, decided by the driver (which
/// also pre-flights it against rank 0's shard so misconfiguration is a hard
/// error, not a retried crash).
#[derive(Debug, Clone, Copy)]
enum Restore {
    /// `start_step == 0`: nothing to restore.
    Fresh,
    /// The checkpoint's layout matches this attempt exactly: each rank
    /// loads its own shard (the historical, bit-pinned path).
    Strict,
    /// The checkpoint was written under a different layout (different world
    /// size after an elastic resize, or a different placement after a
    /// migration): each rank reads all `from_nranks` shard files and pulls
    /// out the parameters its new layout owns. Sound because expert
    /// parameters are named by *global* expert id and dense parameters are
    /// identical replicas in every shard.
    Reshard {
        /// World size the shard set on disk was written for.
        from_nranks: usize,
    },
}

/// Metrics for the steps an aborted attempt did complete, starting at the
/// attempt's start step. Identical on every rank (they are all-reduced), so
/// the driver can splice any one rank's segment into the global curves.
struct Segment {
    /// First step that did NOT execute.
    through: usize,
    loss: Vec<f32>,
    aux: Vec<f32>,
    imbalance: Vec<f64>,
    drop: Vec<f64>,
    eval: Vec<(usize, f32)>,
}

/// Placement gate for checkpoint restore: a shard written under a different
/// expert↔rank mapping would load each expert's weights into whatever expert
/// now occupies the same slot — fail loudly instead. Called by the driver
/// (with rank 0's shard, so the mismatch surfaces as a hard error rather
/// than a retried crash) and by every rank on its own shard.
fn placement_gate(path: &std::path::Path, current: crate::checkpoint::PlacementMeta, rank: usize) {
    let saved = crate::checkpoint::read_placement(path)
        .unwrap_or_else(|e| panic!("rank {rank}: cannot read checkpoint {path:?}: {e}"));
    match saved {
        Some(meta) if meta != current => panic!(
            "rank {rank}: placement mismatch — checkpoint {path:?} was written under \
             placement '{}' ({} experts on {} ranks), but this run uses '{}' \
             ({} experts on {} ranks). Restoring would silently assign experts to \
             the wrong ranks; restart with the original placement or re-shard the \
             checkpoint explicitly.",
            meta.placement,
            meta.n_experts,
            meta.nranks,
            current.placement,
            current.n_experts,
            current.nranks,
        ),
        None if current.placement != ExpertPlacement::RoundRobin => panic!(
            "rank {rank}: placement mismatch — checkpoint {path:?} predates placement \
             metadata (implicitly round-robin), but this run uses '{}'. Restoring \
             would silently assign experts to the wrong ranks.",
            current.placement,
        ),
        _ => {}
    }
}

fn segment(st: RankState, through: usize) -> Segment {
    Segment {
        through,
        loss: st.loss_curve,
        aux: st.aux_curve,
        imbalance: st.imbalance_curve,
        drop: st.drop_curve,
        eval: st.eval_curve,
    }
}

fn abort(st: RankState, through: usize) -> Attempt {
    Attempt::Aborted(segment(st, through))
}

/// The fault-tolerant per-rank loop: heartbeat → step → periodic
/// checkpoint, resuming from `start_step` when restarted. `cfg` is the
/// *current* attempt's configuration — after an elastic resize or a
/// straggler migration it differs from the run's original config in
/// `nranks`/`placement`.
fn rank_main_ft<C: FtCommunicator>(
    cfg: TrainConfig,
    ft: &FtConfig,
    start_step: usize,
    restore: Restore,
    allow_migration: bool,
    faults: &FaultRuntime,
    comm: &C,
) -> Result<Attempt, bagualu_comm::fault::CommError> {
    let hb = Duration::from_millis(ft.heartbeat_ms.max(1));
    // Same per-rank backend scopes as `rank_main`; restart attempts run on
    // fresh threads, so each attempt re-installs them.
    let _backend = install_backend(cfg.compute.instantiate());
    let _row_ops = install_row_ops(cfg.compute.instantiate_row_ops());
    let mut st = RankState::new(cfg, comm);
    let placement_meta = crate::checkpoint::PlacementMeta {
        placement: cfg.resolved_placement(),
        n_experts: cfg.model.n_experts,
        nranks: comm.size(),
    };
    // Embedded once per shard so every checkpoint is self-describing
    // (`None` — and no record — when the schema cannot express this run).
    let run_config = RunConfig::reconstruct(&cfg, Some(ft));
    match restore {
        Restore::Fresh => {}
        Restore::Strict => {
            let path = ft
                .ckpt_dir
                .join(format!("step{start_step}"))
                .join(format!("rank{}.bglu", comm.rank()));
            placement_gate(&path, placement_meta, comm.rank());
            crate::checkpoint::load_params(&path, &mut st.model).unwrap_or_else(|e| {
                panic!(
                    "rank {}: cannot restore step-{start_step} checkpoint: {e}",
                    comm.rank()
                )
            });
            // Restore the working-precision invariant (no-op for f32); the
            // optimizer captures master weights lazily at its first step, so
            // they come from these restored values.
            st.opt.quantize_model(&mut st.model);
        }
        Restore::Reshard { from_nranks } => {
            // Cross-layout restore: read every shard of the old world and
            // pull out what this rank's new layout owns (the driver already
            // gated compatibility on rank 0's shard).
            let dir = ft.ckpt_dir.join(format!("step{start_step}"));
            let paths: Vec<PathBuf> = (0..from_nranks)
                .map(|r| dir.join(format!("rank{r}.bglu")))
                .collect();
            crate::checkpoint::load_params_from_files(&paths, &mut st.model).unwrap_or_else(|e| {
                panic!(
                    "rank {}: cannot re-shard step-{start_step} checkpoint \
                         ({from_nranks} shards onto {} ranks): {e}",
                    comm.rank(),
                    comm.size()
                )
            });
            st.opt.quantize_model(&mut st.model);
        }
    }

    // Online straggler detection: every rank contributes its send-occupancy
    // delta (one-hot, summed by the all-reduce), so every rank sees the
    // same per-rank samples and the detector — a pure function of them —
    // reaches the same verdict everywhere with no extra coordination.
    let mut detector = (allow_migration && comm.size() >= 2)
        .then(|| {
            ft.straggler_factor.map(|f| {
                bagualu_trace::StragglerDetector::new(comm.size(), f, ft.straggler_window.max(1))
            })
        })
        .flatten();
    let mut last_occupancy = comm.send_occupancy_ns().unwrap_or(0);
    let mut pending_victim: Option<usize> = None;

    for step in start_step..cfg.steps {
        // Publish the step to the fault runtime so sustained (step-ranged)
        // degradation windows open and close on schedule.
        faults.set_step(step);
        // Injected fail-stop crash: the rank flags itself dead and goes
        // silent. Peers observe exactly what a real crash looks like —
        // no more messages — while the harness still collects the metric
        // segment this rank had already agreed on.
        if faults.should_crash(comm.rank(), step) {
            comm.mark_self_dead();
            return Ok(abort(st, step));
        }
        // Step-boundary heartbeat: detects dead peers within `hb`. On
        // failure, flag self dead too so detection cascades instead of
        // every survivor waiting out its own full timeout.
        if barrier_ft(comm, hb).is_err() {
            comm.mark_self_dead();
            return Ok(abort(st, step));
        }
        st.step(step, comm);

        if let Some(det) = detector.as_mut() {
            let occ = comm.send_occupancy_ns().unwrap_or(0);
            let delta = occ.saturating_sub(last_occupancy);
            last_occupancy = occ;
            let mut one_hot = vec![0.0f32; comm.size()];
            one_hot[comm.rank()] = delta as f32;
            let pooled = allreduce_recursive_doubling(comm, one_hot, ReduceOp::Sum);
            let samples: Vec<f64> = pooled.iter().map(|&s| s as f64).collect();
            if pending_victim.is_none() {
                if let Some(victim) = det.observe(&samples) {
                    pending_victim = Some(victim);
                    // One count per flag *event*: every rank reached this
                    // verdict, so only rank 0 records it.
                    if comm.rank() == 0 {
                        trace::count(names::STRAGGLER_FLAGGED, 1);
                    }
                }
            }
        }

        if ft.ckpt_every > 0 && (step + 1) % ft.ckpt_every == 0 && step + 1 < cfg.steps {
            let _span = trace::span(names::CHECKPOINT);
            let next_step = step + 1;
            let dir = ft.ckpt_dir.join(format!("step{next_step}"));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("cannot create checkpoint dir {dir:?}: {e}"));
            let path = dir.join(format!("rank{}.bglu", comm.rank()));
            crate::checkpoint::save_params_with_meta(
                &path,
                &mut st.model,
                placement_meta,
                run_config.as_ref(),
            )
            .unwrap_or_else(|e| panic!("cannot write checkpoint {path:?}: {e}"));
            // All shards must be durable before the manifest advances;
            // then rank 0 publishes the step atomically.
            if barrier_ft(comm, hb).is_err() {
                comm.mark_self_dead();
                return Ok(abort(st, next_step));
            }
            if comm.rank() == 0 {
                write_manifest(&ft.ckpt_dir, next_step);
            }
            // Migration is amortized to checkpoint boundaries: the shard
            // set for `next_step` is complete and the manifest published,
            // so the re-placed world can restore from it consistently.
            if let Some(victim) = pending_victim {
                return Ok(Attempt::Migrated {
                    at: next_step,
                    victim,
                    seg: segment(st, next_step),
                });
            }
        }
    }
    Ok(Attempt::Completed(Box::new(st.finish(comm))))
}

/// Copy a curve segment computed from step `at` into the global curve.
fn splice<T: Copy>(at: usize, src: &[T], dst: &mut [T]) {
    for (i, &v) in src.iter().enumerate() {
        if at + i < dst.len() {
            dst[at + i] = v;
        }
    }
}

/// Publish `MANIFEST` naming the latest complete checkpoint step. Written
/// to a staging file and renamed so readers never see a partial manifest.
fn write_manifest(dir: &Path, step: usize) {
    let tmp = dir.join("MANIFEST.tmp");
    std::fs::write(&tmp, format!("{step}\n")).expect("write checkpoint manifest");
    std::fs::rename(&tmp, dir.join("MANIFEST")).expect("publish checkpoint manifest");
}

/// Read the latest published checkpoint step. The two failure shapes are
/// deliberately distinct: `Ok(None)` means no manifest exists yet (a clean
/// first crash before any checkpoint — resume from the configured step),
/// while `Err` means a manifest *exists* but cannot be read or parsed.
/// Silently falling back on the latter would quietly replay from the wrong
/// step; the driver escalates it to a hard error instead.
fn read_manifest(dir: &Path) -> std::io::Result<Option<usize>> {
    let text = match std::fs::read_to_string(dir.join("MANIFEST")) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let step = text
        .split_whitespace()
        .next()
        .and_then(|tok| tok.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("manifest does not name a step: {text:?}"),
            )
        })?;
    Ok(Some(step))
}

/// Pull imbalance/drop statistics from the first MoE block's last routing.
fn routing_stats(model: &DistTransformer) -> (f64, f64) {
    use bagualu_parallel::model_dist::DistFfn;
    for b in &model.blocks {
        if let DistFfn::MoE(moe) = &b.ffn {
            if let Some(r) = moe.last_routing() {
                return (r.imbalance(), r.drop_rate());
            }
        }
    }
    (1.0, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_learns_on_synthetic_task() {
        let cfg = TrainConfig {
            steps: 40,
            lr: 2e-2,
            ..Default::default()
        };
        let report = Trainer::new(cfg).run();
        assert_eq!(report.loss_curve.len(), 40);
        let first = report.loss_curve[0];
        let last = report.final_loss();
        assert!(last < first * 0.8, "no learning: {first} -> {last}");
        assert!(report.tokens_per_sec > 0.0);
        assert_eq!(report.total_tokens, 2 * 2 * 8 * 40);
    }

    #[test]
    fn single_rank_matches_multi_rank_loss_curve() {
        // Same global batch split across ranks: curves must match closely
        // (not exactly — summation order differs in the all-reduce).
        let base = TrainConfig {
            steps: 6,
            batch_per_rank: 4,
            nranks: 1,
            ..Default::default()
        };
        let r1 = Trainer::new(base).run();
        let r2 = Trainer::new(TrainConfig {
            nranks: 2,
            batch_per_rank: 2,
            ..base
        })
        .run();
        // Different ranks draw different data, so only the trend is
        // comparable; check both learn and stay finite.
        assert!(r1.loss_curve.iter().all(|l| l.is_finite()));
        assert!(r2.loss_curve.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn mixed_precision_trains() {
        let cfg = TrainConfig {
            steps: 20,
            dtype: DType::BF16,
            ..Default::default()
        };
        let report = Trainer::new(cfg).run();
        assert!(report.final_loss().is_finite());
        assert!(report.final_loss() < report.loss_curve[0]);
    }

    #[test]
    fn compressed_wire_trains_close_to_f32() {
        // The bf16 wire rounds every hop of the gradient rings and the MoE
        // all-to-alls; training must still converge, and the final loss must
        // stay within 1% of the uncompressed run (E24 pins the same bound
        // with eval loss at larger scale).
        let base = TrainConfig {
            steps: 40,
            lr: 2e-2,
            nranks: 4,
            ..Default::default()
        };
        let exact = Trainer::new(base).run();
        for wire in [WireDType::BF16, WireDType::F16] {
            let compressed = Trainer::new(TrainConfig { wire, ..base }).run();
            assert_eq!(compressed.wire, wire);
            let (a, b) = (exact.final_loss(), compressed.final_loss());
            // Near the convergence floor (~0.08 here) per-hop rounding
            // jitters the trajectory like a different summation order
            // would, so the bound is 1% relative with an absolute floor;
            // E24 pins the strict <1% relative bound at a higher loss.
            assert!(
                (a - b).abs() <= (0.01 * a.abs()).max(0.02),
                "{wire} wire degraded final loss: f32={a} vs {b}"
            );
        }
    }

    #[test]
    fn f32_wire_is_bit_identical_to_default() {
        // WireDType::F32 must share the exact code path (pack is a no-op
        // wrap), so the loss curves agree bit for bit.
        let base = TrainConfig {
            steps: 10,
            ..Default::default()
        };
        let a = Trainer::new(base).run();
        let b = Trainer::new(TrainConfig {
            wire: WireDType::F32,
            ..base
        })
        .run();
        assert_eq!(a.loss_curve, b.loss_curve);
    }

    #[test]
    fn hierarchical_a2a_trains() {
        let cfg = TrainConfig {
            nranks: 4,
            steps: 8,
            a2a: A2aKind::Hierarchical { supernode_size: 2 },
            ..Default::default()
        };
        let report = Trainer::new(cfg).run();
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn skewed_data_raises_imbalance() {
        // Enough steps/tokens that the comparison reflects the distributions
        // rather than per-seed routing noise in the first few steps.
        let base = TrainConfig {
            steps: 16,
            batch_per_rank: 4,
            ..Default::default()
        };
        let uniform = Trainer::new(TrainConfig {
            data: TokenDistribution::Uniform,
            ..base
        })
        .run();
        let burst = Trainer::new(TrainConfig {
            data: TokenDistribution::Burst,
            ..base
        })
        .run();
        let u: f64 = uniform.imbalance_curve.iter().sum::<f64>() / 16.0;
        let b: f64 = burst.imbalance_curve.iter().sum::<f64>() / 16.0;
        assert!(b >= u, "burst should be at least as imbalanced: {b} vs {u}");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_indivisible_expert_count() {
        Trainer::new(TrainConfig {
            nranks: 3,
            ..Default::default()
        });
    }

    #[test]
    fn zero_optimizer_matches_replicated_training() {
        let base = TrainConfig {
            steps: 12,
            clip: None,
            ..Default::default()
        };
        let rep = Trainer::new(base).run();
        let zero = Trainer::new(TrainConfig {
            zero_optimizer: true,
            ..base
        })
        .run();
        for (a, b) in rep.loss_curve.iter().zip(&zero.loss_curve) {
            assert!((a - b).abs() < 1e-3, "ZeRO changed training: {a} vs {b}");
        }
    }

    #[test]
    fn eval_curve_tracks_held_out_loss() {
        let cfg = TrainConfig {
            steps: 41,
            eval_every: Some(10),
            ..Default::default()
        };
        let r = Trainer::new(cfg).run();
        // Evals at 0, 10, 20, 30, 40 (last step included).
        let steps: Vec<usize> = r.eval_curve.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 10, 20, 30, 40]);
        let first = r.eval_curve[0].1;
        let last = r.eval_curve.last().unwrap().1;
        assert!(
            last < first,
            "held-out loss did not improve: {first} -> {last}"
        );
        // Held-out data is the same mapping, so eval ≈ train loss late on.
        assert!((last - r.final_loss()).abs() < 1.0);
    }

    #[test]
    fn grad_accumulation_processes_more_tokens_and_learns() {
        let cfg = TrainConfig {
            steps: 15,
            grad_accum: 3,
            ..Default::default()
        };
        let r = Trainer::new(cfg).run();
        assert_eq!(r.total_tokens, 2 * 2 * 8 * 15 * 3);
        assert!(r.final_loss() < r.loss_curve[0]);
        assert!(r.loss_curve.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn overlapped_sync_matches_blocking_sync() {
        // Bucketed overlapped all-reduce vs. monolithic blocking all-reduce:
        // same training trajectory up to summation order. A small bucket
        // forces many buckets per step so the overlap machinery is actually
        // exercised.
        let base = TrainConfig {
            steps: 8,
            overlap: false,
            ..Default::default()
        };
        let blocking = Trainer::new(base).run();
        let overlapped = Trainer::new(TrainConfig {
            overlap: true,
            bucket_bytes: 1 << 10,
            ..base
        })
        .run();
        for (a, b) in blocking.loss_curve.iter().zip(&overlapped.loss_curve) {
            assert!((a - b).abs() < 1e-3, "overlap changed training: {a} vs {b}");
        }
        assert_eq!(blocking.overlap_fraction, None, "overlap off → no fraction");
        let of = overlapped
            .overlap_fraction
            .expect("overlap on → measured fraction");
        assert!(of > 0.0, "no measured overlap at 2 ranks: {of}");
        assert!(of <= 1.0);
        // The shared-memory transport counts traffic per collective family.
        let stats = overlapped.comm_stats.expect("ShmComm collects stats");
        use bagualu_comm::CommFamily;
        assert!(stats.family(CommFamily::Allreduce).bytes > 0);
        assert!(stats.total_bytes >= stats.family(CommFamily::Allreduce).bytes);
    }

    #[test]
    fn overlap_with_grad_accum_stays_correct() {
        // Only the last micro-batch may sync; earlier ones must accumulate.
        let base = TrainConfig {
            steps: 8,
            grad_accum: 3,
            overlap: false,
            ..Default::default()
        };
        let blocking = Trainer::new(base).run();
        let overlapped = Trainer::new(TrainConfig {
            overlap: true,
            bucket_bytes: 1 << 12,
            ..base
        })
        .run();
        for (a, b) in blocking.loss_curve.iter().zip(&overlapped.loss_curve) {
            assert!((a - b).abs() < 1e-3, "accum+overlap diverged: {a} vs {b}");
        }
    }

    #[test]
    fn trace_derived_overlap_matches_timer_derived_exactly() {
        // The report's fraction is pooled by an f32 sum-allreduce of small
        // integer counts (exact) and divided in f64; the trace derives the
        // same integers from per-rank counters. The two must agree to 1e-9
        // (in fact bit for bit).
        let cfg = TrainConfig {
            steps: 6,
            bucket_bytes: 1 << 10, // many buckets: exercise the machinery
            trace: true,
            ..Default::default()
        };
        let r = Trainer::new(cfg).run();
        let trace = r.trace.as_ref().expect("trace requested");
        let from_trace = trace.overlap_fraction().expect("ring steps recorded");
        let from_timer = r.overlap_fraction.expect("overlap enabled");
        assert!(
            (from_trace - from_timer).abs() < 1e-9,
            "trace-derived {from_trace} vs timer-derived {from_timer}"
        );
    }

    #[test]
    fn trace_records_step_phases_and_comm_counters() {
        let cfg = TrainConfig {
            steps: 4,
            eval_every: Some(2),
            trace: true,
            ..Default::default()
        };
        let r = Trainer::new(cfg).run();
        let trace = r.trace.as_ref().expect("trace requested");
        assert_eq!(trace.ranks.len(), cfg.nranks);
        for rank in 0..cfg.nranks {
            let lane = trace.lane(rank).expect("lane per rank");
            lane.check_balanced().expect("span stack balanced");
            assert_eq!(lane.span_count(names::STEP), cfg.steps as u64);
            // Training forwards only; eval forwards live inside EVAL spans.
            assert_eq!(lane.span_count(names::FORWARD), cfg.steps as u64);
            assert_eq!(lane.span_count(names::EVAL), 3, "evals at steps 0, 2, 3");
            assert_eq!(lane.span_count(names::GRAD_SYNC), cfg.steps as u64);
            assert!(lane.span_total_ns(names::STEP) >= lane.span_total_ns(names::FORWARD));
        }
        // Transport counters mirror CommStats exactly: every send the
        // transport counted was recorded by the sending rank's lane.
        let stats = r.comm_stats.expect("ShmComm collects stats");
        for (family, fam_stats) in stats.families() {
            let (bytes_name, msgs_name) = family.sent_counter_names();
            assert_eq!(
                trace.counter_total(bytes_name),
                fam_stats.bytes,
                "family {family:?} bytes"
            );
            assert_eq!(
                trace.counter_total(msgs_name),
                fam_stats.msgs,
                "family {family:?} msgs"
            );
            // Everything sent was received (the run drained all queues).
            let (rbytes, rmsgs) = family.recv_counter_names();
            assert_eq!(trace.counter_total(rbytes), fam_stats.bytes);
            assert_eq!(trace.counter_total(rmsgs), fam_stats.msgs);
        }
        let by_family = trace.sent_bytes_by_family();
        let total: u64 = by_family.iter().map(|(_, b)| b).sum();
        assert_eq!(total, stats.total_bytes);
        // The export is loadable (structurally valid) end to end.
        bagualu_trace::chrome::validate_chrome_json(&trace.to_chrome_json())
            .expect("chrome export valid");
        assert_eq!(trace.total_dropped(), 0, "default capacity must not wrap");
    }

    #[test]
    fn ft_trace_records_checkpoints_and_recovery() {
        let cfg = TrainConfig {
            steps: 10,
            ..Default::default()
        };
        let dir = ft_tmpdir("trace");
        let ft = FtConfig {
            plan: FaultPlan::new(7).crash(1, 6),
            ckpt_every: 4,
            heartbeat_ms: 200,
            ..FtConfig::new(&dir)
        };
        let r = Trainer::new(TrainConfig { trace: true, ..cfg }).run_ft(&ft);
        assert_eq!(r.restarts, 1);
        let trace = r.trace.as_ref().expect("trace requested");
        // Driver lane: one recovery span, one restart counted.
        let driver = trace.lane(DRIVER_LANE).expect("driver lane recorded");
        assert_eq!(driver.span_count(names::RECOVERY), 1);
        assert_eq!(driver.counter_total(names::RESTARTS), 1);
        assert!(driver.span_total_ns(names::RECOVERY) > 0);
        // Rank lanes span both attempts and stay balanced; checkpoints
        // were recorded (steps 4 and 8 on each attempt's surviving ranks).
        for rank in 0..cfg.nranks {
            let lane = trace.lane(rank).expect("rank lane");
            lane.check_balanced()
                .expect("balanced across restart attempts");
            assert!(lane.span_count(names::CHECKPOINT) >= 2);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    fn ft_tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bagualu-ft-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn ft_run_with_empty_plan_matches_plain_run() {
        let cfg = TrainConfig {
            steps: 8,
            ..Default::default()
        };
        let plain = Trainer::new(cfg).run();
        let dir = ft_tmpdir("noop");
        let ft = FtConfig {
            ckpt_every: 0,
            ..FtConfig::new(&dir)
        };
        let fault_free = Trainer::new(cfg).run_ft(&ft);
        assert_eq!(fault_free.restarts, 0);
        assert_eq!(fault_free.lost_steps, 0);
        assert_eq!(plain.loss_curve, fault_free.loss_curve);
        assert_eq!(plain.eval_curve, fault_free.eval_curve);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_recovers_from_checkpoint_and_matches_reference() {
        let cfg = TrainConfig {
            steps: 10,
            ..Default::default()
        };
        let dir = ft_tmpdir("crash");

        // Rank 1 crashes at step 6; checkpoints land at steps 4 and 8.
        let ft = FtConfig {
            plan: FaultPlan::new(7).crash(1, 6),
            ckpt_every: 4,
            heartbeat_ms: 200,
            ..FtConfig::new(&dir)
        };
        let faulted = Trainer::new(cfg).run_ft(&ft);
        assert_eq!(faulted.restarts, 1, "one crash → one restart");
        assert_eq!(faulted.lost_steps, 2, "crash at 6, restored from 4");
        assert!(faulted.recovery_time_s > 0.0);
        assert_eq!(faulted.loss_curve.len(), 10);
        assert!(faulted.loss_curve.iter().all(|l| l.is_finite()));

        // Reference: a fault-free run resumed from the same step-4
        // checkpoint must produce bit-identical steps 4..10 — recovery adds
        // nothing beyond what restart-from-checkpoint itself does.
        let reference = Trainer::new(cfg).run_ft(&FtConfig {
            ckpt_every: 0,
            resume_step: 4,
            ..FtConfig::new(&dir)
        });
        assert_eq!(reference.restarts, 0);
        assert_eq!(faulted.loss_curve[4..], reference.loss_curve[4..]);
        assert_eq!(faulted.final_loss(), reference.final_loss());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn crash_before_any_checkpoint_restarts_from_scratch() {
        let cfg = TrainConfig {
            steps: 6,
            ..Default::default()
        };
        let dir = ft_tmpdir("scratch");
        let ft = FtConfig {
            plan: FaultPlan::new(3).crash(0, 2),
            ckpt_every: 0, // never checkpoint: recovery = full re-run
            heartbeat_ms: 200,
            ..FtConfig::new(&dir)
        };
        let r = Trainer::new(cfg).run_ft(&ft);
        assert_eq!(r.restarts, 1);
        assert_eq!(r.lost_steps, 2, "steps 0 and 1 were re-executed");
        // The re-run from scratch is deterministic, so the curve matches a
        // plain fault-free run exactly.
        let plain = Trainer::new(cfg).run();
        assert_eq!(r.loss_curve, plain.loss_curve);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "giving up after")]
    fn repeated_crashes_exhaust_max_restarts() {
        let cfg = TrainConfig {
            steps: 6,
            ..Default::default()
        };
        let dir = ft_tmpdir("giveup");
        let ft = FtConfig {
            plan: FaultPlan::new(5).crash(0, 1).crash(0, 2).crash(0, 3),
            ckpt_every: 0,
            max_restarts: 2,
            heartbeat_ms: 200,
            ..FtConfig::new(&dir)
        };
        Trainer::new(cfg).run_ft(&ft);
    }

    #[test]
    fn schedule_is_applied() {
        use bagualu_optim::schedule::LrSchedule;
        // With a zero-lr constant schedule nothing can learn…
        let frozen = Trainer::new(TrainConfig {
            steps: 10,
            schedule: Some(LrSchedule::Constant(0.0)),
            ..Default::default()
        })
        .run();
        // Batches differ per step, so the loss fluctuates — but with frozen
        // weights it must stay near the random-init level ln(vocab) ≈ 4.16.
        assert!(
            frozen.loss_curve.iter().all(|&l| l > 3.5),
            "frozen model learned: {:?}",
            frozen.loss_curve
        );
        // …while a warmup-cosine schedule trains normally.
        let trained = Trainer::new(TrainConfig {
            steps: 40,
            schedule: Some(LrSchedule::WarmupCosine {
                peak: 2e-2,
                warmup: 5,
                total: 40,
                floor: 1e-3,
            }),
            ..Default::default()
        })
        .run();
        assert!(trained.final_loss() < trained.loss_curve[0] * 0.8);
    }

    /// Loss bits of `TrainConfig { steps: 8, nranks: 4, ..Default }`
    /// captured on the commit *before* the placement refactor. The default
    /// round-robin policy must keep reproducing them bit for bit: the
    /// refactor moved the round-robin expert↔rank arithmetic behind
    /// [`ExpertPlacement`]
    /// without changing a single operation on the default path.
    const PIN_LOSS_BITS: [u32; 8] = [
        0x408e3732, 0x408c4066, 0x408da970, 0x4083e0ba, 0x408334ec, 0x407d9ced, 0x4075d910,
        0x40700852,
    ];
    /// Aux-loss bits of the same pre-refactor run (see [`PIN_LOSS_BITS`]).
    const PIN_AUX_BITS: [u32; 8] = [
        0x3cb2accb, 0x3c7c26ba, 0x3c90ffee, 0x3c9d6acb, 0x3c6a3402, 0x3c595328, 0x3c41c2c4,
        0x3c609b2c,
    ];

    #[test]
    fn round_robin_training_is_pinned_bit_identical_to_pre_refactor() {
        let r = Trainer::new(TrainConfig {
            steps: 8,
            nranks: 4,
            ..Default::default()
        })
        .run();
        assert_eq!(r.placement, ExpertPlacement::RoundRobin);
        let loss: Vec<u32> = r.loss_curve.iter().map(|l| l.to_bits()).collect();
        let aux: Vec<u32> = r.aux_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(loss, PIN_LOSS_BITS, "loss curve drifted from the pin");
        assert_eq!(aux, PIN_AUX_BITS, "aux curve drifted from the pin");
    }

    #[test]
    fn placement_policies_reproduce_the_round_robin_curves() {
        // Placement is pure data movement: every expert still sees exactly
        // the same rows in the same (source rank, position) order no matter
        // which rank hosts it, so all three policies must land on the
        // pinned round-robin bits exactly.
        for placement in [
            ExpertPlacement::Block,
            ExpertPlacement::Supernode { supernode_size: 2 },
        ] {
            let r = Trainer::new(TrainConfig {
                steps: 8,
                nranks: 4,
                placement,
                ..Default::default()
            })
            .run();
            assert_eq!(r.placement, placement);
            let loss: Vec<u32> = r.loss_curve.iter().map(|l| l.to_bits()).collect();
            let aux: Vec<u32> = r.aux_curve.iter().map(|l| l.to_bits()).collect();
            assert_eq!(loss, PIN_LOSS_BITS, "{placement}: loss curve differs");
            assert_eq!(aux, PIN_AUX_BITS, "{placement}: aux curve differs");
        }
    }

    #[test]
    fn tiled_compute_reproduces_the_pinned_curves() {
        // The tiled backend reorders *which* element is computed when,
        // never the additions within one element — so an entire training
        // run must land on the same pre-refactor bits as Reference.
        let r = Trainer::new(TrainConfig {
            steps: 8,
            nranks: 4,
            compute: ComputeBackend::Tiled,
            ..Default::default()
        })
        .run();
        assert_eq!(r.compute, ComputeBackend::Tiled);
        let loss: Vec<u32> = r.loss_curve.iter().map(|l| l.to_bits()).collect();
        let aux: Vec<u32> = r.aux_curve.iter().map(|l| l.to_bits()).collect();
        assert_eq!(loss, PIN_LOSS_BITS, "tiled: loss curve differs");
        assert_eq!(aux, PIN_AUX_BITS, "tiled: aux curve differs");
    }

    #[test]
    fn half_compute_bf16_trains_within_the_mixed_precision_band() {
        // End-to-end 16-bit *compute*: every GEMM operand is stored and
        // multiplied in bf16 with f32 accumulation. Same acceptance band as
        // the 16-bit wire (E24): converge, and land within 1% relative /
        // 0.02 absolute of the f32 run's final loss.
        let base = TrainConfig {
            steps: 40,
            lr: 2e-2,
            nranks: 4,
            ..Default::default()
        };
        let exact = Trainer::new(base).run();
        let half = Trainer::new(TrainConfig {
            compute: ComputeBackend::Half(DType::BF16),
            ..base
        })
        .run();
        assert_eq!(half.compute, ComputeBackend::Half(DType::BF16));
        assert!(half.final_loss() < half.loss_curve[0], "did not converge");
        let (a, b) = (exact.final_loss(), half.final_loss());
        assert!(
            (a - b).abs() <= (0.01 * a.abs()).max(0.02),
            "bf16 compute degraded final loss: f32={a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid compute backend")]
    fn half_f32_compute_is_rejected_at_construction() {
        Trainer::new(TrainConfig {
            compute: ComputeBackend::Half(DType::F32),
            ..Default::default()
        });
    }

    #[test]
    fn supernode_placement_size_is_inferred_from_hierarchical_a2a() {
        let r = Trainer::new(TrainConfig {
            steps: 4,
            nranks: 4,
            a2a: A2aKind::Hierarchical { supernode_size: 2 },
            placement: ExpertPlacement::Supernode { supernode_size: 0 },
            ..Default::default()
        })
        .run();
        assert_eq!(
            r.placement,
            ExpertPlacement::Supernode { supernode_size: 2 }
        );
        assert!(r.final_loss().is_finite());
    }

    #[test]
    #[should_panic(expected = "needs an explicit size")]
    fn supernode_placement_without_a_size_source_is_rejected() {
        Trainer::new(TrainConfig {
            nranks: 4,
            placement: ExpertPlacement::Supernode { supernode_size: 0 },
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "invalid a2a configuration")]
    fn zero_supernode_a2a_is_rejected_at_construction() {
        Trainer::new(TrainConfig {
            nranks: 4,
            a2a: A2aKind::Hierarchical { supernode_size: 0 },
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "exceeds world size")]
    fn oversized_supernode_placement_is_rejected() {
        Trainer::new(TrainConfig {
            nranks: 2,
            placement: ExpertPlacement::Supernode { supernode_size: 4 },
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_supernode_placement_is_rejected() {
        Trainer::new(TrainConfig {
            nranks: 4,
            placement: ExpertPlacement::Supernode { supernode_size: 3 },
            ..Default::default()
        });
    }

    #[test]
    fn locality_bias_raises_the_measured_intra_supernode_fraction() {
        // With a supernode-aware placement the gate's locality bonus should
        // steer tokens toward experts hosted inside the sender's supernode,
        // raising the measured share of a2a bytes that stay local. The
        // pairwise transport keeps the wire classification equal to the
        // logical token locality.
        let base = TrainConfig {
            steps: 8,
            nranks: 4,
            placement: ExpertPlacement::Supernode { supernode_size: 2 },
            ..Default::default()
        };
        let unbiased = Trainer::new(base).run();
        let biased = Trainer::new(TrainConfig {
            locality_bias: 8.0,
            ..base
        })
        .run();
        assert!(biased.final_loss().is_finite());
        let f0 = unbiased
            .comm_stats
            .as_ref()
            .and_then(|s| s.a2a_local_fraction())
            .expect("supernode accounting armed");
        let f1 = biased
            .comm_stats
            .as_ref()
            .and_then(|s| s.a2a_local_fraction())
            .expect("supernode accounting armed");
        assert!(
            f1 > f0,
            "locality bias did not raise the local fraction: {f1} vs {f0}"
        );
    }

    #[test]
    #[should_panic(expected = "placement mismatch")]
    fn resuming_under_a_different_placement_is_a_hard_error() {
        let dir = ft_tmpdir("placement-mismatch");
        let cfg = TrainConfig {
            steps: 8,
            ..Default::default()
        };
        // Write a step-4 checkpoint under the default round-robin mapping…
        Trainer::new(cfg).run_ft(&FtConfig {
            ckpt_every: 4,
            ..FtConfig::new(&dir)
        });
        // …then try to resume it under block placement. The experts would
        // land on the wrong ranks, so this must die loudly instead.
        let _ = Trainer::new(TrainConfig {
            placement: ExpertPlacement::Block,
            ..cfg
        })
        .run_ft(&FtConfig {
            ckpt_every: 0,
            resume_step: 4,
            ..FtConfig::new(&dir)
        });
    }

    #[test]
    #[should_panic(expected = "unreadable")]
    fn garbled_manifest_is_a_hard_error_not_a_silent_fallback() {
        // "No manifest yet" is a legitimate state (restart from scratch);
        // a manifest that exists but cannot be parsed is not — silently
        // falling back would replay from the wrong step.
        let dir = ft_tmpdir("garbled-manifest");
        std::fs::write(dir.join("MANIFEST"), "not-a-step\n").unwrap();
        let cfg = TrainConfig {
            steps: 6,
            ..Default::default()
        };
        let _ = Trainer::new(cfg).run_ft(&FtConfig {
            plan: FaultPlan::new(3).crash(0, 2),
            ckpt_every: 0,
            heartbeat_ms: 200,
            ..FtConfig::new(&dir)
        });
    }

    #[test]
    fn elastic_resize_continues_on_survivors_pinned_to_a_fresh_shrunk_run() {
        // A crash under `elastic` shrinks the world to the survivors
        // instead of restoring at full width. The shrunk continuation must
        // be bit-identical to a fresh (R−1)-rank run restored from the very
        // same checkpoint — elasticity adds nothing beyond the re-shard.
        for zero in [false, true] {
            let dir = ft_tmpdir(if zero { "elastic-zero" } else { "elastic" });
            let cfg = TrainConfig {
                steps: 12,
                nranks: 3,
                model: ModelConfig {
                    n_experts: 6,
                    ..ModelConfig::tiny()
                },
                zero_optimizer: zero,
                clip: if zero { None } else { Some(1.0) },
                ..Default::default()
            };
            let r = Trainer::new(TrainConfig { trace: true, ..cfg }).run_ft(&FtConfig {
                plan: FaultPlan::new(11).crash(2, 6),
                ckpt_every: 4,
                heartbeat_ms: 200,
                elastic: true,
                ..FtConfig::new(&dir)
            });
            assert_eq!(r.restarts, 1, "one crash → one restart");
            assert_eq!(r.resizes, 1, "the restart shrank the world");
            assert_eq!(r.lost_steps, 2, "crash at 6, restored from 4");
            assert_eq!(r.loss_curve.len(), 12);
            assert!(r.loss_curve.iter().all(|l| l.is_finite()));
            let driver = r
                .trace
                .as_ref()
                .unwrap()
                .lane(DRIVER_LANE)
                .expect("driver lane");
            assert_eq!(driver.counter_total(names::FT_RESIZES), 1);
            assert_eq!(driver.counter_total(names::RESTARTS), 1);

            // The shrunk world checkpoints under its own layout: step 8's
            // record must say "6 experts on 2 ranks", not echo the old world.
            let meta = crate::checkpoint::read_placement(dir.join("step8").join("rank0.bglu"))
                .unwrap()
                .expect("placement record present");
            assert_eq!(meta.nranks, 2);
            assert_eq!(meta.n_experts, 6);

            // Reference: fresh 2-rank run restored from the same step-4
            // checkpoint (elastic authorizes the cross-width re-shard).
            let fresh = Trainer::new(TrainConfig { nranks: 2, ..cfg }).run_ft(&FtConfig {
                ckpt_every: 0,
                resume_step: 4,
                elastic: true,
                ..FtConfig::new(&dir)
            });
            assert_eq!(fresh.restarts, 0);
            assert_eq!(
                r.loss_curve[4..],
                fresh.loss_curve[4..],
                "zero={zero}: shrunk continuation diverged from the fresh 2-rank run"
            );
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn straggler_migration_sheds_expert_load_and_preserves_semantics() {
        // Rank 1 is slowed for the whole run; the detector flags it from
        // the all-reduced send-occupancy deltas, and at the next checkpoint
        // boundary the driver re-places experts under `Shed { victim: 1 }`.
        //
        // `clip: None` because global grad-norm clipping sums squared
        // gradients per *rank* before the all-reduce: an unbalanced layout
        // regroups that sum, which is a reassociation at rounding level —
        // the one place placement is not pure data movement.
        let dir = ft_tmpdir("straggler");
        let cfg = TrainConfig {
            steps: 12,
            clip: None,
            ..Default::default()
        };
        let r = Trainer::new(TrainConfig { trace: true, ..cfg }).run_ft(&FtConfig {
            plan: FaultPlan::new(17).slow_rank(1, 0, 12, 500),
            ckpt_every: 4,
            heartbeat_ms: 500,
            straggler_factor: Some(1.5),
            straggler_window: 2,
            ..FtConfig::new(&dir)
        });
        assert_eq!(r.migrations, 1, "one flag → one migration");
        assert_eq!(r.restarts, 0, "migration is planned, not a failure");
        assert_eq!(r.lost_steps, 0);
        assert_eq!(r.placement, ExpertPlacement::Shed { victim: 1 });

        // The flagged rank's expert load measurably dropped (4 experts on
        // 2 ranks: round-robin hosts 2 on rank 1, Shed keeps 1 there).
        let e = cfg.model.n_experts;
        let before = ExpertPlacement::RoundRobin.local_count(1, e, cfg.nranks);
        let after = r.placement.local_count(1, e, cfg.nranks);
        assert!(
            after < before,
            "victim still hosts {after} of {e} experts (was {before})"
        );

        // Counters: the flag event once (rank 0's lane), the migration once
        // (driver lane), and no elastic resize happened.
        let trace = r.trace.as_ref().unwrap();
        assert_eq!(
            trace
                .lane(0)
                .unwrap()
                .counter_total(names::STRAGGLER_FLAGGED),
            1
        );
        let driver = trace.lane(DRIVER_LANE).expect("driver lane");
        assert_eq!(driver.counter_total(names::STRAGGLER_MIGRATIONS), 1);
        assert_eq!(driver.counter_total(names::FT_RESIZES), 0);

        // The post-migration checkpoint's placement record is consistent
        // with the new layout.
        let meta = crate::checkpoint::read_placement(dir.join("step8").join("rank0.bglu"))
            .unwrap()
            .expect("placement record present");
        assert_eq!(meta.placement, ExpertPlacement::Shed { victim: 1 });
        assert_eq!(meta.nranks, cfg.nranks);

        // Degradation is semantics-invisible. Steps 0..4 ran round-robin
        // with the detector's extra all-reduce and the injected slowdown:
        // bit-identical to a plain run. Steps 4.. ran the Shed layout from
        // the restored checkpoint: bit-identical to a fault-free run
        // resumed from the same checkpoint (placement is pure data
        // movement; the optimizer restarts lazily on any restore).
        let plain = Trainer::new(cfg).run();
        assert_eq!(r.loss_curve[..4], plain.loss_curve[..4]);
        let reference = Trainer::new(cfg).run_ft(&FtConfig {
            ckpt_every: 0,
            resume_step: 4,
            ..FtConfig::new(&dir)
        });
        assert_eq!(
            r.loss_curve[4..],
            reference.loss_curve[4..],
            "migration changed the training computation"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
