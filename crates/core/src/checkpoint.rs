//! Binary checkpointing, monolithic and sharded.
//!
//! Brain-scale model state cannot funnel through one writer; the original
//! system checkpoints each rank's shard independently (experts are already
//! disjoint per rank). Format, hand-rolled because no serde data format is
//! in the allowed dependency set:
//!
//! ```text
//! magic "BGLU" | version u32 | n_params u64
//! repeat n_params times:
//!   name_len u64 | name utf-8 | ndim u64 | dims u64 × ndim | data f32-LE × Π dims
//! ```

use bagualu_model::param::HasParams;
use bagualu_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"BGLU";
const VERSION: u32 = 1;

fn write_param(w: &mut impl Write, name: &str, value: &Tensor) -> io::Result<u64> {
    let mut written = 0u64;
    let name_bytes = name.as_bytes();
    w.write_all(&(name_bytes.len() as u64).to_le_bytes())?;
    w.write_all(name_bytes)?;
    written += 8 + name_bytes.len() as u64;
    let shape = value.shape();
    w.write_all(&(shape.len() as u64).to_le_bytes())?;
    written += 8;
    for &d in shape {
        w.write_all(&(d as u64).to_le_bytes())?;
        written += 8;
    }
    for &v in value.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    written += 4 * value.len() as u64;
    Ok(written)
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_param(r: &mut impl Read) -> io::Result<(String, Tensor)> {
    let name_len = read_u64(r)? as usize;
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name =
        String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let ndim = read_u64(r)? as usize;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u64(r)? as usize);
    }
    let n: usize = shape.iter().product();
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok((name, Tensor::from_vec(data, &shape)))
}

fn write_header(w: &mut impl Write, n_params: u64) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&n_params.to_le_bytes())?;
    Ok(())
}

fn read_header(r: &mut impl Read) -> io::Result<u64> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a BGLU checkpoint",
        ));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    let ver = u32::from_le_bytes(ver);
    if ver != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {ver}"),
        ));
    }
    read_u64(r)
}

/// Save every parameter of `model` to one file. Returns bytes written.
pub fn save_params(path: impl AsRef<Path>, model: &mut dyn HasParams) -> io::Result<u64> {
    let mut names = Vec::new();
    let mut tensors = Vec::new();
    model.visit_params(&mut |p| {
        names.push(p.name.clone());
        tensors.push(p.value.clone());
    });
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_header(&mut w, names.len() as u64)?;
    let mut total = 16u64;
    for (name, t) in names.iter().zip(&tensors) {
        total += write_param(&mut w, name, t)?;
    }
    w.flush()?;
    Ok(total)
}

/// Load parameter values by name from a single checkpoint file. Every
/// parameter of `model` must be present with a matching shape; extra
/// entries in the file are ignored (they belong to other shards' views).
pub fn load_params(path: impl AsRef<Path>, model: &mut dyn HasParams) -> io::Result<()> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let n = read_header(&mut r)?;
    let mut map = std::collections::HashMap::new();
    for _ in 0..n {
        let (name, t) = read_param(&mut r)?;
        map.insert(name, t);
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        Some(t) => missing.push(format!(
            "{}: shape {:?} vs checkpoint {:?}",
            p.name,
            p.value.shape(),
            t.shape()
        )),
        None => missing.push(format!("{}: absent from checkpoint", p.name)),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            missing.join("; "),
        ))
    }
}

/// Save `model`'s parameters split round-robin across `shards` files named
/// `shard<k>.bglu` under `dir`. Returns total bytes written. Sharding walks
/// the deterministic parameter order, so any model with the same structure
/// can reload with [`load_params_sharded`].
pub fn save_params_sharded(
    dir: impl AsRef<Path>,
    model: &mut dyn HasParams,
    shards: usize,
) -> io::Result<u64> {
    assert!(shards > 0);
    std::fs::create_dir_all(&dir)?;
    let mut names = Vec::new();
    let mut tensors = Vec::new();
    model.visit_params(&mut |p| {
        names.push(p.name.clone());
        tensors.push(p.value.clone());
    });
    let mut total = 0u64;
    for s in 0..shards {
        let idx: Vec<usize> = (s..names.len()).step_by(shards).collect();
        let path = dir.as_ref().join(format!("shard{s}.bglu"));
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        write_header(&mut w, idx.len() as u64)?;
        total += 16;
        for &i in &idx {
            total += write_param(&mut w, &names[i], &tensors[i])?;
        }
        w.flush()?;
    }
    Ok(total)
}

/// Load a model's parameters from a *set* of checkpoint files, by name.
///
/// This is the **repartitioning** path: a run checkpointed on `R` ranks
/// (one file per rank, disjoint experts + identical dense replicas) can be
/// restored onto `R'` ranks — each new rank passes every file and picks out
/// the parameters its layout owns. Duplicate names across files must agree
/// in shape (dense replicas legitimately appear in every rank's file; the
/// last occurrence wins, and replicas are identical by construction).
pub fn load_params_from_files(
    paths: &[impl AsRef<Path>],
    model: &mut dyn HasParams,
) -> io::Result<()> {
    let mut map = std::collections::HashMap::new();
    for path in paths {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        let n = read_header(&mut r)?;
        for _ in 0..n {
            let (name, t) = read_param(&mut r)?;
            map.insert(name, t);
        }
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        Some(t) => missing.push(format!(
            "{}: shape {:?} vs checkpoint {:?}",
            p.name,
            p.value.shape(),
            t.shape()
        )),
        None => missing.push(format!("{}: absent from checkpoint set", p.name)),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            missing.join("; "),
        ))
    }
}

/// Reload a sharded checkpoint written by [`save_params_sharded`].
pub fn load_params_sharded(
    dir: impl AsRef<Path>,
    model: &mut dyn HasParams,
    shards: usize,
) -> io::Result<()> {
    let mut map = std::collections::HashMap::new();
    for s in 0..shards {
        let path = dir.as_ref().join(format!("shard{s}.bglu"));
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        let n = read_header(&mut r)?;
        for _ in 0..n {
            let (name, t) = read_param(&mut r)?;
            map.insert(name, t);
        }
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        _ => missing.push(p.name.clone()),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("missing/mismatched: {}", missing.join(", ")),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::config::ModelConfig;
    use bagualu_model::transformer::Transformer;
    use bagualu_tensor::rng::Rng;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bagualu-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_restores_exact_values() {
        let dir = tmpdir("mono");
        let mut rng = Rng::seed_from(1);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        let path = dir.join("m.bglu");
        let bytes = save_params(&path, &mut a).unwrap();
        assert!(bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);

        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(2));
        load_params(&path, &mut b).unwrap();
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert!(p.value.approx_eq(&vals_a[i], 0.0), "param {i} differs");
            i += 1;
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sharded_round_trip() {
        let dir = tmpdir("shard");
        let mut rng = Rng::seed_from(3);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        save_params_sharded(&dir, &mut a, 4).unwrap();
        for s in 0..4 {
            assert!(dir.join(format!("shard{s}.bglu")).exists());
        }
        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(4));
        load_params_sharded(&dir, &mut b, 4).unwrap();
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert!(p.value.approx_eq(&vals_a[i], 0.0));
            i += 1;
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn repartitioning_across_rank_layouts() {
        use bagualu_parallel::model_dist::DistTransformer;
        use bagualu_parallel::moe_dist::A2aKind;
        let dir = tmpdir("repart");
        let cfg = ModelConfig {
            n_experts: 4,
            ..ModelConfig::tiny()
        };

        // "Run" on 2 ranks: each saves its shard to one file.
        let mut originals = Vec::new();
        let mut paths = Vec::new();
        for rank in 0..2 {
            let mut m = DistTransformer::new(cfg, 777, rank, 2, A2aKind::Pairwise);
            // Perturb so restored values are distinguishable from re-init.
            m.visit_params(&mut |p| p.value.scale(1.5));
            let path = dir.join(format!("rank{rank}.bglu"));
            save_params(&path, &mut m).unwrap();
            paths.push(path);
            originals.push(m);
        }

        // Restore onto 4 ranks: every new rank loads from the file set.
        for rank in 0..4 {
            let mut m = DistTransformer::new(cfg, 123, rank, 4, A2aKind::Pairwise);
            crate::checkpoint::load_params_from_files(&paths, &mut m).unwrap();
            // Every parameter must match the scaled originals by name.
            let mut want = std::collections::HashMap::new();
            for o in &mut originals {
                o.visit_params(&mut |p| {
                    want.insert(p.name.clone(), p.value.clone());
                });
            }
            m.visit_params(&mut |p| {
                assert!(
                    p.value.approx_eq(&want[&p.name], 0.0),
                    "rank {rank}: {} not restored",
                    p.name
                );
            });
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = tmpdir("magic");
        let path = dir.join("bad.bglu");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        let mut rng = Rng::seed_from(5);
        let mut m = Transformer::new(ModelConfig::tiny(), &mut rng);
        let err = load_params(&path, &mut m).unwrap_err();
        assert!(err.to_string().contains("not a BGLU checkpoint"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let dir = tmpdir("shape");
        let path = dir.join("m.bglu");
        let mut rng = Rng::seed_from(6);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        save_params(&path, &mut a).unwrap();
        // A model with a different d_model cannot load it.
        let other = ModelConfig {
            d_model: 16,
            n_heads: 2,
            ..ModelConfig::tiny()
        };
        let mut b = Transformer::new(other, &mut Rng::seed_from(7));
        assert!(load_params(&path, &mut b).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
