//! Binary checkpointing, monolithic and sharded.
//!
//! Brain-scale model state cannot funnel through one writer; the original
//! system checkpoints each rank's shard independently (experts are already
//! disjoint per rank). Format, hand-rolled because no serde data format is
//! in the allowed dependency set:
//!
//! ```text
//! magic "BGLU" | version u32 | n_params u64
//! repeat n_params times:
//!   name_len u64 | name utf-8 | ndim u64 | dims u64 × ndim | data f32-LE × Π dims
//!   | crc32 u32                                     (v2 only; over the record)
//! trailer "BGLT" | n_params u64                     (v2 only)
//! ```
//!
//! **Crash consistency (v2).** A checkpoint that survives a failure must
//! never decode as garbage: writes go to `<path>.tmp` and are renamed into
//! place only after an fsync, so a crash mid-write leaves the previous file
//! intact; every record carries a CRC32 so a flipped bit fails loudly; and
//! the trailer makes truncation at a record boundary detectable. Version 1
//! files (no CRCs, no trailer) still load.

use crate::runconfig::RunConfig;
use bagualu_model::param::HasParams;
use bagualu_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BGLU";
const TRAILER_MAGIC: &[u8; 4] = b"BGLT";
const VERSION: u32 = 2;

// ------------------------------------------------------------------- CRC32

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental IEEE CRC-32.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = CRC_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

// ------------------------------------------------------------------ writing

/// Serialize one parameter record (without its CRC) into bytes.
fn encode_param(name: &str, value: &Tensor) -> Vec<u8> {
    let name_bytes = name.as_bytes();
    let shape = value.shape();
    let mut buf = Vec::with_capacity(8 + name_bytes.len() + 8 + 8 * shape.len() + 4 * value.len());
    buf.extend_from_slice(&(name_bytes.len() as u64).to_le_bytes());
    buf.extend_from_slice(name_bytes);
    buf.extend_from_slice(&(shape.len() as u64).to_le_bytes());
    for &d in shape {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in value.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

fn write_param(w: &mut impl Write, name: &str, value: &Tensor) -> io::Result<u64> {
    let record = encode_param(name, value);
    let mut crc = Crc32::new();
    crc.update(&record);
    w.write_all(&record)?;
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(record.len() as u64 + 4)
}

fn write_header(w: &mut impl Write, n_params: u64) -> io::Result<u64> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&n_params.to_le_bytes())?;
    Ok(16)
}

fn write_trailer(w: &mut impl Write, n_params: u64) -> io::Result<u64> {
    w.write_all(TRAILER_MAGIC)?;
    w.write_all(&n_params.to_le_bytes())?;
    Ok(12)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".tmp");
    PathBuf::from(s)
}

/// Write a full checkpoint file atomically: serialize to `<path>.tmp`,
/// fsync, then rename over `path`. Returns bytes written.
fn write_checkpoint_atomic(path: &Path, names: &[String], tensors: &[Tensor]) -> io::Result<u64> {
    let tmp = tmp_path(path);
    let file = std::fs::File::create(&tmp)?;
    let mut w = BufWriter::new(file);
    let mut total = write_header(&mut w, names.len() as u64)?;
    for (name, t) in names.iter().zip(tensors) {
        total += write_param(&mut w, name, t)?;
    }
    total += write_trailer(&mut w, names.len() as u64)?;
    w.flush()?;
    let file = w.into_inner().map_err(|e| e.into_error())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(total)
}

// ------------------------------------------------------------------ reading

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u64(r: &mut impl Read, crc: &mut Crc32) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    crc.update(&buf);
    Ok(u64::from_le_bytes(buf))
}

/// Read one record. `limit` is the file size: every length field is checked
/// against it so a corrupted field fails cleanly instead of attempting an
/// absurd allocation. For v2, the record CRC is verified; v1 records carry
/// none, so the accumulated CRC is simply discarded.
fn read_param(r: &mut impl Read, version: u32, limit: u64) -> io::Result<(String, Tensor)> {
    let mut crc = Crc32::new();

    let name_len = read_u64(r, &mut crc)? as usize;
    if name_len as u64 > limit {
        return Err(bad(format!("name length {name_len} exceeds file size")));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    crc.update(&name);
    let name = String::from_utf8(name).map_err(|e| bad(e.to_string()))?;

    let ndim = read_u64(r, &mut crc)? as usize;
    if ndim > 64 {
        return Err(bad(format!("{name}: implausible rank {ndim}")));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(read_u64(r, &mut crc)? as usize);
    }
    let n = shape
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .ok_or_else(|| bad(format!("{name}: shape {shape:?} overflows")))?;
    let byte_len = n
        .checked_mul(4)
        .filter(|&b| b as u64 <= limit)
        .ok_or_else(|| {
            bad(format!(
                "{name}: data size for shape {shape:?} exceeds file"
            ))
        })?;
    let mut bytes = vec![0u8; byte_len];
    r.read_exact(&mut bytes)?;
    crc.update(&bytes);
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();

    if version >= 2 {
        let mut stored = [0u8; 4];
        r.read_exact(&mut stored)?;
        let stored = u32::from_le_bytes(stored);
        let computed = crc.finish();
        if stored != computed {
            return Err(bad(format!(
                "{name}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 checkpoint is corrupted"
            )));
        }
    }
    Ok((name, Tensor::from_vec(data, &shape)))
}

/// Header → `(version, n_params)`. Accepts v1 and v2.
fn read_header(r: &mut impl Read) -> io::Result<(u32, u64)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a BGLU checkpoint"));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    let ver = u32::from_le_bytes(ver);
    if ver == 0 || ver > VERSION {
        return Err(bad(format!("unsupported checkpoint version {ver}")));
    }
    let n = read_u64(r, &mut Crc32::new())?;
    Ok((ver, n))
}

fn read_trailer(r: &mut impl Read, n_params: u64) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(|_| {
        bad("truncated checkpoint: trailer missing (crash mid-write or truncation)")
    })?;
    if &magic != TRAILER_MAGIC {
        return Err(bad("corrupted checkpoint: bad trailer magic"));
    }
    let echoed = read_u64(r, &mut Crc32::new())?;
    if echoed != n_params {
        return Err(bad(format!(
            "corrupted checkpoint: trailer records {echoed} params, header {n_params}"
        )));
    }
    Ok(())
}

/// Read every `(name, tensor)` record of a checkpoint file, verifying
/// integrity (v2: per-record CRC32 + trailer; v1: structure only).
fn read_params_file(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let file = std::fs::File::open(path)?;
    let limit = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let (version, n) = read_header(&mut r)?;
    if n > limit {
        return Err(bad(format!("param count {n} exceeds file size {limit}")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(read_param(&mut r, version, limit)?);
    }
    if version >= 2 {
        read_trailer(&mut r, n)?;
    } else {
        // Genuine v1 files end exactly after the last record. Trailing
        // bytes mean this is really a v2 file whose version field was
        // corrupted into 1 — refuse rather than skip its CRCs.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(bad(
                "trailing bytes after a version-1 record set — corrupted header?",
            ));
        }
    }
    Ok(out)
}

fn collect_params(model: &mut dyn HasParams) -> (Vec<String>, Vec<Tensor>) {
    let mut names = Vec::new();
    let mut tensors = Vec::new();
    model.visit_params(&mut |p| {
        names.push(p.name.clone());
        tensors.push(p.value.clone());
    });
    (names, tensors)
}

// ------------------------------------------------------------------ public

/// Save every parameter of `model` to one file (atomically: tmp + rename).
/// Returns bytes written.
pub fn save_params(path: impl AsRef<Path>, model: &mut dyn HasParams) -> io::Result<u64> {
    let (names, tensors) = collect_params(model);
    write_checkpoint_atomic(path.as_ref(), &names, &tensors)
}

// ------------------------------------------------------- placement metadata

/// Reserved record name for the expert-placement metadata record. The name
/// can never collide with a parameter (parameter names come from layer
/// constructors and contain no underscore-only prefixes), and loaders that
/// predate placement metadata skip unknown records, so the record is
/// backward- and forward-compatible.
pub const PLACEMENT_RECORD: &str = "__placement__";

/// The expert↔rank mapping a checkpoint shard was written under. Persisted
/// so a restart under a *different* mapping fails loudly instead of
/// silently loading each expert's weights into whatever expert now happens
/// to occupy the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementMeta {
    /// The placement policy in force when the shard was written.
    pub placement: bagualu_parallel::ExpertPlacement,
    /// Global expert count of the sharded model.
    pub n_experts: usize,
    /// World size the shard set was written for.
    pub nranks: usize,
}

impl PlacementMeta {
    /// Encode as a 4-element tensor record
    /// `[policy_id, policy_param, n_experts, nranks]` (exact in `f32` — all
    /// fields are far below 2²⁴). The param field carries the supernode
    /// size for `Supernode`, the victim rank for `Shed`, 0 otherwise.
    fn encode(&self) -> Tensor {
        Tensor::from_vec(
            vec![
                self.placement.policy_id() as f32,
                self.placement.param() as f32,
                self.n_experts as f32,
                self.nranks as f32,
            ],
            &[4],
        )
    }

    fn decode(t: &Tensor) -> io::Result<PlacementMeta> {
        let v = t.as_slice();
        if v.len() != 4 {
            return Err(bad(format!(
                "malformed {PLACEMENT_RECORD} record: {} fields, want 4",
                v.len()
            )));
        }
        let placement =
            bagualu_parallel::ExpertPlacement::from_policy_id(v[0] as u32, v[1] as usize)
                .map_err(bad)?;
        Ok(PlacementMeta {
            placement,
            n_experts: v[2] as usize,
            nranks: v[3] as usize,
        })
    }
}

/// [`save_params`] plus a [`PLACEMENT_RECORD`] carrying `meta`. The record
/// rides in the same file with the same CRC/trailer protection; loaders
/// that only want parameters ignore it.
pub fn save_params_with_placement(
    path: impl AsRef<Path>,
    model: &mut dyn HasParams,
    meta: PlacementMeta,
) -> io::Result<u64> {
    let (mut names, mut tensors) = collect_params(model);
    names.push(PLACEMENT_RECORD.to_string());
    tensors.push(meta.encode());
    write_checkpoint_atomic(path.as_ref(), &names, &tensors)
}

/// Read the placement metadata of a checkpoint file. `Ok(None)` means the
/// file predates placement metadata (written by [`save_params`] or an older
/// build) — callers must then only accept the historical round-robin
/// mapping.
pub fn read_placement(path: impl AsRef<Path>) -> io::Result<Option<PlacementMeta>> {
    for (name, t) in read_params_file(path.as_ref())? {
        if name == PLACEMENT_RECORD {
            return Ok(Some(PlacementMeta::decode(&t)?));
        }
    }
    Ok(None)
}

// ------------------------------------------------------ run-config metadata

/// Reserved record name for the embedded [`RunConfig`] TOML. Like
/// [`PLACEMENT_RECORD`], the name can never collide with a parameter and
/// older loaders skip it.
pub const RUNCONFIG_RECORD: &str = "__runconfig__";

/// Encode UTF-8 text as a tensor record, one byte per element (every byte
/// value is exact in `f32`). Wasteful by 4× but reuses the checkpoint
/// format's CRC/trailer protection unchanged — config text is tiny next to
/// the parameters it rides with.
fn encode_text(text: &str) -> Tensor {
    let bytes: Vec<f32> = text.bytes().map(f32::from).collect();
    let n = bytes.len();
    Tensor::from_vec(bytes, &[n])
}

fn decode_text(record: &str, t: &Tensor) -> io::Result<String> {
    let bytes: Vec<u8> = t
        .as_slice()
        .iter()
        .map(|&v| {
            if v.fract() == 0.0 && (0.0..=255.0).contains(&v) {
                Ok(v as u8)
            } else {
                Err(bad(format!("malformed {record} record: {v} is not a byte")))
            }
        })
        .collect::<io::Result<_>>()?;
    String::from_utf8(bytes).map_err(|e| bad(format!("malformed {record} record: {e}")))
}

/// [`save_params_with_placement`] plus a [`RUNCONFIG_RECORD`] embedding the
/// run's full [`RunConfig`] as TOML, making the checkpoint self-describing:
/// `bagualu train --config` can reproduce the run that wrote it from the
/// shard alone.
pub fn save_params_with_meta(
    path: impl AsRef<Path>,
    model: &mut dyn HasParams,
    meta: PlacementMeta,
    run_config: Option<&RunConfig>,
) -> io::Result<u64> {
    let (mut names, mut tensors) = collect_params(model);
    names.push(PLACEMENT_RECORD.to_string());
    tensors.push(meta.encode());
    if let Some(rc) = run_config {
        names.push(RUNCONFIG_RECORD.to_string());
        tensors.push(encode_text(&rc.to_toml()));
    }
    write_checkpoint_atomic(path.as_ref(), &names, &tensors)
}

/// Read the embedded [`RunConfig`] of a checkpoint file. `Ok(None)` means
/// the file carries no config record (an older build, or a run whose
/// config the schema could not express).
pub fn read_run_config(path: impl AsRef<Path>) -> io::Result<Option<RunConfig>> {
    for (name, t) in read_params_file(path.as_ref())? {
        if name == RUNCONFIG_RECORD {
            let toml = decode_text(RUNCONFIG_RECORD, &t)?;
            return Ok(Some(RunConfig::from_toml(&toml).map_err(bad)?));
        }
    }
    Ok(None)
}

/// Load parameter values by name from a single checkpoint file. Every
/// parameter of `model` must be present with a matching shape; extra
/// entries in the file are ignored (they belong to other shards' views).
pub fn load_params(path: impl AsRef<Path>, model: &mut dyn HasParams) -> io::Result<()> {
    let mut map = std::collections::HashMap::new();
    for (name, t) in read_params_file(path.as_ref())? {
        map.insert(name, t);
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        Some(t) => missing.push(format!(
            "{}: shape {:?} vs checkpoint {:?}",
            p.name,
            p.value.shape(),
            t.shape()
        )),
        None => missing.push(format!("{}: absent from checkpoint", p.name)),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(bad(missing.join("; ")))
    }
}

/// Save `model`'s parameters split round-robin across `shards` files named
/// `shard<k>.bglu` under `dir`, each written atomically. Returns total
/// bytes written. Sharding walks the deterministic parameter order, so any
/// model with the same structure can reload with [`load_params_sharded`].
pub fn save_params_sharded(
    dir: impl AsRef<Path>,
    model: &mut dyn HasParams,
    shards: usize,
) -> io::Result<u64> {
    assert!(shards > 0);
    std::fs::create_dir_all(&dir)?;
    let (names, tensors) = collect_params(model);
    let mut total = 0u64;
    for s in 0..shards {
        let idx: Vec<usize> = (s..names.len()).step_by(shards).collect();
        let shard_names: Vec<String> = idx.iter().map(|&i| names[i].clone()).collect();
        let shard_tensors: Vec<Tensor> = idx.iter().map(|&i| tensors[i].clone()).collect();
        let path = dir.as_ref().join(format!("shard{s}.bglu"));
        total += write_checkpoint_atomic(&path, &shard_names, &shard_tensors)?;
    }
    Ok(total)
}

/// Load a model's parameters from a *set* of checkpoint files, by name.
///
/// This is the **repartitioning** path: a run checkpointed on `R` ranks
/// (one file per rank, disjoint experts + identical dense replicas) can be
/// restored onto `R'` ranks — each new rank passes every file and picks out
/// the parameters its layout owns. Duplicate names across files must agree
/// in shape (dense replicas legitimately appear in every rank's file; the
/// last occurrence wins, and replicas are identical by construction).
pub fn load_params_from_files(
    paths: &[impl AsRef<Path>],
    model: &mut dyn HasParams,
) -> io::Result<()> {
    let mut map = std::collections::HashMap::new();
    for path in paths {
        for (name, t) in read_params_file(path.as_ref())? {
            map.insert(name, t);
        }
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        Some(t) => missing.push(format!(
            "{}: shape {:?} vs checkpoint {:?}",
            p.name,
            p.value.shape(),
            t.shape()
        )),
        None => missing.push(format!("{}: absent from checkpoint set", p.name)),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(bad(missing.join("; ")))
    }
}

/// Reload a sharded checkpoint written by [`save_params_sharded`].
pub fn load_params_sharded(
    dir: impl AsRef<Path>,
    model: &mut dyn HasParams,
    shards: usize,
) -> io::Result<()> {
    let mut map = std::collections::HashMap::new();
    for s in 0..shards {
        let path = dir.as_ref().join(format!("shard{s}.bglu"));
        for (name, t) in read_params_file(&path)? {
            map.insert(name, t);
        }
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match map.get(&p.name) {
        Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
        _ => missing.push(p.name.clone()),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(bad(format!("missing/mismatched: {}", missing.join(", "))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::config::ModelConfig;
    use bagualu_model::transformer::Transformer;
    use bagualu_tensor::rng::Rng;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bagualu-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Replicate the version-1 writer (no CRCs, no trailer) so v1 files can
    /// be produced for the compatibility test.
    fn save_params_v1(path: &Path, model: &mut dyn HasParams) {
        let (names, tensors) = collect_params(model);
        let mut w = BufWriter::new(std::fs::File::create(path).unwrap());
        w.write_all(MAGIC).unwrap();
        w.write_all(&1u32.to_le_bytes()).unwrap();
        w.write_all(&(names.len() as u64).to_le_bytes()).unwrap();
        for (name, t) in names.iter().zip(&tensors) {
            w.write_all(&encode_param(name, t)).unwrap();
        }
        w.flush().unwrap();
    }

    #[test]
    fn round_trip_restores_exact_values() {
        let dir = tmpdir("mono");
        let mut rng = Rng::seed_from(1);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        let path = dir.join("m.bglu");
        let bytes = save_params(&path, &mut a).unwrap();
        assert!(bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        // The staging file is gone after the atomic rename.
        assert!(!tmp_path(&path).exists());

        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(2));
        load_params(&path, &mut b).unwrap();
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert!(p.value.approx_eq(&vals_a[i], 0.0), "param {i} differs");
            i += 1;
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn loads_version_1_checkpoints() {
        let dir = tmpdir("v1");
        let path = dir.join("old.bglu");
        let mut rng = Rng::seed_from(11);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        save_params_v1(&path, &mut a);

        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(12));
        load_params(&path, &mut b).unwrap();
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert!(p.value.approx_eq(&vals_a[i], 0.0), "param {i} differs");
            i += 1;
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sharded_round_trip() {
        let dir = tmpdir("shard");
        let mut rng = Rng::seed_from(3);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        save_params_sharded(&dir, &mut a, 4).unwrap();
        for s in 0..4 {
            assert!(dir.join(format!("shard{s}.bglu")).exists());
        }
        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(4));
        load_params_sharded(&dir, &mut b, 4).unwrap();
        let mut vals_a = Vec::new();
        a.visit_params(&mut |p| vals_a.push(p.value.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert!(p.value.approx_eq(&vals_a[i], 0.0));
            i += 1;
        });
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn repartitioning_across_rank_layouts() {
        use bagualu_parallel::model_dist::DistTransformer;
        use bagualu_parallel::moe_dist::A2aKind;
        let dir = tmpdir("repart");
        let cfg = ModelConfig {
            n_experts: 4,
            ..ModelConfig::tiny()
        };

        // "Run" on 2 ranks: each saves its shard to one file.
        let mut originals = Vec::new();
        let mut paths = Vec::new();
        for rank in 0..2 {
            let mut m = DistTransformer::new(cfg, 777, rank, 2, A2aKind::Pairwise);
            // Perturb so restored values are distinguishable from re-init.
            m.visit_params(&mut |p| p.value.scale(1.5));
            let path = dir.join(format!("rank{rank}.bglu"));
            save_params(&path, &mut m).unwrap();
            paths.push(path);
            originals.push(m);
        }

        // Restore onto 4 ranks: every new rank loads from the file set.
        for rank in 0..4 {
            let mut m = DistTransformer::new(cfg, 123, rank, 4, A2aKind::Pairwise);
            crate::checkpoint::load_params_from_files(&paths, &mut m).unwrap();
            // Every parameter must match the scaled originals by name.
            let mut want = std::collections::HashMap::new();
            for o in &mut originals {
                o.visit_params(&mut |p| {
                    want.insert(p.name.clone(), p.value.clone());
                });
            }
            m.visit_params(&mut |p| {
                assert!(
                    p.value.approx_eq(&want[&p.name], 0.0),
                    "rank {rank}: {} not restored",
                    p.name
                );
            });
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn placement_record_round_trips_and_is_ignored_by_load_params() {
        use bagualu_parallel::ExpertPlacement;
        let dir = tmpdir("placement");
        let path = dir.join("m.bglu");
        let mut a = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(21));
        let meta = PlacementMeta {
            placement: ExpertPlacement::Supernode { supernode_size: 2 },
            n_experts: 4,
            nranks: 4,
        };
        save_params_with_placement(&path, &mut a, meta).unwrap();
        assert_eq!(read_placement(&path).unwrap(), Some(meta));
        // Parameter loading skips the metadata record.
        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(22));
        load_params(&path, &mut b).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_checkpoint_has_no_placement_record() {
        let dir = tmpdir("placement-legacy");
        let path = dir.join("m.bglu");
        let mut a = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(23));
        save_params(&path, &mut a).unwrap();
        assert_eq!(read_placement(&path).unwrap(), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = tmpdir("magic");
        let path = dir.join("bad.bglu");
        std::fs::write(&path, b"NOPE\x02\x00\x00\x00").unwrap();
        let mut rng = Rng::seed_from(5);
        let mut m = Transformer::new(ModelConfig::tiny(), &mut rng);
        let err = load_params(&path, &mut m).unwrap_err();
        assert!(err.to_string().contains("not a BGLU checkpoint"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_future_version() {
        let dir = tmpdir("ver");
        let path = dir.join("future.bglu");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let mut m = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(5));
        let err = load_params(&path, &mut m).unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint version"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let dir = tmpdir("shape");
        let path = dir.join("m.bglu");
        let mut rng = Rng::seed_from(6);
        let mut a = Transformer::new(ModelConfig::tiny(), &mut rng);
        save_params(&path, &mut a).unwrap();
        // A model with a different d_model cannot load it.
        let other = ModelConfig {
            d_model: 16,
            n_heads: 2,
            ..ModelConfig::tiny()
        };
        let mut b = Transformer::new(other, &mut Rng::seed_from(7));
        assert!(load_params(&path, &mut b).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = tmpdir("trunc");
        let path = dir.join("m.bglu");
        let mut a = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(8));
        let bytes = save_params(&path, &mut a).unwrap();
        // Chop off the trailer (simulates a crash mid-write on a filesystem
        // without the atomic rename).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..(bytes as usize - 6)]).unwrap();
        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(9));
        assert!(load_params(&path, &mut b).is_err(), "truncation must fail");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_single_flipped_bit_in_data() {
        let dir = tmpdir("flip");
        let path = dir.join("m.bglu");
        let mut a = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(10));
        save_params(&path, &mut a).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip one bit deep inside the tensor data region.
        let mid = data.len() / 2;
        data[mid] ^= 0x10;
        std::fs::write(&path, &data).unwrap();
        let mut b = Transformer::new(ModelConfig::tiny(), &mut Rng::seed_from(9));
        let err = load_params(&path, &mut b).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "want checksum error, got: {err}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
