//! Byte-level byte-pair-encoding tokenizer.
//!
//! The synthetic tasks route integer tokens directly; this tokenizer closes
//! the loop to *text*: train merges on a corpus, encode strings into ids a
//! [`crate::model::config::ModelConfig`]-sized vocabulary can consume, and
//! decode generations back to UTF-8. Byte-level base vocabulary (256)
//! guarantees any input round-trips exactly.

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct Bpe {
    /// Merge rules in priority order: `(left_id, right_id) → new_id`.
    merges: Vec<(u32, u32)>,
    /// Byte expansion of every token id (`0..256` are single bytes).
    vocab: Vec<Vec<u8>>,
}

impl Bpe {
    /// Train on `corpus` until the vocabulary reaches `vocab_size`
    /// (≥ 256) or no pair repeats. Deterministic: ties break toward the
    /// pair that appears first in the corpus.
    pub fn train(corpus: &str, vocab_size: usize) -> Bpe {
        assert!(vocab_size >= 256, "byte-level BPE needs vocab ≥ 256");
        let mut ids: Vec<u32> = corpus.bytes().map(|b| b as u32).collect();
        let mut vocab: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        let mut merges = Vec::new();

        while vocab.len() < vocab_size {
            // Count adjacent pairs, remembering first-occurrence order.
            let mut counts: std::collections::HashMap<(u32, u32), (usize, usize)> =
                std::collections::HashMap::new();
            for (i, w) in ids.windows(2).enumerate() {
                let e = counts.entry((w[0], w[1])).or_insert((0, i));
                e.0 += 1;
            }
            let Some((&pair, &(count, _))) = counts
                .iter()
                .max_by_key(|(_, &(c, first))| (c, std::cmp::Reverse(first)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing repeats; further merges don't compress
            }
            let new_id = vocab.len() as u32;
            let mut bytes = vocab[pair.0 as usize].clone();
            bytes.extend_from_slice(&vocab[pair.1 as usize]);
            vocab.push(bytes);
            merges.push(pair);
            ids = Self::merge_pass(&ids, pair, new_id);
        }
        Bpe { merges, vocab }
    }

    fn merge_pass(ids: &[u32], pair: (u32, u32), new_id: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            if i + 1 < ids.len() && ids[i] == pair.0 && ids[i + 1] == pair.1 {
                out.push(new_id);
                i += 2;
            } else {
                out.push(ids[i]);
                i += 1;
            }
        }
        out
    }

    /// Vocabulary size (256 + learned merges).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encode text by replaying the merge rules in training order.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let mut ids: Vec<u32> = text.bytes().map(|b| b as u32).collect();
        for (rank, &pair) in self.merges.iter().enumerate() {
            let new_id = (256 + rank) as u32;
            ids = Self::merge_pass(&ids, pair, new_id);
        }
        ids.into_iter().map(|i| i as usize).collect()
    }

    /// Decode token ids back to text (lossy only if the bytes are not
    /// valid UTF-8 at token boundaries, which byte-level merges preserve
    /// for any text they were trained on round-tripping through encode).
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            bytes.extend_from_slice(&self.vocab[id]);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Compression ratio on a text: bytes per token.
    pub fn bytes_per_token(&self, text: &str) -> f64 {
        let n = self.encode(text).len();
        if n == 0 {
            0.0
        } else {
            text.len() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: &str = "the quick brown fox jumps over the lazy dog; the quick brown fox again \
         and again the quick brown fox, the the the quick quick brown";

    #[test]
    fn round_trips_exactly() {
        let bpe = Bpe::train(CORPUS, 300);
        for text in [
            CORPUS,
            "the fox",
            "completely unseen zebra text!",
            "日本語 bytes",
        ] {
            let ids = bpe.encode(text);
            assert_eq!(bpe.decode(&ids), text);
        }
    }

    #[test]
    fn training_learns_compressive_merges() {
        let bpe = Bpe::train(CORPUS, 300);
        assert!(bpe.vocab_size() > 256, "no merges learned");
        // Seen-distribution text compresses well below 1 token/byte.
        let bpt = bpe.bytes_per_token("the quick brown fox");
        assert!(bpt > 1.5, "bytes/token {bpt}");
        // Unseen random-ish text compresses less.
        let bpt_unseen = bpe.bytes_per_token("zxqj vwpk mntr");
        assert!(bpt_unseen < bpt);
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(CORPUS, 280);
        let b = Bpe::train(CORPUS, 280);
        assert_eq!(a.encode(CORPUS), b.encode(CORPUS));
        assert_eq!(a.vocab_size(), b.vocab_size());
    }

    #[test]
    fn base_vocab_needs_no_training() {
        let bpe = Bpe::train("", 256);
        assert_eq!(bpe.vocab_size(), 256);
        let ids = bpe.encode("abc");
        assert_eq!(ids, vec![97, 98, 99]);
        assert_eq!(bpe.decode(&ids), "abc");
    }

    #[test]
    fn stops_when_nothing_repeats() {
        let bpe = Bpe::train("abcdefg", 10_000);
        // Pairs all unique → no merges beyond bytes.
        assert_eq!(bpe.vocab_size(), 256);
    }

    #[test]
    fn ids_fit_model_vocab() {
        let bpe = Bpe::train(CORPUS, 300);
        let ids = bpe.encode(CORPUS);
        assert!(ids.iter().all(|&i| i < bpe.vocab_size()));
    }
}
