//! The continuous-batching engine: one rank's admission queue, in-flight
//! batch, and the unified prefill+decode step.
//!
//! # The step contract
//!
//! Every rank calls [`Engine::step`] in lockstep. A step is:
//!
//! 1. **Admit** — pop queued requests FIFO into the in-flight batch while
//!    there is batch room and the KV pool can reserve each request's
//!    worst-case block need. The first request that does not fit stays at
//!    the head of the queue (re-queued, never dropped) so admission is
//!    strictly FIFO.
//! 2. **Prefill phase** — one batched forward over the *full prompts* of
//!    everything admitted this step; each admitted sequence's first token
//!    is the argmax of its last prompt row.
//! 3. **Decode phase** — one batched forward advancing every in-flight
//!    sequence by exactly one token.
//! 4. **Detach** — finished sequences leave the batch immediately; their
//!    KV blocks return to the free list and their [`Response`] is queued
//!    for the caller. Nothing drains: remaining sequences keep decoding
//!    and freed blocks admit the next request at the next boundary.
//!
//! Both phases execute **unconditionally**, even with zero rows, because
//! the expert-parallel MoE layers inside are collectives: every rank must
//! make the same number of all-to-all calls. A rank with no local
//! requests steps with empty batches and carries its share of remote
//! experts.
//!
//! # Bit-identity
//!
//! Decoding is greedy argmax over `forward_infer` logits, and every
//! per-row operation in [`decode_step`] is
//! row-independent (inference routing is dropless, so no capacity
//! coupling). A sequence therefore produces **bit-identical tokens** no
//! matter which sequences share its batch, when they arrive, or when they
//! finish — continuous batching is an invisible scheduling optimization.
//! The serving integration tests pin this against
//! `Transformer::generate_cached`.

use crate::kv::{KvBlockPool, SeqKv};
use crate::request::{Request, Response, SubmitError};
use bagualu_comm::collectives;
use bagualu_comm::Communicator;
use bagualu_model::attention::KvStore;
use bagualu_parallel::decode::KvProvider;
use bagualu_parallel::{decode_step, DistTransformer};
use bagualu_tensor::Tensor;
use bagualu_trace::{self as trace, names};
use std::collections::VecDeque;
use std::time::Instant;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum in-flight sequences per rank.
    pub max_batch: usize,
    /// KV pool size in blocks.
    pub kv_blocks: usize,
    /// Positions per KV block.
    pub block_tokens: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_batch: 8,
            kv_blocks: 64,
            block_tokens: 4,
        }
    }
}

/// One in-flight sequence.
#[derive(Debug)]
struct Active {
    id: u64,
    /// Prompt followed by the tokens generated so far.
    tokens: Vec<usize>,
    prompt_len: usize,
    max_new: usize,
    kv: SeqKv,
    arrival: Instant,
    admitted: Instant,
    prefill_done: Option<Instant>,
}

impl Active {
    fn generated(&self) -> usize {
        self.tokens.len() - self.prompt_len
    }

    fn done(&self) -> bool {
        self.generated() >= self.max_new
    }
}

/// Bridges the in-flight batch's paged KV state to the
/// [`KvProvider`] interface [`decode_step`] consumes: sequence ids are
/// indices into the active batch, and each (row, layer) access opens an
/// ephemeral paged view at the row's position.
struct ActiveProvider<'a> {
    pool: &'a mut KvBlockPool,
    active: &'a [Active],
}

impl KvProvider for ActiveProvider<'_> {
    fn with_store(
        &mut self,
        seq: usize,
        layer: usize,
        pos: usize,
        f: &mut dyn FnMut(&mut dyn KvStore) -> Tensor,
    ) -> Tensor {
        let mut store = self.pool.store(&self.active[seq].kv, layer, pos);
        f(&mut store)
    }
}

/// One rank's serving engine: queue, KV pool, in-flight batch, and the
/// distributed model replica (expert-parallel over the communicator passed
/// to [`Engine::step`]).
pub struct Engine {
    model: DistTransformer,
    pool: KvBlockPool,
    cfg: EngineConfig,
    queue: VecDeque<Request>,
    active: Vec<Active>,
    finished: Vec<Response>,
    steps: u64,
}

impl Engine {
    /// Wrap a distributed model replica with a fresh queue and KV pool.
    pub fn new(model: DistTransformer, cfg: EngineConfig) -> Engine {
        assert!(
            cfg.max_batch > 0,
            "engine needs room for at least one sequence"
        );
        let pool = KvBlockPool::new(
            cfg.kv_blocks,
            cfg.block_tokens,
            model.cfg.n_layers,
            model.cfg.d_model,
        );
        Engine {
            model,
            pool,
            cfg,
            queue: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            steps: 0,
        }
    }

    /// Queue a request, or reject it permanently if it can never run
    /// (empty prompt, zero budget, longer than `max_seq`, or a KV
    /// footprint larger than the whole pool). Transient pool pressure is
    /// *not* a submit error — the request waits in the queue.
    pub fn submit(&mut self, req: Request) -> Result<(), SubmitError> {
        if req.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        if req.max_new == 0 {
            return Err(SubmitError::NothingToGenerate);
        }
        let needed = req.prompt.len() + req.max_new;
        if needed > self.model.cfg.max_seq {
            return Err(SubmitError::ExceedsMaxSeq {
                needed,
                max_seq: self.model.cfg.max_seq,
            });
        }
        let blocks = self.pool.blocks_for(needed - 1);
        if blocks > self.pool.n_blocks() {
            return Err(SubmitError::ExceedsPool {
                needed: blocks,
                total: self.pool.n_blocks(),
            });
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Queued plus in-flight requests on this rank — the quantity ranks
    /// all-reduce to agree whether anyone still has work.
    pub fn local_work(&self) -> u64 {
        (self.queue.len() + self.active.len()) as u64
    }

    /// Engine steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Requests currently queued (not yet admitted).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently in the in-flight batch.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// The KV pool (observability and tests).
    pub fn pool(&self) -> &KvBlockPool {
        &self.pool
    }

    /// Drain completed responses accumulated since the last call.
    pub fn take_finished(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.finished)
    }

    /// One lockstep engine step: admit, prefill, decode, detach. Every
    /// rank of the communicator must call this the same number of times.
    pub fn step<C: Communicator>(&mut self, comm: &C) {
        self.steps += 1;

        // (1) Admission: FIFO while the batch and the pool have room. A
        // head-of-line request that does not fit blocks everything behind
        // it — skipping ahead would let small requests starve a large one.
        let mut newly: Vec<usize> = Vec::new();
        while self.active.len() < self.cfg.max_batch {
            let Some(req) = self.queue.front() else { break };
            let blocks_needed = self.pool.blocks_for(req.prompt.len() + req.max_new - 1);
            match self.pool.try_reserve(blocks_needed) {
                Ok(blocks) => {
                    let req = self.queue.pop_front().expect("front() just succeeded");
                    let now = Instant::now();
                    trace::count(
                        names::SERVE_QUEUE_WAIT_NS,
                        now.duration_since(req.arrival).as_nanos() as u64,
                    );
                    trace::count(names::SERVE_KV_BLOCKS_USED, blocks_needed as u64);
                    newly.push(self.active.len());
                    self.active.push(Active {
                        id: req.id,
                        prompt_len: req.prompt.len(),
                        tokens: req.prompt,
                        max_new: req.max_new,
                        kv: SeqKv::new(blocks),
                        arrival: req.arrival,
                        admitted: now,
                        prefill_done: None,
                    });
                }
                Err(_) => {
                    trace::count(names::SERVE_REQUEUED, 1);
                    break;
                }
            }
        }

        // (2) Prefill phase: every admitted prompt in full, multi-row per
        // sequence. Collective — runs even with zero rows.
        {
            let _g = trace::span(names::SERVE_PREFILL);
            let mut tokens = Vec::new();
            let mut positions = Vec::new();
            let mut seqs = Vec::new();
            for &i in &newly {
                let a = &self.active[i];
                for (p, &t) in a.tokens.iter().enumerate() {
                    tokens.push(t);
                    positions.push(p);
                    seqs.push(i);
                }
            }
            trace::count(names::SERVE_PREFILL_TOKENS, tokens.len() as u64);
            let logits = self.phase_forward(&tokens, &positions, &seqs, comm);
            let picks = logits.argmax_rows();
            let now = Instant::now();
            let mut row = 0usize;
            for &i in &newly {
                let a = &mut self.active[i];
                a.kv.len = a.prompt_len;
                // The last prompt row predicts the first generated token.
                a.tokens.push(picks[row + a.prompt_len - 1]);
                a.prefill_done = Some(now);
                row += a.prompt_len;
            }
        }

        // (3) Sequences with max_new == 1 are already done.
        self.detach();

        // (4) Decode phase: one row per in-flight sequence. Collective —
        // runs even with zero rows.
        {
            let _g = trace::span(names::SERVE_DECODE_STEP);
            let mut tokens = Vec::new();
            let mut positions = Vec::new();
            let mut seqs = Vec::new();
            for (i, a) in self.active.iter().enumerate() {
                tokens.push(*a.tokens.last().expect("prompts are non-empty"));
                positions.push(a.kv.len);
                seqs.push(i);
            }
            trace::count(names::SERVE_BATCH_OCCUPANCY, seqs.len() as u64);
            trace::count(names::SERVE_DECODE_TOKENS, seqs.len() as u64);
            let logits = self.phase_forward(&tokens, &positions, &seqs, comm);
            let picks = logits.argmax_rows();
            for (r, &i) in seqs.iter().enumerate() {
                let a = &mut self.active[i];
                a.kv.len += 1;
                a.tokens.push(picks[r]);
            }
        }

        // (5) Finished sequences exit without draining the batch.
        self.detach();
    }

    /// Drive steps until no rank has queued or in-flight work. Safe on any
    /// world size: the loop condition is an all-reduce, so every rank
    /// executes the same number of steps.
    pub fn run_to_completion<C: Communicator>(&mut self, comm: &C) {
        loop {
            let total = collectives::allreduce_u64(comm, vec![self.local_work()])[0];
            if total == 0 {
                break;
            }
            self.step(comm);
        }
    }

    /// One batched forward through the shared decode path.
    fn phase_forward<C: Communicator>(
        &mut self,
        tokens: &[usize],
        positions: &[usize],
        seqs: &[usize],
        comm: &C,
    ) -> Tensor {
        let Engine {
            model,
            pool,
            active,
            ..
        } = self;
        let mut provider = ActiveProvider { pool, active };
        decode_step(model, tokens, positions, seqs, &mut provider, comm)
    }

    /// Move finished sequences out of the batch, returning their blocks
    /// and recording their [`Response`]s. Order-preserving so remaining
    /// batch indices stay FIFO.
    fn detach(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.active.len() {
            if !self.active[i].done() {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            trace::count(names::SERVE_KV_BLOCKS_FREE, a.kv.blocks.len() as u64);
            self.pool.release(a.kv.blocks);
            trace::count(names::SERVE_COMPLETED, 1);
            let prefill_done = a.prefill_done.expect("finished sequences were prefilled");
            self.finished.push(Response {
                id: a.id,
                tokens: a.tokens,
                prompt_len: a.prompt_len,
                queue_wait_ns: a.admitted.duration_since(a.arrival).as_nanos() as u64,
                prefill_ns: prefill_done.duration_since(a.admitted).as_nanos() as u64,
                decode_ns: now.duration_since(prefill_done).as_nanos() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_comm::harness::run_ranks_map;
    use bagualu_model::config::ModelConfig;
    use bagualu_model::transformer::Transformer;
    use bagualu_parallel::A2aKind;
    use bagualu_tensor::rng::Rng;

    fn engine_cfg() -> EngineConfig {
        EngineConfig {
            max_batch: 4,
            kv_blocks: 32,
            block_tokens: 4,
        }
    }

    #[test]
    fn engine_matches_generate_cached() {
        // tiny() uses a deterministic Top2 gate, so inference routing in
        // the engine matches the single-model oracle exactly.
        let cfg = ModelConfig::tiny();
        let prompts: Vec<Vec<usize>> = vec![vec![3, 7, 1], vec![5], vec![2, 2, 9, 4]];
        let max_new = 6usize;

        let mut rng = Rng::seed_from(97);
        let mut oracle = Transformer::new(cfg, &mut rng);
        let want: Vec<Vec<usize>> = prompts
            .iter()
            .map(|p| oracle.generate_cached(p, max_new))
            .collect();

        let got = run_ranks_map(1, |comm| {
            let mut rng = Rng::seed_from(97);
            let local = Transformer::new(cfg, &mut rng);
            let model = DistTransformer::from_local(&local, 0, 1, A2aKind::Pairwise);
            let mut eng = Engine::new(model, engine_cfg());
            for (i, p) in prompts.iter().enumerate() {
                eng.submit(Request::new(i as u64, p.clone(), max_new))
                    .unwrap();
            }
            eng.run_to_completion(&comm);
            let mut done = eng.take_finished();
            done.sort_by_key(|r| r.id);
            assert_eq!(
                eng.pool().used_blocks(),
                0,
                "detach must release every block"
            );
            done.into_iter().map(|r| r.tokens).collect::<Vec<_>>()
        });
        assert_eq!(got[0], want, "continuous batching changed generated tokens");
    }

    #[test]
    fn submit_rejects_impossible_requests() {
        let cfg = ModelConfig::tiny();
        run_ranks_map(1, |comm| {
            let model = DistTransformer::new(cfg, 11, 0, 1, A2aKind::Pairwise);
            let mut eng = Engine::new(
                model,
                EngineConfig {
                    max_batch: 2,
                    kv_blocks: 2,
                    block_tokens: 2,
                },
            );
            assert_eq!(
                eng.submit(Request::new(0, vec![], 4)),
                Err(SubmitError::EmptyPrompt)
            );
            assert_eq!(
                eng.submit(Request::new(1, vec![3], 0)),
                Err(SubmitError::NothingToGenerate)
            );
            assert_eq!(
                eng.submit(Request::new(2, vec![1; 12], 8)),
                Err(SubmitError::ExceedsMaxSeq {
                    needed: 20,
                    max_seq: cfg.max_seq
                })
            );
            // 4 + 4 − 1 = 7 positions → 4 blocks of 2, but the pool holds 2.
            assert_eq!(
                eng.submit(Request::new(3, vec![1; 4], 4)),
                Err(SubmitError::ExceedsPool {
                    needed: 4,
                    total: 2
                })
            );
            // A feasible request still goes through and completes.
            eng.submit(Request::new(4, vec![3, 5], 2)).unwrap();
            eng.run_to_completion(&comm);
            assert_eq!(eng.take_finished().len(), 1);
        });
    }

    #[test]
    fn pool_exhaustion_requeues_and_eventually_completes() {
        let cfg = ModelConfig::tiny();
        run_ranks_map(1, |comm| {
            let model = DistTransformer::new(cfg, 23, 0, 1, A2aKind::Pairwise);
            // Pool fits exactly one request's worst case: 3 + 5 − 1 = 7
            // positions → 2 blocks of 4; give it 3 blocks so the second
            // request cannot co-reside but can follow.
            let mut eng = Engine::new(
                model,
                EngineConfig {
                    max_batch: 4,
                    kv_blocks: 3,
                    block_tokens: 4,
                },
            );
            let collector = bagualu_trace::TraceCollector::new();
            let guard = collector.install(0);
            for id in 0..3u64 {
                eng.submit(Request::new(id, vec![1 + id as usize, 7], 6))
                    .unwrap();
            }
            eng.run_to_completion(&comm);
            drop(guard);
            let trace = collector.finish();
            let done = eng.take_finished();
            assert_eq!(done.len(), 3, "re-queued requests must still complete");
            assert!(
                trace.counter_total(names::SERVE_REQUEUED) > 0,
                "this schedule must hit admission back-pressure"
            );
            assert_eq!(trace.counter_total(names::SERVE_COMPLETED), 3);
            assert_eq!(
                trace.counter_total(names::SERVE_KV_BLOCKS_USED),
                trace.counter_total(names::SERVE_KV_BLOCKS_FREE),
                "every reserved block must be freed"
            );
            assert_eq!(eng.pool().used_blocks(), 0);
        });
    }

    #[test]
    fn distributed_engine_matches_single_rank() {
        let cfg = ModelConfig::tiny();
        let prompts: Vec<Vec<usize>> = vec![vec![4, 9], vec![8, 1, 1]];
        let max_new = 5usize;

        let single = run_ranks_map(1, |comm| {
            let model = DistTransformer::new(cfg, 41, 0, 1, A2aKind::Pairwise);
            let mut eng = Engine::new(model, engine_cfg());
            for (i, p) in prompts.iter().enumerate() {
                eng.submit(Request::new(i as u64, p.clone(), max_new))
                    .unwrap();
            }
            eng.run_to_completion(&comm);
            let mut done = eng.take_finished();
            done.sort_by_key(|r| r.id);
            done.into_iter().map(|r| r.tokens).collect::<Vec<_>>()
        });

        let multi = run_ranks_map(4, |comm| {
            let rank = comm.rank();
            let model = DistTransformer::new(
                cfg,
                41,
                rank,
                4,
                A2aKind::Hierarchical { supernode_size: 2 },
            );
            let mut eng = Engine::new(model, engine_cfg());
            if rank == 0 {
                for (i, p) in prompts.iter().enumerate() {
                    eng.submit(Request::new(i as u64, p.clone(), max_new))
                        .unwrap();
                }
            }
            eng.run_to_completion(&comm);
            let mut done = eng.take_finished();
            done.sort_by_key(|r| r.id);
            done.into_iter().map(|r| r.tokens).collect::<Vec<_>>()
        });

        assert_eq!(multi[0], single[0], "expert-parallel decode diverged");
        for r in 1..4 {
            assert!(multi[r].is_empty(), "only rank 0 held requests");
        }
    }
}
