//! Request and response types for the serving front-end.

use std::fmt;
use std::time::Instant;

/// One generation request: a prompt plus a token budget.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-assigned identifier, echoed on the [`Response`].
    pub id: u64,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate (≥ 1). Greedy decoding runs for
    /// exactly this many tokens — the toy vocabulary has no stop token.
    pub max_new: usize,
    /// When the request entered the system; queue-wait accounting starts
    /// here.
    pub arrival: Instant,
}

impl Request {
    /// A request arriving now.
    pub fn new(id: u64, prompt: Vec<usize>, max_new: usize) -> Request {
        Request {
            id,
            prompt,
            max_new,
            arrival: Instant::now(),
        }
    }
}

/// Why a request can *never* run against this engine. These are permanent
/// rejections raised at submit time; transient resource pressure is not an
/// error the caller sees — it re-queues internally (see
/// [`crate::AdmissionError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The prompt has no tokens; there is nothing to prefill.
    EmptyPrompt,
    /// `max_new` is zero; there is nothing to generate.
    NothingToGenerate,
    /// `prompt.len() + max_new` exceeds the model's maximum sequence
    /// length.
    ExceedsMaxSeq {
        /// Positions the request would occupy.
        needed: usize,
        /// The model's `max_seq`.
        max_seq: usize,
    },
    /// The request's worst-case KV footprint exceeds the *entire* pool —
    /// it could never be admitted, even alone.
    ExceedsPool {
        /// Blocks the request would need.
        needed: usize,
        /// Blocks the pool has in total.
        total: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SubmitError::EmptyPrompt => write!(f, "empty prompt"),
            SubmitError::NothingToGenerate => write!(f, "max_new must be at least 1"),
            SubmitError::ExceedsMaxSeq { needed, max_seq } => write!(
                f,
                "prompt + max_new needs {needed} positions but the model caps at {max_seq}"
            ),
            SubmitError::ExceedsPool { needed, total } => write!(
                f,
                "request needs {needed} KV blocks but the pool only holds {total}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A completed request: the full token sequence plus latency breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The id the request was submitted with.
    pub id: u64,
    /// Prompt followed by the generated tokens.
    pub tokens: Vec<usize>,
    /// Length of the prompt prefix of [`Response::tokens`].
    pub prompt_len: usize,
    /// Nanoseconds between arrival and admission into the running batch.
    pub queue_wait_ns: u64,
    /// Nanoseconds between admission and the end of the prefill phase that
    /// produced the first generated token.
    pub prefill_ns: u64,
    /// Nanoseconds between the end of prefill and the final generated
    /// token.
    pub decode_ns: u64,
}

impl Response {
    /// The generated suffix (everything after the prompt).
    pub fn generated(&self) -> &[usize] {
        &self.tokens[self.prompt_len..]
    }

    /// End-to-end latency in nanoseconds (queue wait + prefill + decode).
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.prefill_ns + self.decode_ns
    }
}
