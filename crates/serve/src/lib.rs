//! BaGuaLu-serve: continuous-batching, expert-parallel inference.
//!
//! Training gets a model to brain scale; this crate is the path from that
//! checkpoint to answering requests — the paper's "millions of users"
//! endpoint. Three ideas, each in its own module:
//!
//! * **Continuous batching** ([`engine`]) — requests join the in-flight
//!   batch at step boundaries and leave the moment they finish; the GPU
//!   analogue never drains to rebuild a static batch. Decoding is greedy
//!   and every per-row operation is row-independent, so batch composition
//!   cannot change any sequence's tokens (pinned bit-identical to
//!   [`Transformer::generate_cached`](bagualu_model::transformer::Transformer::generate_cached)
//!   by the integration tests).
//! * **Paged KV cache** ([`kv`]) — fixed-size blocks, a LIFO free list,
//!   and per-sequence block tables; worst-case blocks are reserved at
//!   admission, so an admitted sequence can never fail mid-decode, and a
//!   request that does not fit is re-queued (typed
//!   [`AdmissionError`]), never dropped.
//! * **Expert-parallel decode** ([`server`]) — each rank hosts its expert
//!   shard and decode rows travel through the same all-to-all
//!   dispatch/combine as training. The rank loop keeps collective calls
//!   aligned via an exact integer all-reduce consensus even though
//!   requests arrive asynchronously on different ranks.
//!
//! # Quickstart
//!
//! ```
//! use bagualu_model::config::ModelConfig;
//! use bagualu_parallel::{A2aKind, DistTransformer};
//! use bagualu_serve::{run, EngineConfig, ServerOptions};
//!
//! let opts = ServerOptions {
//!     nranks: 2,
//!     engine: EngineConfig { max_batch: 4, kv_blocks: 32, block_tokens: 4 },
//!     trace: false,
//! };
//! let report = run(
//!     opts,
//!     // One replica per rank from the same seed: dense weights agree,
//!     // expert shards partition one logical model.
//!     |rank| DistTransformer::new(ModelConfig::tiny(), 7, rank, 2, A2aKind::Pairwise),
//!     |client| {
//!         let ticket = client.submit(vec![3, 5], 4);
//!         ticket.wait().expect("valid request").tokens
//!     },
//! );
//! assert_eq!(report.output.len(), 6); // 2 prompt + 4 generated tokens
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod kv;
pub mod request;
pub mod server;

pub use engine::{Engine, EngineConfig};
pub use kv::{AdmissionError, KvBlockPool, PagedStore, SeqKv};
pub use request::{Request, Response, SubmitError};
pub use server::{run, Client, ServerOptions, ServerReport, Ticket};
