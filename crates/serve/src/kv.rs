//! Paged KV-cache allocation: fixed-size blocks, a free list, and
//! per-sequence block tables.
//!
//! A naive serving KV cache allocates `max_seq × n_layers × 2 × d` floats
//! per sequence up front; with continuous batching most of that is dead
//! space (short requests, sequences that finish early). The paged design
//! (vLLM-style) carves one shared arena into fixed-size **blocks** of
//! `block_tokens` positions each; a sequence holds an ordered **block
//! table** and grows into it position by position. Blocks return to the
//! free list the moment a sequence detaches, so peak memory tracks the
//! *live* token count, not `max_batch × max_seq`.
//!
//! One block spans **all layers** for its positions, so a sequence needs a
//! single table (not one per layer). The float layout inside a block is
//! `[token_in_block][layer][K | V]`, each K/V run being a contiguous
//! `[d_model]` slice — exactly the read granularity of
//! [`KvStore`], so a paged read is one
//! slice borrow, never a gather.
//!
//! Admission control lives here too: [`KvBlockPool::try_reserve`] either
//! hands over every block a request could ever need (its worst-case decode
//! length is known at admission) or fails with the typed
//! [`AdmissionError`] — the engine then re-queues the request. Reserving
//! up front means an admitted sequence can never die of allocation failure
//! mid-decode.

use bagualu_model::attention::KvStore;
use std::fmt;

/// Why a request could not be admitted. The request is *re-queued*, never
/// dropped — admission failure is back-pressure, not an error the client
/// sees (unless the request can never fit, which [`crate::Engine::submit`]
/// rejects up front).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The pool's free list is shorter than the request's worst-case block
    /// need. Retry after an in-flight sequence detaches.
    OutOfKvBlocks {
        /// Blocks the request needs reserved.
        needed: usize,
        /// Blocks currently free.
        free: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AdmissionError::OutOfKvBlocks { needed, free } => write!(
                f,
                "out of KV blocks: request needs {needed}, pool has {free} free"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A sequence's slice of the pool: its block table plus the number of
/// positions committed so far. Owned by the engine's per-sequence state;
/// the pool itself holds no per-sequence bookkeeping.
#[derive(Debug, Clone)]
pub struct SeqKv {
    /// Pool block indices, in position order (`blocks[p / block_tokens]`
    /// holds position `p`).
    pub blocks: Vec<usize>,
    /// Positions committed (appended by a completed engine phase).
    pub len: usize,
}

impl SeqKv {
    /// Wrap a freshly reserved block table.
    pub fn new(blocks: Vec<usize>) -> SeqKv {
        SeqKv { blocks, len: 0 }
    }

    /// Positions this table can hold.
    pub fn capacity(&self, block_tokens: usize) -> usize {
        self.blocks.len() * block_tokens
    }
}

/// The shared block arena plus its free list.
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    d_model: usize,
    n_layers: usize,
    block_tokens: usize,
    n_blocks: usize,
    storage: Vec<f32>,
    /// LIFO free list — recently released (cache-warm) blocks are reused
    /// first.
    free: Vec<usize>,
}

impl KvBlockPool {
    /// An arena of `n_blocks` blocks of `block_tokens` positions each, for
    /// a model with `n_layers` attention layers of width `d_model`.
    pub fn new(
        n_blocks: usize,
        block_tokens: usize,
        n_layers: usize,
        d_model: usize,
    ) -> KvBlockPool {
        assert!(n_blocks > 0, "pool needs at least one block");
        assert!(block_tokens > 0, "blocks need at least one position");
        assert!(n_layers > 0 && d_model > 0);
        let block_floats = block_tokens * n_layers * 2 * d_model;
        KvBlockPool {
            d_model,
            n_layers,
            block_tokens,
            n_blocks,
            storage: vec![0.0; n_blocks * block_floats],
            // Popping from the back hands out block 0 first — determinism
            // the reuse tests pin.
            free: (0..n_blocks).rev().collect(),
        }
    }

    /// Total blocks in the arena.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Positions per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently reserved by sequences.
    pub fn used_blocks(&self) -> usize {
        self.n_blocks - self.free.len()
    }

    /// Blocks needed to hold `positions` cached positions.
    pub fn blocks_for(&self, positions: usize) -> usize {
        positions.div_ceil(self.block_tokens).max(1)
    }

    /// Reserve `n` blocks, or fail with the typed admission error (the
    /// free list is untouched on failure — reservation is all-or-nothing).
    pub fn try_reserve(&mut self, n: usize) -> Result<Vec<usize>, AdmissionError> {
        if self.free.len() < n {
            return Err(AdmissionError::OutOfKvBlocks {
                needed: n,
                free: self.free.len(),
            });
        }
        Ok(self.free.split_off(self.free.len() - n))
    }

    /// Return a detached sequence's blocks to the free list.
    pub fn release(&mut self, blocks: Vec<usize>) {
        for b in blocks {
            debug_assert!(b < self.n_blocks);
            debug_assert!(!self.free.contains(&b), "double release of block {b}");
            self.free.push(b);
        }
    }

    /// Floats per block.
    fn block_floats(&self) -> usize {
        self.block_tokens * self.n_layers * 2 * self.d_model
    }

    /// Float offset of position `pos`, layer `layer` in a block table.
    fn offset(&self, blocks: &[usize], layer: usize, pos: usize) -> usize {
        let block = blocks[pos / self.block_tokens];
        block * self.block_floats()
            + ((pos % self.block_tokens) * self.n_layers + layer) * 2 * self.d_model
    }

    /// A [`KvStore`] view of `seq` at `layer`, currently holding exactly
    /// `len` positions. Views are ephemeral — the engine creates one per
    /// (row, layer) during a decode phase and commits lengths afterwards.
    pub fn store<'a>(&'a mut self, seq: &'a SeqKv, layer: usize, len: usize) -> PagedStore<'a> {
        assert!(layer < self.n_layers);
        assert!(
            len < seq.capacity(self.block_tokens),
            "KV view at {len} positions has no room to append (table holds {} blocks × {})",
            seq.blocks.len(),
            self.block_tokens
        );
        PagedStore {
            pool: self,
            blocks: &seq.blocks,
            layer,
            len,
        }
    }
}

/// An ephemeral [`KvStore`] over one (sequence, layer) pair of the pool.
/// Reads and the single append are bounds-checked against the sequence's
/// block table; bits read back exactly as written, so swapping this in for
/// the growable `KvCache` cannot change any attention output.
#[derive(Debug)]
pub struct PagedStore<'a> {
    pool: &'a mut KvBlockPool,
    blocks: &'a [usize],
    layer: usize,
    len: usize,
}

impl KvStore for PagedStore<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn append(&mut self, keys: &[f32], values: &[f32]) {
        let d = self.pool.d_model;
        assert_eq!(keys.len(), d);
        assert_eq!(values.len(), d);
        assert!(
            self.len < self.blocks.len() * self.pool.block_tokens,
            "append past the reserved block table"
        );
        let off = self.pool.offset(self.blocks, self.layer, self.len);
        self.pool.storage[off..off + d].copy_from_slice(keys);
        self.pool.storage[off + d..off + 2 * d].copy_from_slice(values);
        self.len += 1;
    }

    fn key(&self, pos: usize) -> &[f32] {
        assert!(pos < self.len, "read of unwritten position {pos}");
        let d = self.pool.d_model;
        let off = self.pool.offset(self.blocks, self.layer, pos);
        &self.pool.storage[off..off + d]
    }

    fn value(&self, pos: usize) -> &[f32] {
        assert!(pos < self.len, "read of unwritten position {pos}");
        let d = self.pool.d_model;
        let off = self.pool.offset(self.blocks, self.layer, pos);
        &self.pool.storage[off + d..off + 2 * d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::attention::KvCache;
    use bagualu_tensor::rng::Rng;

    #[test]
    fn exhaustion_is_a_typed_error_and_reservation_is_atomic() {
        let mut pool = KvBlockPool::new(4, 2, 1, 4);
        let a = pool.try_reserve(3).unwrap();
        assert_eq!(pool.free_blocks(), 1);
        let err = pool.try_reserve(2).unwrap_err();
        assert_eq!(err, AdmissionError::OutOfKvBlocks { needed: 2, free: 1 });
        // Failure must not leak blocks.
        assert_eq!(pool.free_blocks(), 1);
        pool.release(a);
        assert_eq!(pool.free_blocks(), 4);
        assert!(pool.try_reserve(2).is_ok());
    }

    #[test]
    fn freed_blocks_are_reused_lifo() {
        let mut pool = KvBlockPool::new(4, 2, 1, 4);
        let first = pool.try_reserve(2).unwrap();
        assert_eq!(first, vec![1, 0], "split_off hands out the list tail");
        pool.release(first.clone());
        let again = pool.try_reserve(2).unwrap();
        // LIFO: the blocks just released come straight back (same order —
        // they were pushed 1 then 0 and popped off the tail).
        assert_eq!(again, first);
        assert_eq!(pool.used_blocks(), 2);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let pool = KvBlockPool::new(8, 4, 2, 8);
        assert_eq!(pool.blocks_for(1), 1);
        assert_eq!(pool.blocks_for(4), 1);
        assert_eq!(pool.blocks_for(5), 2);
        assert_eq!(
            pool.blocks_for(0),
            1,
            "degenerate requests still hold a block"
        );
    }

    #[test]
    fn paged_store_reads_back_what_the_growable_cache_holds() {
        // Write the same random K/V stream through both stores, spanning
        // several block boundaries and two layers; every read must be
        // bit-identical.
        let (d, layers, bt) = (8usize, 2usize, 3usize);
        let mut rng = Rng::seed_from(91);
        let mut pool = KvBlockPool::new(6, bt, layers, d);
        let seq = SeqKv::new(pool.try_reserve(4).unwrap());
        let mut oracle: Vec<Vec<KvCache>> = vec![(0..layers).map(|_| KvCache::new(d)).collect()];

        let positions = 10; // spans 4 blocks of 3
        for pos in 0..positions {
            for layer in 0..layers {
                let k: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
                let v: Vec<f32> = (0..d).map(|_| rng.normal()).collect();
                let mut store = pool.store(&seq, layer, pos);
                store.append(&k, &v);
                oracle[0][layer].append(&k, &v);
            }
        }
        for pos in 0..positions {
            for layer in 0..layers {
                let store = pool.store(&seq, layer, positions);
                assert_eq!(store.key(pos), KvStore::key(&oracle[0][layer], pos));
                assert_eq!(store.value(pos), KvStore::value(&oracle[0][layer], pos));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unwritten position")]
    fn reading_past_the_view_length_panics() {
        let mut pool = KvBlockPool::new(2, 2, 1, 4);
        let seq = SeqKv::new(pool.try_reserve(1).unwrap());
        let store = pool.store(&seq, 0, 1);
        let _ = store.key(1);
    }

    #[test]
    #[should_panic(expected = "no room to append")]
    fn views_at_full_capacity_are_rejected() {
        let mut pool = KvBlockPool::new(2, 2, 1, 4);
        let seq = SeqKv::new(pool.try_reserve(1).unwrap());
        let _ = pool.store(&seq, 0, 2); // table holds 2 positions; len 2 cannot append
    }
}
