//! The request front-end: a hand-rolled submission queue, per-request
//! response tickets, and the lockstep rank loop that keeps every rank's
//! collective-call count aligned while requests arrive asynchronously.
//!
//! # Consensus
//!
//! The expert-parallel decode path is built from collectives, so every
//! rank must execute the same sequence of engine steps — but requests
//! arrive on one rank's queue at arbitrary times. Each loop iteration,
//! every rank all-reduces `[local_work, saw_stop]` (exact integer
//! arithmetic via [`collectives::allreduce_u64`]); the *summed* totals are
//! identical everywhere, so every rank takes the same branch: step when
//! anyone has work, exit when the queues are provably drained after
//! shutdown, or nap briefly and re-check. No rank ever steps alone.
//!
//! The shutdown edge has a subtle race: a request pushed just before the
//! stop flag flips could be missed by a rank that drained its queue
//! earlier in the same iteration. The loop therefore reads the stop flag
//! **before** draining and exits only when *every* rank saw the flag in
//! the same round (`saw_stop` sums to the world size) — by then each
//! rank's drain happened after every submission (submissions all complete
//! before the flag is set), so a zero work total really means empty.

use crate::engine::{Engine, EngineConfig};
use crate::request::{Request, Response, SubmitError};
use bagualu_comm::collectives;
use bagualu_comm::shm::World;
use bagualu_comm::Communicator;
use bagualu_parallel::DistTransformer;
use bagualu_trace::{Trace, TraceCollector};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// Server sizing and instrumentation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// World size (one engine replica per rank, experts sharded across
    /// them).
    pub nranks: usize,
    /// Per-rank engine configuration.
    pub engine: EngineConfig,
    /// Record `serve.*` spans and counters (one trace lane per rank).
    pub trace: bool,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            nranks: 1,
            engine: EngineConfig::default(),
            trace: false,
        }
    }
}

/// What [`run`] hands back: the driver closure's output plus the merged
/// trace when tracing was enabled.
#[derive(Debug)]
pub struct ServerReport<T> {
    /// The driver's return value.
    pub output: T,
    /// Merged per-rank trace (`serve.*`, `a2a_*`, `comm.*` …), if
    /// [`ServerOptions::trace`] was set.
    pub trace: Option<Trace>,
}

/// State shared between the client and the rank loops.
struct Shared {
    /// One submission queue per rank; requests are routed round-robin.
    queues: Mutex<Vec<VecDeque<Request>>>,
    /// Wakes idle rank loops when a request arrives or shutdown begins.
    cv: Condvar,
    /// Per-request response channels, keyed by request id.
    responders: Mutex<HashMap<u64, mpsc::Sender<Result<Response, SubmitError>>>>,
    next_id: AtomicU64,
    next_rank: AtomicUsize,
    /// Flipped once the driver returns; must be read *before* draining
    /// (see the module docs).
    stop: AtomicBool,
}

/// Handle the driver closure uses to submit requests. Cloneable across
/// driver-side threads by reference (`&Client` is `Sync`).
pub struct Client<'a> {
    shared: &'a Shared,
    nranks: usize,
}

impl Client<'_> {
    /// Submit a prompt for `max_new` greedily decoded tokens. Returns
    /// immediately with a [`Ticket`]; generation proceeds inside the
    /// continuous batch.
    pub fn submit(&self, prompt: Vec<usize>, max_new: usize) -> Ticket {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        self.shared.responders.lock().unwrap().insert(id, tx);
        let rank = self.shared.next_rank.fetch_add(1, Ordering::Relaxed) % self.nranks;
        {
            let mut queues = self.shared.queues.lock().unwrap();
            queues[rank].push_back(Request::new(id, prompt, max_new));
        }
        self.shared.cv.notify_all();
        Ticket { id, rx }
    }
}

/// A pending response. Dropping it abandons the request's answer (the
/// request itself still runs to completion).
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<Response, SubmitError>>,
}

impl Ticket {
    /// The id the response will carry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request completes (or was rejected at submit
    /// validation with a permanent [`SubmitError`]).
    pub fn wait(self) -> Result<Response, SubmitError> {
        self.rx
            .recv()
            .expect("serving ranks exited without answering this ticket")
    }
}

/// Stand up `nranks` engine replicas on scoped threads, run `driver`
/// against a [`Client`] on the calling thread, then shut the ranks down
/// cleanly (all queued work finishes first — shutdown is graceful).
///
/// `build_model` is called once per rank with the rank index and must
/// return replicas built from the *same seed* so dense weights agree and
/// expert shards partition one logical model.
pub fn run<B, F, T>(opts: ServerOptions, build_model: B, driver: F) -> ServerReport<T>
where
    B: Fn(usize) -> DistTransformer + Sync,
    F: FnOnce(&Client) -> T,
{
    assert!(opts.nranks > 0);
    let world = World::new(opts.nranks);
    let comms = world.comms();
    let collector = opts.trace.then(TraceCollector::new);
    let shared = Shared {
        queues: Mutex::new((0..opts.nranks).map(|_| VecDeque::new()).collect()),
        cv: Condvar::new(),
        responders: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(0),
        next_rank: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
    };

    let output = std::thread::scope(|scope| {
        for comm in comms {
            let rank = comm.rank();
            let shared = &shared;
            let build_model = &build_model;
            let collector = collector.as_ref();
            scope.spawn(move || {
                let _lane = collector.map(|c| c.install(rank));
                let model = build_model(rank);
                let mut engine = Engine::new(model, opts.engine);
                rank_loop(&mut engine, &comm, shared, opts.nranks);
            });
        }
        let client = Client {
            shared: &shared,
            nranks: opts.nranks,
        };
        // Set on drop so the ranks also wind down if `driver` panics —
        // otherwise `thread::scope` would wait on them forever.
        let _stop = StopGuard(&shared);
        driver(&client)
    });

    ServerReport {
        output,
        trace: collector.map(|c| c.finish()),
    }
}

/// One rank's serve loop; see the module docs for the consensus protocol.
fn rank_loop<C: Communicator>(engine: &mut Engine, comm: &C, shared: &Shared, nranks: usize) {
    loop {
        // Read the stop flag BEFORE draining: if we see it set, every
        // submission already happened, so the drain below sees them all.
        let saw_stop = shared.stop.load(Ordering::SeqCst);

        let drained: Vec<Request> = {
            let mut queues = shared.queues.lock().unwrap();
            queues[comm.rank()].drain(..).collect()
        };
        for req in drained {
            let id = req.id;
            if let Err(e) = engine.submit(req) {
                respond(shared, id, Err(e));
            }
        }

        let totals = collectives::allreduce_u64(comm, vec![engine.local_work(), saw_stop as u64]);
        if totals[0] > 0 {
            engine.step(comm);
            for resp in engine.take_finished() {
                respond(shared, resp.id, Ok(resp));
            }
            continue;
        }
        if totals[1] as usize == nranks {
            return;
        }
        // Idle and not yet shut down: nap until a submission (or the stop
        // flag) wakes us. Symmetric across ranks — everyone reached this
        // branch from the same totals, so no rank is stuck in a
        // collective.
        let queues = shared.queues.lock().unwrap();
        let _ = shared
            .cv
            .wait_timeout(queues, Duration::from_micros(500))
            .unwrap();
    }
}

/// Flips the stop flag (and wakes idle ranks) when dropped, even on an
/// unwinding driver.
struct StopGuard<'a>(&'a Shared);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::SeqCst);
        self.0.cv.notify_all();
    }
}

/// Deliver a result to the waiting ticket, if it is still around.
fn respond(shared: &Shared, id: u64, result: Result<Response, SubmitError>) {
    if let Some(tx) = shared.responders.lock().unwrap().remove(&id) {
        let _ = tx.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_model::config::ModelConfig;
    use bagualu_parallel::A2aKind;
    use bagualu_trace::names;

    fn opts(nranks: usize, trace: bool) -> ServerOptions {
        ServerOptions {
            nranks,
            engine: EngineConfig {
                max_batch: 4,
                kv_blocks: 32,
                block_tokens: 4,
            },
            trace,
        }
    }

    fn build(nranks: usize) -> impl Fn(usize) -> DistTransformer + Sync {
        move |rank| DistTransformer::new(ModelConfig::tiny(), 73, rank, nranks, A2aKind::Pairwise)
    }

    #[test]
    fn serves_concurrent_requests() {
        let report = run(opts(2, true), build(2), |client| {
            let tickets: Vec<Ticket> = (0..6)
                .map(|i| client.submit(vec![1 + i % 5, 9, 2], 4))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("valid request"))
                .collect::<Vec<Response>>()
        });
        assert_eq!(report.output.len(), 6);
        for r in &report.output {
            assert_eq!(r.prompt_len, 3);
            assert_eq!(r.generated().len(), 4);
        }
        let trace = report.trace.expect("tracing was on");
        assert_eq!(trace.counter_total(names::SERVE_COMPLETED), 6);
        assert!(trace.counter_total(names::SERVE_DECODE_TOKENS) > 0);
    }

    #[test]
    fn identical_prompts_get_identical_answers_regardless_of_batching() {
        // The same prompt submitted alone and amid a crowd must decode to
        // the same tokens — continuous batching is invisible.
        let solo = run(opts(1, false), build(1), |client| {
            client.submit(vec![4, 4, 8], 5).wait().unwrap().tokens
        });
        let crowded = run(opts(1, false), build(1), |client| {
            let noise: Vec<Ticket> = (0..3).map(|i| client.submit(vec![2 + i], 7)).collect();
            let t = client.submit(vec![4, 4, 8], 5);
            let tokens = t.wait().unwrap().tokens;
            for n in noise {
                n.wait().unwrap();
            }
            tokens
        });
        assert_eq!(solo.output, crowded.output);
    }

    #[test]
    fn permanent_rejects_surface_through_the_ticket() {
        let report = run(opts(1, false), build(1), |client| {
            client.submit(vec![], 4).wait()
        });
        assert_eq!(report.output, Err(SubmitError::EmptyPrompt));
    }
}
