//! Model configuration and exact parameter counting, including the
//! brain-scale presets.
//!
//! The presets are *reconstructions*: configurations that hit the published
//! parameter counts (1.93 T / 14.5 T / 174 T) with a CPM-style decoder whose
//! alternate blocks carry mixture-of-experts FFNs. The original paper's
//! exact hyperparameters are not available to this reproduction (see
//! DESIGN.md); what the experiments rely on is the *scaling structure* —
//! expert count multiplies parameters without multiplying per-token FLOPs —
//! which these configs preserve.

use crate::ffn::FeedForward;
use crate::moe::GateKind;

/// Hyperparameters of a (possibly MoE) decoder transformer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    pub vocab: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub d_ff: usize,
    pub max_seq: usize,
    /// Experts per MoE block; `0` makes every block dense.
    pub n_experts: usize,
    /// Every `moe_every`-th block is MoE (blocks `moe_every-1, 2·moe_every-1, …`).
    pub moe_every: usize,
    pub gate: GateKind,
    pub capacity_factor: f32,
    pub aux_weight: f32,
    /// Two-level router group count for MoE blocks; `0` uses the flat gate.
    /// (Single-rank feature: the distributed runtime requires a flat gate.)
    pub router_groups: usize,
    /// Rotary position embeddings instead of a learned position table.
    pub rope: bool,
    /// Tie the LM head to the token embedding (logits = x·Eᵀ), the
    /// standard parameter-saving trick of GPT-family models.
    pub tie_embeddings: bool,
}

impl ModelConfig {
    /// A laptop-scale config for functional tests and examples.
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            vocab: 64,
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            d_ff: 64,
            max_seq: 16,
            n_experts: 4,
            moe_every: 2,
            gate: GateKind::Top2,
            capacity_factor: 2.0,
            aux_weight: 0.01,
            router_groups: 0,
            rope: false,
            tie_embeddings: false,
        }
    }

    /// A dense variant of [`ModelConfig::tiny`].
    pub fn tiny_dense() -> ModelConfig {
        ModelConfig {
            n_experts: 0,
            ..ModelConfig::tiny()
        }
    }

    fn brain_scale_base() -> ModelConfig {
        ModelConfig {
            vocab: 51_200,
            d_model: 4096,
            n_heads: 32,
            n_layers: 24,
            d_ff: 16_384,
            max_seq: 2048,
            n_experts: 0,
            moe_every: 2,
            gate: GateKind::Top2,
            capacity_factor: 1.25,
            aux_weight: 0.01,
            router_groups: 0,
            rope: false,
            tie_embeddings: false,
        }
    }

    /// ~1.93 trillion parameters (1,200 experts × 12 MoE blocks).
    pub fn bagualu_1_93t() -> ModelConfig {
        ModelConfig {
            n_experts: 1_200,
            ..Self::brain_scale_base()
        }
    }

    /// ~14.5 trillion parameters (9,000 experts × 12 MoE blocks).
    pub fn bagualu_14_5t() -> ModelConfig {
        ModelConfig {
            n_experts: 9_000,
            ..Self::brain_scale_base()
        }
    }

    /// ~174 trillion parameters — the brain-scale configuration
    /// (108,000 experts × 12 MoE blocks).
    pub fn bagualu_174t() -> ModelConfig {
        ModelConfig {
            n_experts: 108_000,
            ..Self::brain_scale_base()
        }
    }

    /// Whether block `i` (0-based) carries an MoE FFN.
    pub fn is_moe_block(&self, i: usize) -> bool {
        self.n_experts > 0 && (i + 1).is_multiple_of(self.moe_every)
    }

    /// Number of MoE blocks.
    pub fn n_moe_blocks(&self) -> usize {
        (0..self.n_layers).filter(|&i| self.is_moe_block(i)).count()
    }

    /// Parameters of one attention sub-layer.
    fn attn_params(&self) -> u128 {
        let d = self.d_model as u128;
        (d * 3 * d + 3 * d) + (d * d + d)
    }

    /// Parameters of the two layer norms in a block.
    fn block_ln_params(&self) -> u128 {
        4 * self.d_model as u128
    }

    /// Exact total trainable parameters.
    pub fn count_params(&self) -> u128 {
        let d = self.d_model as u128;
        let expert = FeedForward::param_count(self.d_model, self.d_ff);
        let mut total = 0u128;
        // Token embedding; the position table exists only without RoPE.
        total += self.vocab as u128 * d;
        if !self.rope {
            total += self.max_seq as u128 * d;
        }
        for i in 0..self.n_layers {
            total += self.attn_params() + self.block_ln_params();
            if self.is_moe_block(i) {
                // Router: flat gate projects d×E; the two-level router adds
                // a d×G group projection on top of the d×E expert table.
                total += d * self.n_experts as u128;
                if self.router_groups > 0 {
                    total += d * self.router_groups as u128;
                }
                total += self.n_experts as u128 * expert;
            } else {
                total += expert;
            }
        }
        // Final norm + LM head (absent when tied to the embedding).
        total += 2 * d;
        if !self.tie_embeddings {
            total += d * self.vocab as u128 + self.vocab as u128;
        }
        total
    }

    /// Parameters that are *replicated* under MoDa parallelism (everything
    /// except the experts, which are sharded one-per-rank-group).
    pub fn dense_params(&self) -> u128 {
        self.count_params() - self.expert_params()
    }

    /// Total parameters living in experts (sharded, never replicated).
    pub fn expert_params(&self) -> u128 {
        let expert = FeedForward::param_count(self.d_model, self.d_ff);
        self.n_moe_blocks() as u128 * self.n_experts as u128 * expert
    }

    /// Forward FLOPs per token (the standard 2·params-activated estimate,
    /// broken out so MoE activates only `k` experts, not all of them).
    pub fn flops_per_token_forward(&self) -> f64 {
        let d = self.d_model as f64;
        let expert = FeedForward::param_count(self.d_model, self.d_ff) as f64;
        let mut fl = 0.0;
        for i in 0..self.n_layers {
            fl += 2.0 * (self.attn_params() as f64);
            // Attention score/context FLOPs: 2·2·seq·d per token at full
            // context; use max_seq/2 as the average causal context.
            fl += 2.0 * 2.0 * (self.max_seq as f64 / 2.0) * d;
            if self.is_moe_block(i) {
                fl += 2.0 * d * self.n_experts as f64; // gate projection
                fl += 2.0 * expert * self.gate.k() as f64; // k active experts
            } else {
                fl += 2.0 * expert;
            }
        }
        fl += 2.0 * d * self.vocab as f64; // LM head
        fl
    }

    /// Training FLOPs per token (forward + 2× backward).
    pub fn flops_per_token_train(&self) -> f64 {
        3.0 * self.flops_per_token_forward()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parameter_counts_hit_published_scales() {
        let c1 = ModelConfig::bagualu_1_93t().count_params() as f64;
        let c2 = ModelConfig::bagualu_14_5t().count_params() as f64;
        let c3 = ModelConfig::bagualu_174t().count_params() as f64;
        assert!(
            (c1 / 1.93e12 - 1.0).abs() < 0.05,
            "1.93T preset gives {c1:.3e}"
        );
        assert!(
            (c2 / 14.5e12 - 1.0).abs() < 0.05,
            "14.5T preset gives {c2:.3e}"
        );
        assert!(
            (c3 / 174e12 - 1.0).abs() < 0.05,
            "174T preset gives {c3:.3e}"
        );
    }

    #[test]
    fn moe_block_pattern() {
        let c = ModelConfig::bagualu_1_93t();
        assert!(!c.is_moe_block(0));
        assert!(c.is_moe_block(1));
        assert!(c.is_moe_block(23));
        assert_eq!(c.n_moe_blocks(), 12);
        let dense = ModelConfig::tiny_dense();
        assert_eq!(dense.n_moe_blocks(), 0);
    }

    #[test]
    fn expert_params_dominate_at_brain_scale() {
        let c = ModelConfig::bagualu_174t();
        let frac = c.expert_params() as f64 / c.count_params() as f64;
        assert!(frac > 0.99, "experts hold {frac:.4} of parameters");
    }

    #[test]
    fn dense_plus_expert_equals_total() {
        for c in [ModelConfig::tiny(), ModelConfig::bagualu_1_93t()] {
            assert_eq!(c.dense_params() + c.expert_params(), c.count_params());
        }
    }

    #[test]
    fn moe_flops_do_not_scale_with_expert_count() {
        let small = ModelConfig::bagualu_1_93t();
        let big = ModelConfig::bagualu_174t();
        let ratio = big.flops_per_token_forward() / small.flops_per_token_forward();
        // 90× the parameters, but only the gate projection grows.
        assert!(ratio < 3.0, "FLOPs ratio {ratio}");
        let params_ratio = big.count_params() as f64 / small.count_params() as f64;
        assert!(params_ratio > 80.0);
    }

    #[test]
    fn tiny_config_counts_match_a_real_model() {
        // Cross-checked against Transformer::num_params in transformer.rs
        // tests; here just sanity: counting is positive and dense < moe.
        let moe = ModelConfig::tiny().count_params();
        let dense = ModelConfig::tiny_dense().count_params();
        assert!(moe > dense);
    }

    #[test]
    fn train_flops_are_3x_forward() {
        let c = ModelConfig::tiny();
        assert!((c.flops_per_token_train() / c.flops_per_token_forward() - 3.0).abs() < 1e-9);
    }
}
