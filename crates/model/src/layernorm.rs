//! Layer normalization with hand-derived backward.
//!
//! The forward pass dispatches through the pluggable
//! [`RowOpsBackend`](bagualu_tensor::ops::RowOpsBackend) (reference or
//! vectorized tier, bit-identical to each other), which also records the
//! `compute.layernorm.{flops,ns}` trace counters. The backward stays here:
//! it is the model's hand-derived gradient, not a swappable kernel.

use crate::param::{HasParams, Param};
use bagualu_tensor::ops::layernorm_rows;
use bagualu_tensor::Tensor;

/// Row-wise layer norm: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
    /// Cached `(x̂, 1/σ)` per row from the forward pass.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl LayerNorm {
    pub fn new(name: &str, d: usize) -> LayerNorm {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[d])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[d])),
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn dim(&self) -> usize {
        self.gamma.value.len()
    }

    /// Forward over `[n, d]`, on the calling thread's row-op backend.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let d = self.dim();
        assert_eq!(x.cols(), d);
        let out = layernorm_rows(
            x,
            self.gamma.value.as_slice(),
            self.beta.value.as_slice(),
            self.eps,
        );
        self.cache = Some((out.xhat, out.inv_sigma));
        out.y
    }

    /// Backward: accumulates `dγ`, `dβ`; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_sigma) = self
            .cache
            .take()
            .expect("LayerNorm::backward before forward");
        let d = self.dim();
        assert_eq!(dy.shape(), xhat.shape());
        let g = self.gamma.value.as_slice();

        // Parameter grads.
        {
            let dg = self.gamma.grad.as_mut_slice();
            let db = self.beta.grad.as_mut_slice();
            for (dyr, xr) in dy
                .as_slice()
                .chunks_exact(d)
                .zip(xhat.as_slice().chunks_exact(d))
            {
                for i in 0..d {
                    dg[i] += dyr[i] * xr[i];
                    db[i] += dyr[i];
                }
            }
        }

        // Input grad: dx = inv_σ · (dŷ − mean(dŷ) − x̂ · mean(dŷ ⊙ x̂)),
        // with dŷ = dy ⊙ γ.
        let mut dx = Tensor::zeros(dy.shape());
        for ((dxr, dyr), (xr, &inv)) in dx
            .as_mut_slice()
            .chunks_exact_mut(d)
            .zip(dy.as_slice().chunks_exact(d))
            .zip(xhat.as_slice().chunks_exact(d).zip(&inv_sigma))
        {
            let mut m1 = 0.0f32; // mean(dŷ)
            let mut m2 = 0.0f32; // mean(dŷ ⊙ x̂)
            for i in 0..d {
                let dyh = dyr[i] * g[i];
                m1 += dyh;
                m2 += dyh * xr[i];
            }
            m1 /= d as f32;
            m2 /= d as f32;
            for i in 0..d {
                let dyh = dyr[i] * g[i];
                dxr[i] = inv * (dyh - m1 - xr[i] * m2);
            }
        }
        dx
    }
}

impl HasParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_tensor::rng::Rng;

    #[test]
    fn output_rows_are_normalized() {
        let mut rng = Rng::seed_from(21);
        let mut ln = LayerNorm::new("t", 16);
        let x = Tensor::randn(&[4, 16], 3.0, &mut rng);
        let y = ln.forward(&x);
        for i in 0..4 {
            let row = y.row(i);
            let mean = row.iter().sum::<f32>() / 16.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut rng = Rng::seed_from(22);
        let mut ln = LayerNorm::new("t", 4);
        ln.gamma.value = Tensor::from_vec(vec![2.0; 4], &[4]);
        ln.beta.value = Tensor::from_vec(vec![1.0; 4], &[4]);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = ln.forward(&x);
        for i in 0..2 {
            let mean = y.row(i).iter().sum::<f32>() / 4.0;
            assert!((mean - 1.0).abs() < 1e-4); // β shifts the mean
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(23);
        let mut ln = LayerNorm::new("t", 6);
        // Non-trivial γ so the backward exercises the γ term.
        ln.gamma.value = Tensor::randn(&[6], 1.0, &mut rng).map(|v| 1.0 + 0.2 * v);
        let x = Tensor::randn(&[3, 6], 1.5, &mut rng);

        let y = ln.forward(&x);
        let dx = ln.backward(&y); // loss = ½‖y‖²

        let eps = 1e-3f32;
        let loss = |ln: &mut LayerNorm, x: &Tensor| 0.5 * ln.forward(x).sq_norm();

        // Input gradient.
        for &(i, j) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let mut x2 = x.clone();
            x2.set(i, j, x.at(i, j) + eps);
            let lp = loss(&mut ln, &x2);
            x2.set(i, j, x.at(i, j) - eps);
            let lm = loss(&mut ln, &x2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.at(i, j)).abs() < 2e-2 * (1.0 + fd.abs()),
                "x[{i},{j}]"
            );
        }

        // γ gradient.
        for j in [0usize, 4] {
            let orig = ln.gamma.value.as_slice()[j];
            ln.gamma.value.as_mut_slice()[j] = orig + eps;
            let lp = loss(&mut ln, &x);
            ln.gamma.value.as_mut_slice()[j] = orig - eps;
            let lm = loss(&mut ln, &x);
            ln.gamma.value.as_mut_slice()[j] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = ln.gamma.grad.as_slice()[j];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "gamma[{j}]: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn constant_rows_do_not_blow_up() {
        let mut ln = LayerNorm::new("t", 8);
        let x = Tensor::full(&[2, 8], 3.0);
        let y = ln.forward(&x);
        assert!(!y.has_non_finite());
        let dx = ln.backward(&Tensor::ones(&[2, 8]));
        assert!(!dx.has_non_finite());
    }
}
