//! Position-wise feed-forward network — also the *expert* of an MoE layer.

use crate::linear::Linear;
use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{gelu, gelu_backward, Activation};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// `y = GELU(x·W₁ + b₁)·W₂ + b₂` with hidden width `d_ff`.
///
/// With [`FeedForward::with_recompute`] the `[n, d_ff]` hidden activation —
/// the dominant activation-memory term of a transformer — is *not* cached;
/// the backward pass recomputes it from the (4× smaller) input. This is the
/// activation-checkpointing trade the memory budget in `bagualu-hw` assumes
/// (≈33% extra FFN forward FLOPs for a 4× activation-memory reduction).
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub fc1: Linear,
    pub fc2: Linear,
    /// Recompute the hidden activation in backward instead of caching it.
    pub recompute: bool,
    cache_h: Option<Tensor>, // pre-activation of fc1 (None when recomputing)
    cache_x: Option<Tensor>, // input (only kept when recomputing)
}

impl FeedForward {
    pub fn new(name: &str, d_model: usize, d_ff: usize, rng: &mut Rng) -> FeedForward {
        FeedForward {
            fc1: Linear::new(&format!("{name}.fc1"), d_model, d_ff, rng),
            fc2: Linear::new(&format!("{name}.fc2"), d_ff, d_model, rng),
            recompute: false,
            cache_h: None,
            cache_x: None,
        }
    }

    /// Enable activation recomputation (checkpointing) for this layer.
    pub fn with_recompute(mut self) -> FeedForward {
        self.recompute = true;
        self
    }

    pub fn d_model(&self) -> usize {
        self.fc1.d_in()
    }

    /// Bytes of activation cache held between forward and backward,
    /// including the inner linear layers' input caches.
    pub fn cached_activation_bytes(&self) -> usize {
        4 * (self.cache_h.as_ref().map(|t| t.len()).unwrap_or(0)
            + self.cache_x.as_ref().map(|t| t.len()).unwrap_or(0))
            + self.fc1.cached_bytes()
            + self.fc2.cached_bytes()
    }

    /// Forward over `[n, d_model]`. Accepts `n = 0` (an expert that received
    /// no tokens this step).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        if self.recompute {
            // Checkpointing: the hidden pre-activation is dropped anyway
            // (backward replays the segment unfused to rebuild it), so fuse
            // bias+GELU into the fc1 GEMM and never materialize it. The
            // fused epilogue is bit-identical to the unfused sequence on
            // every backend, so checkpointing still changes no numbers.
            let a = self.fc1.forward_act(x, Activation::Gelu);
            let y = self.fc2.forward(&a);
            self.cache_x = Some(x.clone());
            self.cache_h = None;
            self.fc1.clear_cache();
            self.fc2.clear_cache();
            y
        } else {
            let h = self.fc1.forward(x);
            let a = gelu(&h);
            let y = self.fc2.forward(&a);
            self.cache_h = Some(h);
            y
        }
    }

    /// Backward; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let h = match self.cache_h.take() {
            Some(h) => h,
            None => {
                // Recompute path: replay the segment forward to repopulate
                // every internal cache (the ~33% FLOPs cost of
                // checkpointing), then run the normal backward.
                let x = self
                    .cache_x
                    .take()
                    .expect("FeedForward::backward before forward");
                let h = self.fc1.forward(&x);
                let a = gelu(&h);
                let _ = self.fc2.forward(&a);
                h
            }
        };
        let da = self.fc2.backward(dy);
        let dh = gelu_backward(&da, &h);
        self.fc1.backward(&dh)
    }

    /// Scalar parameters of one expert of this shape — used by the
    /// brain-scale parameter counting.
    pub fn param_count(d_model: usize, d_ff: usize) -> u128 {
        (d_model as u128 * d_ff as u128 + d_ff as u128)
            + (d_ff as u128 * d_model as u128 + d_model as u128)
    }
}

impl HasParams for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = Rng::seed_from(41);
        let mut ffn = FeedForward::new("t", 8, 32, &mut rng);
        let x = Tensor::randn(&[5, 8], 1.0, &mut rng);
        let y = ffn.forward(&x);
        assert_eq!(y.shape(), &[5, 8]);
        let dx = ffn.backward(&y);
        assert_eq!(dx.shape(), &[5, 8]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut rng = Rng::seed_from(42);
        let mut ffn = FeedForward::new("t", 4, 8, &mut rng);
        let x = Tensor::zeros(&[0, 4]);
        let y = ffn.forward(&x);
        assert_eq!(y.shape(), &[0, 4]);
        let dx = ffn.backward(&y);
        assert_eq!(dx.shape(), &[0, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(43);
        let mut ffn = FeedForward::new("t", 4, 12, &mut rng);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let y = ffn.forward(&x);
        let dx = ffn.backward(&y); // loss = ½‖y‖²

        let eps = 1e-3f32;
        let loss = |f: &mut FeedForward, x: &Tensor| 0.5 * f.forward(x).sq_norm();
        for &(i, j) in &[(0usize, 0usize), (2, 3)] {
            let mut x2 = x.clone();
            x2.set(i, j, x.at(i, j) + eps);
            let lp = loss(&mut ffn, &x2);
            x2.set(i, j, x.at(i, j) - eps);
            let lm = loss(&mut ffn, &x2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.at(i, j)).abs() < 3e-2 * (1.0 + fd.abs()),
                "x[{i},{j}]"
            );
        }
        // One fc1 weight.
        let orig = ffn.fc1.w.value.at(1, 5);
        ffn.fc1.w.value.set(1, 5, orig + eps);
        let lp = loss(&mut ffn, &x);
        ffn.fc1.w.value.set(1, 5, orig - eps);
        let lm = loss(&mut ffn, &x);
        ffn.fc1.w.value.set(1, 5, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = ffn.fc1.w.grad.at(1, 5);
        assert!((fd - an).abs() < 3e-2 * (1.0 + fd.abs()), "fd={fd} an={an}");
    }

    #[test]
    fn recompute_produces_identical_gradients() {
        let mut rng = Rng::seed_from(45);
        let mut plain = FeedForward::new("t", 6, 24, &mut rng);
        let mut ckpt = plain.clone().with_recompute();
        let x = Tensor::randn(&[5, 6], 1.0, &mut rng);

        let y1 = plain.forward(&x);
        let y2 = ckpt.forward(&x);
        assert!(y1.approx_eq(&y2, 1e-6), "forward must be unaffected");

        let dx1 = plain.backward(&y1);
        let dx2 = ckpt.backward(&y2);
        assert!(dx1.approx_eq(&dx2, 1e-5));
        assert!(plain.fc1.w.grad.approx_eq(&ckpt.fc1.w.grad, 1e-5));
        assert!(plain.fc2.w.grad.approx_eq(&ckpt.fc2.w.grad, 1e-5));
    }

    #[test]
    fn recompute_caches_less_memory() {
        let mut rng = Rng::seed_from(46);
        let mut plain = FeedForward::new("t", 8, 64, &mut rng);
        let mut ckpt = plain.clone().with_recompute();
        let x = Tensor::randn(&[10, 8], 1.0, &mut rng);
        plain.forward(&x);
        ckpt.forward(&x);
        // Plain caches the [10, 64] hidden twice (pre-activation + fc2's
        // input) plus fc1's [10, 8] input; recompute holds only the [10, 8]
        // segment input.
        assert_eq!(plain.cached_activation_bytes(), 4 * (10 * 64 * 2 + 10 * 8));
        assert_eq!(ckpt.cached_activation_bytes(), 4 * 10 * 8);
    }

    #[test]
    fn param_count_formula() {
        let mut rng = Rng::seed_from(44);
        let mut ffn = FeedForward::new("t", 16, 64, &mut rng);
        assert_eq!(ffn.num_params() as u128, FeedForward::param_count(16, 64));
    }
}
