//! Softmax cross-entropy loss with fused backward.

use bagualu_tensor::ops::log_softmax_rows;
use bagualu_tensor::ops::softmax_rows;
use bagualu_tensor::Tensor;

/// Mean softmax cross-entropy over `[n, vocab]` logits against integer
/// targets. Returns `(loss, dlogits)` — the gradient is the fused
/// `softmax − onehot` scaled by `1/n`, the numerically stable form.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let n = logits.rows();
    let v = logits.cols();
    assert_eq!(targets.len(), n, "one target per row");
    let ls = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < v, "target {t} out of vocab {v}");
        loss -= ls.at(i, t);
    }
    loss /= n as f32;

    let mut dlogits = softmax_rows(logits);
    let scale = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        let row = dlogits.row_mut(i);
        row[t] -= 1.0;
        for g in row.iter_mut() {
            *g *= scale;
        }
    }
    (loss, dlogits)
}

/// Perplexity corresponding to a mean cross-entropy loss.
pub fn perplexity(loss: f32) -> f32 {
    loss.exp()
}

/// Label-smoothed cross-entropy: the target distribution puts `1 − ε` on
/// the gold token and `ε/(V−1)` on every other token — the standard
/// regularizer for large-vocabulary pretraining. Returns `(loss, dlogits)`.
pub fn cross_entropy_smoothed(logits: &Tensor, targets: &[usize], epsilon: f32) -> (f32, Tensor) {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
    if epsilon == 0.0 {
        return cross_entropy(logits, targets);
    }
    let n = logits.rows();
    let v = logits.cols();
    assert!(v >= 2, "smoothing needs at least two classes");
    assert_eq!(targets.len(), n);
    let ls = log_softmax_rows(logits);
    let on = 1.0 - epsilon;
    let off = epsilon / (v as f32 - 1.0);

    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < v);
        let row = ls.row(i);
        let mut l = 0.0f32;
        for (j, &lp) in row.iter().enumerate() {
            let q = if j == t { on } else { off };
            l -= q * lp;
        }
        loss += l;
    }
    loss /= n as f32;

    // dlogits = (softmax − q) / n.
    let mut dlogits = softmax_rows(logits);
    let scale = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        let row = dlogits.row_mut(i);
        for (j, g) in row.iter_mut().enumerate() {
            let q = if j == t { on } else { off };
            *g = (*g - q) * scale;
        }
    }
    (loss, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_ln_vocab() {
        let logits = Tensor::zeros(&[4, 8]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(&[1, 4]);
        logits.set(0, 2, 20.0);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-3);
        let (bad_loss, _) = cross_entropy(&logits, &[0]);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 1.0, -0.5], &[2, 3]);
        let targets = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let orig = logits.at(i, j);
                logits.set(i, j, orig + eps);
                let (lp, _) = cross_entropy(&logits, &targets);
                logits.set(i, j, orig - eps);
                let (lm, _) = cross_entropy(&logits, &targets);
                logits.set(i, j, orig);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - d.at(i, j)).abs() < 1e-3,
                    "({i},{j}): fd={fd} an={}",
                    d.at(i, j)
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let (_, d) = cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = d.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn smoothing_zero_matches_plain_ce() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 1.0, -0.5], &[2, 3]);
        let (a, da) = cross_entropy(&logits, &[2, 0]);
        let (b, db) = cross_entropy_smoothed(&logits, &[2, 0], 0.0);
        assert_eq!(a, b);
        assert!(da.approx_eq(&db, 0.0));
    }

    #[test]
    fn smoothing_raises_loss_floor_and_softens_gradient() {
        // A perfectly confident correct prediction has ~0 plain CE but a
        // positive smoothed CE (the model is *too* confident for the
        // smoothed target).
        let mut logits = Tensor::zeros(&[1, 4]);
        logits.set(0, 1, 25.0);
        let (plain, _) = cross_entropy(&logits, &[1]);
        let (smooth, d) = cross_entropy_smoothed(&logits, &[1], 0.1);
        assert!(plain < 1e-3);
        assert!(smooth > plain + 0.1);
        // Gradient pushes the confident logit *down*.
        assert!(d.at(0, 1) > 0.0);
    }

    #[test]
    fn smoothed_gradient_matches_finite_differences() {
        let mut logits = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.2], &[1, 4]);
        let targets = [2usize];
        let eps_s = 0.15f32;
        let (_, d) = cross_entropy_smoothed(&logits, &targets, eps_s);
        let h = 1e-3f32;
        for j in 0..4 {
            let orig = logits.at(0, j);
            logits.set(0, j, orig + h);
            let (lp, _) = cross_entropy_smoothed(&logits, &targets, eps_s);
            logits.set(0, j, orig - h);
            let (lm, _) = cross_entropy_smoothed(&logits, &targets, eps_s);
            logits.set(0, j, orig);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - d.at(0, j)).abs() < 1e-3,
                "j={j}: fd={fd} an={}",
                d.at(0, j)
            );
        }
    }

    #[test]
    fn perplexity_of_zero_loss_is_one() {
        assert_eq!(perplexity(0.0), 1.0);
        assert!((perplexity((8.0f32).ln()) - 8.0).abs() < 1e-4);
    }
}
