//! Fully connected layer with cached-input backward.

use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{matmul_bias_act, matmul_nt, matmul_tn, Activation};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// `y = x·W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Param,
    pub b: Param,
    /// Input cached by `forward` for the weight-gradient GEMM.
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(name: &str, d_in: usize, d_out: usize, rng: &mut Rng) -> Linear {
        Linear {
            w: Param::new(format!("{name}.w"), Tensor::xavier(d_in, d_out, rng)),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[d_out])),
            cache_x: None,
        }
    }

    pub fn d_in(&self) -> usize {
        self.w.value.rows()
    }

    pub fn d_out(&self) -> usize {
        self.w.value.cols()
    }

    /// Drop the cached forward input (activation checkpointing).
    pub fn clear_cache(&mut self) {
        self.cache_x = None;
    }

    /// Bytes currently held in the forward cache.
    pub fn cached_bytes(&self) -> usize {
        4 * self.cache_x.as_ref().map(|t| t.len()).unwrap_or(0)
    }

    /// Forward over a `[n, d_in]` batch.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_act(x, Activation::Identity)
    }

    /// Forward with a fused epilogue: `act(x·W + b)` in one kernel pass,
    /// applying bias and activation while the output tile is still
    /// cache-resident on tiled backends.
    ///
    /// Only for callers that do not need the pre-activation in backward:
    /// [`Linear::backward`] expects `dy` with respect to the *pre*-activation
    /// output, so a caller fusing a non-identity `act` must backprop through
    /// the activation itself — which requires the pre-activation, which this
    /// path deliberately never materializes. The FFN uses it exactly where
    /// that holds: the recompute forward, whose backward replays unfused.
    pub fn forward_act(&mut self, x: &Tensor, act: Activation) -> Tensor {
        assert_eq!(x.cols(), self.d_in());
        let y = matmul_bias_act(x, &self.w.value, Some(self.b.value.as_slice()), act);
        self.cache_x = Some(x.clone());
        y
    }

    /// Backward: accumulates `dW = xᵀ·dy`, `db = Σrows dy`; returns
    /// `dx = dy·Wᵀ`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward before forward");
        assert_eq!(dy.rows(), x.rows());
        assert_eq!(dy.cols(), self.d_out());
        self.w.grad.add_assign(&matmul_tn(&x, dy));
        // Bias gradient: column sums of dy.
        let db = self.b.grad.as_mut_slice();
        for row in dy.as_slice().chunks_exact(dy.cols()) {
            for (g, &v) in db.iter_mut().zip(row) {
                *g += v;
            }
        }
        matmul_nt(dy, &self.w.value)
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference check of the full layer gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(11);
        let mut lin = Linear::new("t", 4, 3, &mut rng);
        let x = Tensor::randn(&[5, 4], 1.0, &mut rng);
        // Loss = sum(y²)/2 → dy = y.
        let y = lin.forward(&x);
        let dx = lin.backward(&y);

        let eps = 1e-3f32;
        let loss = |lin: &mut Linear, x: &Tensor| -> f32 {
            let y = lin.forward(x);
            0.5 * y.sq_norm()
        };

        // Check a few weight entries.
        for &(i, j) in &[(0usize, 0usize), (1, 2), (3, 1)] {
            let orig = lin.w.value.at(i, j);
            lin.w.value.set(i, j, orig + eps);
            let lp = loss(&mut lin, &x);
            lin.w.value.set(i, j, orig - eps);
            let lm = loss(&mut lin, &x);
            lin.w.value.set(i, j, orig);
            let fd = (lp - lm) / (2.0 * eps);
            let an = lin.w.grad.at(i, j);
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "w[{i},{j}]: fd={fd} an={an}"
            );
        }

        // Check an input entry.
        let mut x2 = x.clone();
        let orig = x2.at(2, 1);
        x2.set(2, 1, orig + eps);
        let lp = loss(&mut lin, &x2);
        x2.set(2, 1, orig - eps);
        let lm = loss(&mut lin, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - dx.at(2, 1)).abs() < 2e-2 * (1.0 + fd.abs()));
    }

    #[test]
    fn bias_gradient_is_row_sum() {
        let mut rng = Rng::seed_from(12);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let x = Tensor::zeros(&[3, 2]);
        lin.forward(&x);
        let dy = Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[3, 2]);
        lin.backward(&dy);
        assert_eq!(lin.b.grad.as_slice(), &[6.0, 60.0]);
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = Rng::seed_from(13);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        lin.forward(&x);
        lin.backward(&dy);
        let after_one = lin.w.grad.clone();
        lin.forward(&x);
        lin.backward(&dy);
        let mut doubled = after_one.clone();
        doubled.scale(2.0);
        assert!(lin.w.grad.approx_eq(&doubled, 1e-6));
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = Rng::seed_from(14);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        lin.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn param_visit_order_is_stable() {
        let mut rng = Rng::seed_from(15);
        let mut lin = Linear::new("t", 3, 4, &mut rng);
        let mut names = Vec::new();
        lin.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["t.w", "t.b"]);
        assert_eq!(lin.num_params(), 3 * 4 + 4);
    }
}
