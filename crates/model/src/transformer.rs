//! Decoder blocks and the full (possibly MoE) transformer.

use crate::attention::MultiHeadAttention;
use crate::config::ModelConfig;
use crate::embedding::Embedding;
use crate::ffn::FeedForward;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::loss::cross_entropy;
use crate::moe::MoELayer;
use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{matmul, matmul_nt, matmul_tn};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// The FFN of a block: dense or mixture-of-experts.
#[derive(Debug, Clone)]
pub enum BlockFfn {
    Dense(FeedForward),
    MoE(MoELayer),
}

/// One pre-norm decoder block: `x + Attn(LN(x))`, then `h + Ffn(LN(h))`.
#[derive(Debug, Clone)]
pub struct Block {
    pub ln1: LayerNorm,
    pub attn: MultiHeadAttention,
    pub ln2: LayerNorm,
    pub ffn: BlockFfn,
}

impl Block {
    pub fn new(name: &str, cfg: &ModelConfig, moe: bool, rng: &mut Rng) -> Block {
        let ffn = if moe {
            BlockFfn::MoE(if cfg.router_groups > 0 {
                MoELayer::new_two_level(
                    &format!("{name}.moe"),
                    cfg.d_model,
                    cfg.d_ff,
                    cfg.n_experts,
                    cfg.router_groups,
                    cfg.capacity_factor,
                    cfg.aux_weight,
                    rng,
                )
            } else {
                MoELayer::new(
                    &format!("{name}.moe"),
                    cfg.d_model,
                    cfg.d_ff,
                    cfg.n_experts,
                    cfg.gate,
                    cfg.capacity_factor,
                    cfg.aux_weight,
                    rng,
                )
            })
        } else {
            BlockFfn::Dense(FeedForward::new(
                &format!("{name}.ffn"),
                cfg.d_model,
                cfg.d_ff,
                rng,
            ))
        };
        let mut attn =
            MultiHeadAttention::new(&format!("{name}.attn"), cfg.d_model, cfg.n_heads, rng);
        if cfg.rope {
            attn = attn.with_rope();
        }
        Block {
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.d_model),
            attn,
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.d_model),
            ffn,
        }
    }

    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        let a = self.ln1.forward(x);
        let a = self.attn.forward(&a, batch, seq);
        let mut h = x.clone();
        h.add_assign(&a);

        let f = self.ln2.forward(&h);
        let f = match &mut self.ffn {
            BlockFfn::Dense(ffn) => ffn.forward(&f),
            BlockFfn::MoE(moe) => moe.forward(&f),
        };
        let mut y = h;
        y.add_assign(&f);
        y
    }

    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        // FFN path.
        let df = match &mut self.ffn {
            BlockFfn::Dense(ffn) => ffn.backward(dy),
            BlockFfn::MoE(moe) => moe.backward(dy),
        };
        let mut dh = self.ln2.backward(&df);
        dh.add_assign(dy); // residual

        // Attention path.
        let da = self.attn.backward(&dh);
        let mut dx = self.ln1.backward(&da);
        dx.add_assign(&dh); // residual
        dx
    }

    /// Incremental (KV-cached) forward of one position. Inference-only.
    pub fn forward_incremental(
        &mut self,
        x: &Tensor,
        kv: &mut crate::attention::KvCache,
    ) -> Tensor {
        let a = self.ln1.forward(x);
        let a = self.attn.forward_incremental(&a, kv);
        let mut h = x.clone();
        h.add_assign(&a);
        let f = self.ln2.forward(&h);
        let f = match &mut self.ffn {
            BlockFfn::Dense(ffn) => ffn.forward(&f),
            BlockFfn::MoE(moe) => moe.forward(&f),
        };
        let mut y = h;
        y.add_assign(&f);
        y
    }

    /// Auxiliary balance loss of the last forward (0 for dense blocks).
    pub fn aux_loss(&self) -> f32 {
        match &self.ffn {
            BlockFfn::Dense(_) => 0.0,
            BlockFfn::MoE(moe) => moe.last_aux_loss(),
        }
    }
}

impl HasParams for Block {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        match &mut self.ffn {
            BlockFfn::Dense(ffn) => ffn.visit_params(f),
            BlockFfn::MoE(moe) => moe.visit_params(f),
        }
    }
}

/// Statistics returned by a training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepStats {
    /// Mean cross-entropy over the batch.
    pub ce_loss: f32,
    /// Sum of auxiliary balance losses.
    pub aux_loss: f32,
    /// Tokens processed.
    pub tokens: usize,
}

impl StepStats {
    /// Total loss the optimizer descends.
    pub fn total(&self) -> f32 {
        self.ce_loss + self.aux_loss
    }
}

/// A GPT-style decoder language model whose alternate blocks may carry MoE
/// FFNs, per the [`ModelConfig`].
#[derive(Debug, Clone)]
pub struct Transformer {
    pub cfg: ModelConfig,
    pub tok: Embedding,
    pub pos: Embedding,
    pub blocks: Vec<Block>,
    pub ln_f: LayerNorm,
    pub head: Linear,
    /// Final hidden states cached for the tied-head backward.
    tied_cache: Option<Tensor>,
}

impl Transformer {
    pub fn new(cfg: ModelConfig, rng: &mut Rng) -> Transformer {
        let blocks = (0..cfg.n_layers)
            .map(|i| Block::new(&format!("blocks.{i}"), &cfg, cfg.is_moe_block(i), rng))
            .collect();
        Transformer {
            tok: Embedding::new("tok", cfg.vocab, cfg.d_model, rng),
            pos: Embedding::new("pos", cfg.max_seq, cfg.d_model, rng),
            blocks,
            ln_f: LayerNorm::new("ln_f", cfg.d_model),
            head: Linear::new("head", cfg.d_model, cfg.vocab, rng),
            tied_cache: None,
            cfg,
        }
    }

    /// LM-head projection, honoring embedding tying.
    fn head_forward(&mut self, x: &Tensor) -> Tensor {
        if self.cfg.tie_embeddings {
            self.tied_cache = Some(x.clone());
            matmul_nt(x, &self.tok.table.value)
        } else {
            self.head.forward(x)
        }
    }

    /// Backward of the LM-head projection; returns dx and accumulates the
    /// weight gradient (into the embedding table when tied).
    fn head_backward(&mut self, dlogits: &Tensor) -> Tensor {
        if self.cfg.tie_embeddings {
            let x = self
                .tied_cache
                .take()
                .expect("tied head backward before forward");
            self.tok.table.grad.add_assign(&matmul_tn(dlogits, &x));
            matmul(dlogits, &self.tok.table.value)
        } else {
            self.head.backward(dlogits)
        }
    }

    /// Forward over `batch` sequences of length `seq` (tokens flattened
    /// batch-major). Returns `[batch·seq, vocab]` logits.
    pub fn forward(&mut self, tokens: &[usize], batch: usize, seq: usize) -> Tensor {
        assert_eq!(tokens.len(), batch * seq);
        assert!(seq <= self.cfg.max_seq, "sequence longer than max_seq");
        let mut x = self.tok.forward(tokens);
        if !self.cfg.rope {
            let pos_ids: Vec<usize> = (0..batch * seq).map(|i| i % seq).collect();
            x.add_assign(&self.pos.forward(&pos_ids));
        }
        for b in &mut self.blocks {
            x = b.forward(&x, batch, seq);
        }
        let x = self.ln_f.forward(&x);
        self.head_forward(&x)
    }

    /// Backward from `dlogits` all the way to the embeddings.
    pub fn backward(&mut self, dlogits: &Tensor) {
        let dx = self.head_backward(dlogits);
        let mut dx = self.ln_f.backward(&dx);
        for b in self.blocks.iter_mut().rev() {
            dx = b.backward(&dx);
        }
        // The same gradient feeds both embedding tables (the position
        // table does not exist in the graph under RoPE).
        self.tok.backward(&dx);
        if !self.cfg.rope {
            self.pos.backward(&dx);
        }
    }

    /// Sum of the auxiliary balance losses of the last forward pass.
    pub fn aux_loss(&self) -> f32 {
        self.blocks.iter().map(|b| b.aux_loss()).sum()
    }

    /// Greedy autoregressive generation: extend `prompt` by `n` tokens,
    /// re-running the forward pass over a sliding window of at most
    /// `max_seq` (no KV cache — this is the reference decoder, not an
    /// inference engine).
    pub fn generate(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "generate needs a non-empty prompt");
        let mut seq: Vec<usize> = prompt.to_vec();
        for _ in 0..n {
            let window_start = seq.len().saturating_sub(self.cfg.max_seq);
            let window = &seq[window_start..];
            let logits = self.forward(window, 1, window.len());
            let next = logits.argmax_rows()[window.len() - 1];
            seq.push(next);
        }
        seq
    }

    /// Greedy generation with **KV caching**: each new token costs one
    /// incremental forward instead of re-running the whole window —
    /// `O(len)` attention per step instead of `O(len²)` recompute. The
    /// total length must fit in `max_seq` (absolute positions are cached).
    /// Produces exactly the same tokens as [`Transformer::generate`].
    pub fn generate_cached(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "generate needs a non-empty prompt");
        assert!(
            prompt.len() + n <= self.cfg.max_seq,
            "KV-cached generation cannot exceed max_seq ({}); use generate() \
             for sliding-window decoding",
            self.cfg.max_seq
        );
        let mut caches: Vec<crate::attention::KvCache> = (0..self.blocks.len())
            .map(|_| crate::attention::KvCache::new(self.cfg.d_model))
            .collect();
        let total = prompt.len() + n;
        let mut seq = prompt.to_vec();
        // Feed positions 0..total-1; the logits at each position predict the
        // next token, which we append once past the prompt.
        for pos in 0..total - 1 {
            let token = seq[pos];
            let mut x = self.tok.forward(&[token]);
            if !self.cfg.rope {
                x.add_assign(&self.pos.forward(&[pos]));
            }
            for (b, kv) in self.blocks.iter_mut().zip(caches.iter_mut()) {
                x = b.forward_incremental(&x, kv);
            }
            let x = self.ln_f.forward(&x);
            let logits = self.head_forward(&x);
            self.head.clear_cache();
            self.tied_cache = None;
            if pos + 1 >= prompt.len() {
                seq.push(logits.argmax_rows()[0]);
            }
        }
        seq
    }

    /// Stochastic generation with temperature and top-k filtering (KV
    /// cached). `temperature → 0` and `top_k = 1` both recover greedy
    /// decoding; higher temperatures flatten the distribution.
    pub fn generate_sampled(
        &mut self,
        prompt: &[usize],
        n: usize,
        temperature: f32,
        top_k: usize,
        rng: &mut Rng,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty());
        assert!(temperature >= 0.0);
        assert!(top_k >= 1);
        assert!(prompt.len() + n <= self.cfg.max_seq, "exceeds max_seq");
        let mut caches: Vec<crate::attention::KvCache> = (0..self.blocks.len())
            .map(|_| crate::attention::KvCache::new(self.cfg.d_model))
            .collect();
        let total = prompt.len() + n;
        let mut seq = prompt.to_vec();
        for pos in 0..total - 1 {
            let token = seq[pos];
            let mut x = self.tok.forward(&[token]);
            if !self.cfg.rope {
                x.add_assign(&self.pos.forward(&[pos]));
            }
            for (b, kv) in self.blocks.iter_mut().zip(caches.iter_mut()) {
                x = b.forward_incremental(&x, kv);
            }
            let x = self.ln_f.forward(&x);
            let logits = self.head_forward(&x);
            self.head.clear_cache();
            self.tied_cache = None;
            if pos + 1 >= prompt.len() {
                seq.push(sample_logits(logits.row(0), temperature, top_k, rng));
            }
        }
        seq
    }

    /// One full forward + loss + backward (no optimizer step). Gradients
    /// accumulate into the parameters; caller zeroes them between steps.
    pub fn train_batch(
        &mut self,
        tokens: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> StepStats {
        let logits = self.forward(tokens, batch, seq);
        let (ce, dlogits) = cross_entropy(&logits, targets);
        let aux = self.aux_loss();
        self.backward(&dlogits);
        StepStats {
            ce_loss: ce,
            aux_loss: aux,
            tokens: tokens.len(),
        }
    }
}

/// Sample a token id from `logits` at `temperature`, restricted to the
/// `top_k` highest-probability candidates. Zero temperature is greedy.
fn sample_logits(logits: &[f32], temperature: f32, top_k: usize, rng: &mut Rng) -> usize {
    // Greedy shortcut (also covers temperature == 0).
    let argmax = || {
        let mut best = 0usize;
        for i in 1..logits.len() {
            if logits[i] > logits[best] {
                best = i;
            }
        }
        best
    };
    if temperature <= 1e-6 || top_k == 1 {
        return argmax();
    }
    // Top-k candidate set.
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_unstable_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
    idx.truncate(top_k.min(logits.len()));
    // Softmax over the candidates at the given temperature.
    let max = logits[idx[0]];
    let weights: Vec<f64> = idx
        .iter()
        .map(|&i| (((logits[i] - max) / temperature) as f64).exp())
        .collect();
    idx[rng.weighted(&weights)]
}

impl HasParams for Transformer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        if !self.cfg.rope {
            self.pos.visit_params(f);
        }
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        if !self.cfg.tie_embeddings {
            self.head.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from(81);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let tokens: Vec<usize> = (0..2 * 8).map(|i| i % cfg.vocab).collect();
        let logits = m.forward(&tokens, 2, 8);
        assert_eq!(logits.shape(), &[16, cfg.vocab]);
        assert!(!logits.has_non_finite());
    }

    #[test]
    fn param_count_matches_config_formula() {
        let mut rng = Rng::seed_from(82);
        for cfg in [ModelConfig::tiny(), ModelConfig::tiny_dense()] {
            let mut m = Transformer::new(cfg, &mut rng);
            assert_eq!(
                m.num_params() as u128,
                cfg.count_params(),
                "formula vs real model for {cfg:?}"
            );
        }
    }

    #[test]
    fn loss_decreases_with_sgd() {
        // A few plain-SGD steps on a repeating pattern must reduce the loss —
        // the end-to-end backward is sound.
        let mut rng = Rng::seed_from(83);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let tokens: Vec<usize> = (0..16).map(|i| (i * 7) % cfg.vocab).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 7 + 7) % cfg.vocab).collect();

        let first = m.train_batch(&tokens, &targets, 2, 8);
        let lr = 0.5;
        for _ in 0..30 {
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-lr, &g);
            });
            m.zero_grad();
            m.train_batch(&tokens, &targets, 2, 8);
        }
        let last = m.train_batch(&tokens, &targets, 2, 8);
        assert!(
            last.ce_loss < first.ce_loss * 0.8,
            "loss did not drop: {} -> {}",
            first.ce_loss,
            last.ce_loss
        );
    }

    #[test]
    fn moe_blocks_report_aux_loss() {
        let mut rng = Rng::seed_from(84);
        let mut m = Transformer::new(ModelConfig::tiny(), &mut rng);
        let tokens: Vec<usize> = (0..8).collect();
        m.forward(&tokens, 1, 8);
        assert!(m.aux_loss() > 0.0);

        let mut dense = Transformer::new(ModelConfig::tiny_dense(), &mut rng);
        dense.forward(&tokens, 1, 8);
        assert_eq!(dense.aux_loss(), 0.0);
    }

    #[test]
    fn gradients_flow_to_every_parameter_kind() {
        let mut rng = Rng::seed_from(85);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let tokens: Vec<usize> = (0..16).map(|i| i % cfg.vocab).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i + 1) % cfg.vocab).collect();
        m.train_batch(&tokens, &targets, 2, 8);
        let mut zero_grads = Vec::new();
        m.visit_params(&mut |p| {
            if p.grad.sq_norm() == 0.0 {
                zero_grads.push(p.name.clone());
            }
        });
        // Unused vocab rows and idle experts legitimately have zero grads;
        // everything structural must not.
        for name in &zero_grads {
            assert!(
                name.contains("expert"),
                "structural parameter {name} received no gradient"
            );
        }
    }

    #[test]
    fn sampled_generation_behaves() {
        let mut rng = Rng::seed_from(95);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        // top_k = 1 recovers greedy exactly.
        let greedy = m.generate_cached(&[2, 3], 6);
        let mut srng = Rng::seed_from(1);
        let det = m.generate_sampled(&[2, 3], 6, 1.0, 1, &mut srng);
        assert_eq!(greedy, det);
        // Zero temperature too.
        let mut srng = Rng::seed_from(2);
        assert_eq!(m.generate_sampled(&[2, 3], 6, 0.0, 5, &mut srng), greedy);
        // High temperature with a wide candidate set diversifies across
        // seeds; all outputs stay in vocab.
        let mut a_rng = Rng::seed_from(3);
        let mut b_rng = Rng::seed_from(4);
        let a = m.generate_sampled(&[2, 3], 8, 2.0, cfg.vocab, &mut a_rng);
        let b = m.generate_sampled(&[2, 3], 8, 2.0, cfg.vocab, &mut b_rng);
        assert_ne!(a, b, "high-temperature samples should differ across seeds");
        assert!(a.iter().chain(&b).all(|&t| t < cfg.vocab));
        // Same seed → same sample.
        let mut c_rng = Rng::seed_from(3);
        assert_eq!(
            a,
            m.generate_sampled(&[2, 3], 8, 2.0, cfg.vocab, &mut c_rng)
        );
    }

    #[test]
    fn tied_embeddings_train_and_count() {
        let mut rng = Rng::seed_from(94);
        let cfg = ModelConfig {
            tie_embeddings: true,
            ..ModelConfig::tiny()
        };
        let mut m = Transformer::new(cfg, &mut rng);
        assert_eq!(m.num_params() as u128, cfg.count_params());
        // Tying removes the whole head: d·vocab + vocab parameters.
        assert_eq!(
            ModelConfig::tiny().count_params() - cfg.count_params(),
            (cfg.d_model * cfg.vocab + cfg.vocab) as u128
        );

        // Gradcheck through the tied head: perturb an embedding entry used
        // by both the input gather and the output projection.
        let tokens = vec![3usize, 7, 3, 1, 9, 2, 5, 0];
        let targets = vec![7usize, 3, 1, 9, 2, 5, 0, 4];
        m.train_batch(&tokens, &targets, 1, 8);
        let an = m.tok.table.grad.at(3, 2);
        let eps = 1e-3f32;
        let orig = m.tok.table.value.at(3, 2);
        m.zero_grad();
        m.tok.table.value.set(3, 2, orig + eps);
        let lp = m.train_batch(&tokens, &targets, 1, 8).total();
        m.tok.table.value.set(3, 2, orig - eps);
        m.zero_grad();
        let lm = m.train_batch(&tokens, &targets, 1, 8).total();
        m.tok.table.value.set(3, 2, orig);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
            "tied grad: fd={fd} an={an}"
        );

        // Training works end to end.
        m.zero_grad();
        let first = m.train_batch(&tokens, &targets, 1, 8);
        for _ in 0..40 {
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.3, &g);
            });
            m.zero_grad();
            m.train_batch(&tokens, &targets, 1, 8);
        }
        let last = m.train_batch(&tokens, &targets, 1, 8);
        assert!(last.ce_loss < first.ce_loss * 0.5);
        // Cached generation honors tying too.
        assert_eq!(m.generate(&[3, 7], 4), m.generate_cached(&[3, 7], 4));
    }

    #[test]
    fn rope_model_trains_and_generates() {
        let mut rng = Rng::seed_from(93);
        let cfg = ModelConfig {
            rope: true,
            ..ModelConfig::tiny()
        };
        let mut m = Transformer::new(cfg, &mut rng);
        // The position table is out of the graph: param count excludes it.
        assert_eq!(m.num_params() as u128, cfg.count_params());
        assert_eq!(
            ModelConfig::tiny().count_params() - cfg.count_params(),
            (cfg.max_seq * cfg.d_model) as u128
        );
        let tokens: Vec<usize> = (0..16).map(|i| (i * 3) % cfg.vocab).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 3 + 2) % cfg.vocab).collect();
        let first = m.train_batch(&tokens, &targets, 2, 8);
        for _ in 0..40 {
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.3, &g);
            });
            m.zero_grad();
            m.train_batch(&tokens, &targets, 2, 8);
        }
        let last = m.train_batch(&tokens, &targets, 2, 8);
        assert!(
            last.ce_loss < first.ce_loss * 0.5,
            "{} -> {}",
            first.ce_loss,
            last.ce_loss
        );
        // Cached and recompute decoding agree under RoPE too.
        let a = m.generate(&[1, 2], 5);
        let b = m.generate_cached(&[1, 2], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn two_level_router_model_trains() {
        let mut rng = Rng::seed_from(90);
        let cfg = ModelConfig {
            n_experts: 8,
            router_groups: 2,
            ..ModelConfig::tiny()
        };
        let mut m = Transformer::new(cfg, &mut rng);
        // Param-count formula covers the extra group projection.
        assert_eq!(m.num_params() as u128, cfg.count_params());
        let tokens: Vec<usize> = (0..16).map(|i| (i * 5) % cfg.vocab).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 5 + 3) % cfg.vocab).collect();
        let first = m.train_batch(&tokens, &targets, 2, 8);
        for _ in 0..40 {
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.3, &g);
            });
            m.zero_grad();
            m.train_batch(&tokens, &targets, 2, 8);
        }
        let last = m.train_batch(&tokens, &targets, 2, 8);
        assert!(
            last.ce_loss < first.ce_loss * 0.5,
            "two-level model failed to learn: {} -> {}",
            first.ce_loss,
            last.ce_loss
        );
        // The aux loss comes from the group stage.
        assert!(last.aux_loss > 0.0);
    }

    #[test]
    fn generate_extends_prompt_and_respects_window() {
        let mut rng = Rng::seed_from(87);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let out = m.generate(&[1, 2, 3], 5);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < cfg.vocab));
        // Prompts longer than max_seq still work via the sliding window.
        let long_prompt: Vec<usize> = (0..cfg.max_seq + 4).map(|i| i % cfg.vocab).collect();
        let out = m.generate(&long_prompt, 3);
        assert_eq!(out.len(), long_prompt.len() + 3);
    }

    #[test]
    fn cached_generation_matches_recompute_generation() {
        let mut rng = Rng::seed_from(91);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        for (prompt, n) in [(vec![1usize, 2, 3], 6usize), (vec![9], 4), (vec![5, 5], 0)] {
            let slow = m.generate(&prompt, n);
            let fast = m.generate_cached(&prompt, n);
            assert_eq!(slow, fast, "prompt {prompt:?} n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed max_seq")]
    fn cached_generation_rejects_overlong_output() {
        let mut rng = Rng::seed_from(92);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        m.generate_cached(&[0], cfg.max_seq);
    }

    #[test]
    fn trained_model_generates_the_learned_pattern() {
        // Teach next(t) = (t + 1) mod vocab, then verify the decoder
        // predicts it and that greedy generation continues a sequence.
        let mut rng = Rng::seed_from(88);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let mut data_rng = Rng::seed_from(89);
        for it in 0..400 {
            let tokens: Vec<usize> = (0..16).map(|_| data_rng.below(cfg.vocab)).collect();
            let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
            m.train_batch(&tokens, &targets, 2, 8);
            // Step decay keeps late training stable across init seeds.
            let lr = if it < 200 { 0.3 } else { 0.1 };
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-lr, &g);
            });
            m.zero_grad();
        }
        // Per-position prediction accuracy on held-out data.
        let tokens: Vec<usize> = (0..16).map(|_| data_rng.below(cfg.vocab)).collect();
        let logits = m.forward(&tokens, 2, 8);
        let preds = logits.argmax_rows();
        let correct = preds
            .iter()
            .zip(&tokens)
            .filter(|(&p, &t)| p == (t + 1) % cfg.vocab)
            .count();
        assert!(
            correct >= 14,
            "only {correct}/16 next-token predictions correct"
        );
        // Greedy continuation from an in-distribution prompt mostly follows
        // the successor chain (compounding errors allowed at the tail).
        let out = m.generate(&[3, 4, 5, 6], 4);
        assert_eq!(&out[..4], &[3, 4, 5, 6]);
        let follow = out
            .windows(2)
            .filter(|w| w[1] == (w[0] + 1) % cfg.vocab)
            .count();
        assert!(follow >= 5, "chain broke early: {out:?}");
    }

    #[test]
    #[should_panic(expected = "longer than max_seq")]
    fn rejects_overlong_sequences() {
        let mut rng = Rng::seed_from(86);
        let cfg = ModelConfig::tiny();
        let mut m = Transformer::new(cfg, &mut rng);
        let tokens = vec![0usize; cfg.max_seq + 1];
        m.forward(&tokens, 1, cfg.max_seq + 1);
    }
}
