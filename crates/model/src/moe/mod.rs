//! Mixture-of-experts: gating, dispatch, and the MoE layer.
//!
//! The MoE layer is the heart of brain-scale training: parameter count
//! scales with the number of experts while per-token FLOPs stay constant,
//! because each token is routed to only one or two expert FFNs. The pieces:
//!
//! * [`Gate`] — the router: a linear projection to per-expert logits, a
//!   softmax, and a selection policy ([`GateKind`]) with **capacity
//!   limiting** (an expert accepts at most `ceil(cf·n·k/E)` tokens; the
//!   rest are dropped and ride the residual connection). The gate is fully
//!   differentiable through the combine weights and carries the switch-style
//!   auxiliary load-balancing loss.
//! * [`Routing`] — the dispatch plan a gate produces: token→expert
//!   assignments with combine weights, per-expert loads, drop counts, and
//!   balance statistics. This is also exactly what the expert-parallel
//!   runtime serializes into the all-to-all.
//! * [`MoELayer`] — single-rank reference MoE layer (all experts local),
//!   used for convergence experiments and as the semantic baseline the
//!   distributed implementation in `bagualu-parallel` must match.

pub mod gate;
pub mod layer;
pub mod router;

pub use gate::{Assignment, Gate, GateKind, Routing};
pub use layer::MoELayer;
pub use router::{Router, TwoLevelGate};
