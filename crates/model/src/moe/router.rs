//! Two-level hierarchical router, and the [`Router`] abstraction.
//!
//! A flat gate computes `d_model × n_experts` logits per token; at 108,000
//! experts that projection alone dominates per-token FLOPs (see experiment
//! E9). The **two-level gate** routes in two stages — softmax over `G`
//! groups, then softmax over the `E/G` experts of the chosen group — for
//! `d·(G + E/G)` work per token, minimized at `G = √E` (a 164× reduction at
//! 108k experts). The combine weight is the product of the two stage
//! probabilities, and both stages are differentiable through the chosen
//! path (selection itself is, as always, treated as constant).

use crate::moe::gate::{Assignment, Gate, Routing};
use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{matmul, matmul_nt, matmul_tn, softmax_rows};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// Two-stage router: groups, then experts within the chosen group.
#[derive(Debug, Clone)]
pub struct TwoLevelGate {
    /// Group projection `[d, G]`.
    pub wg_group: Param,
    /// Expert projection `[d, E]` — only the chosen group's `E/G` columns
    /// are evaluated per token.
    pub wg_expert: Param,
    pub groups: usize,
    pub capacity_factor: f32,
    pub aux_weight: f32,
    cache: Option<TwoLevelCache>,
}

#[derive(Debug, Clone)]
struct TwoLevelCache {
    x: Tensor,
    /// Group softmax over the full batch.
    group_probs: Tensor,
    /// Per token: chosen group and the within-group softmax row.
    chosen: Vec<(usize, Vec<f32>)>,
    /// Group-level first-choice fractions (for the aux loss).
    frac: Vec<f32>,
}

impl TwoLevelGate {
    pub fn new(
        name: &str,
        d_model: usize,
        n_experts: usize,
        groups: usize,
        capacity_factor: f32,
        aux_weight: f32,
        rng: &mut Rng,
    ) -> TwoLevelGate {
        assert!(
            groups > 0 && n_experts.is_multiple_of(groups),
            "groups must divide experts"
        );
        TwoLevelGate {
            wg_group: Param::new(
                format!("{name}.wg_group"),
                Tensor::xavier(d_model, groups, rng),
            ),
            wg_expert: Param::new(
                format!("{name}.wg_expert"),
                Tensor::xavier(d_model, n_experts, rng),
            ),
            groups,
            capacity_factor,
            aux_weight,
            cache: None,
        }
    }

    pub fn n_experts(&self) -> usize {
        self.wg_expert.value.cols()
    }

    fn experts_per_group(&self) -> usize {
        self.n_experts() / self.groups
    }

    /// Per-expert capacity for `n` tokens (top-1 semantics: k = 1).
    pub fn capacity(&self, n: usize) -> usize {
        let e = self.n_experts();
        ((self.capacity_factor as f64 * n as f64 / e as f64).ceil() as usize).max(1)
    }

    /// Per-token routing FLOPs of this gate (vs `2·d·E` for a flat gate).
    pub fn flops_per_token(d_model: usize, n_experts: usize, groups: usize) -> f64 {
        2.0 * d_model as f64 * (groups as f64 + n_experts as f64 / groups as f64)
    }

    /// Route a `[n, d]` batch.
    pub fn forward(&mut self, x: &Tensor) -> Routing {
        let n = x.rows();
        let d = x.cols();
        let e = self.n_experts();
        let epg = self.experts_per_group();
        let capacity = self.capacity(n);

        let group_logits = matmul(x, &self.wg_group.value);
        let group_probs = softmax_rows(&group_logits);

        let mut assignments = Vec::with_capacity(n);
        let mut load = vec![0usize; e];
        let mut raw_load = vec![0usize; e];
        let mut group_first = vec![0usize; self.groups];
        let mut dropped = 0usize;
        let mut chosen = Vec::with_capacity(n);

        for t in 0..n {
            // Stage 1: pick the group.
            let grow = group_probs.row(t);
            let mut g = 0usize;
            for i in 1..self.groups {
                if grow[i] > grow[g] {
                    g = i;
                }
            }
            group_first[g] += 1;
            // Stage 2: logits over only the chosen group's experts.
            let xrow = x.row(t);
            let mut logits = vec![0.0f32; epg];
            for (j, l) in logits.iter_mut().enumerate() {
                let col = g * epg + j;
                let mut s = 0.0f32;
                for (k, &xk) in xrow.iter().enumerate().take(d) {
                    s += xk * self.wg_expert.value.at(k, col);
                }
                *l = s;
            }
            // Softmax within the group.
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for l in logits.iter_mut() {
                *l = (*l - max).exp();
                sum += *l;
            }
            for l in logits.iter_mut() {
                *l /= sum;
            }
            let mut j = 0usize;
            for i in 1..epg {
                if logits[i] > logits[j] {
                    j = i;
                }
            }
            let expert = g * epg + j;
            raw_load[expert] += 1;
            if load[expert] < capacity {
                load[expert] += 1;
                assignments.push(Assignment {
                    token: t,
                    expert,
                    weight: grow[g] * logits[j],
                });
            } else {
                dropped += 1;
            }
            chosen.push((g, logits));
        }

        // Group-level switch aux loss.
        let frac: Vec<f32> = group_first
            .iter()
            .map(|&c| if n == 0 { 0.0 } else { c as f32 / n as f32 })
            .collect();
        let mut aux = 0.0f32;
        if n > 0 {
            for (g, f) in frac.iter().enumerate().take(self.groups) {
                let mean_p: f32 = (0..n).map(|t| group_probs.at(t, g)).sum::<f32>() / n as f32;
                aux += f * mean_p;
            }
            aux *= self.groups as f32 * self.aux_weight;
        }

        self.cache = Some(TwoLevelCache {
            x: x.clone(),
            group_probs,
            chosen,
            frac,
        });
        Routing {
            assignments,
            load,
            raw_load,
            dropped,
            capacity,
            aux_loss: aux,
        }
    }

    /// Backward: `dweights[i] = ∂L/∂assignments[i].weight`. Returns the
    /// gate's `dx` contribution and accumulates both projections' grads.
    pub fn backward(&mut self, routing: &Routing, dweights: &[f32]) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("TwoLevelGate::backward before forward");
        let n = cache.x.rows();
        let d = cache.x.cols();
        let epg = self.experts_per_group();
        assert_eq!(dweights.len(), routing.assignments.len());

        // Stage gradients per token.
        let mut dgroup_probs = Tensor::zeros(&[n, self.groups]);
        // Within-group prob gradient, sparse per token.
        let mut dexpert_probs: Vec<Option<(usize, Vec<f32>)>> = vec![None; n];
        for (a, &dw) in routing.assignments.iter().zip(dweights) {
            let (g, probs) = &cache.chosen[a.token];
            let j = a.expert - g * epg;
            // weight = pg · pe.
            let cur = dgroup_probs.at(a.token, *g);
            dgroup_probs.set(a.token, *g, cur + dw * probs[j]);
            let pg = cache.group_probs.at(a.token, *g);
            let mut dpe = vec![0.0f32; epg];
            dpe[j] = dw * pg;
            dexpert_probs[a.token] = Some((*g, dpe));
        }

        // Aux-loss gradient on group probs.
        if n > 0 && self.aux_weight != 0.0 {
            let scale = self.aux_weight * self.groups as f32 / n as f32;
            for t in 0..n {
                for g in 0..self.groups {
                    let cur = dgroup_probs.at(t, g);
                    dgroup_probs.set(t, g, cur + scale * cache.frac[g]);
                }
            }
        }

        // Group softmax backward (dense) → dlogits_group.
        let mut dlogits_group = dgroup_probs;
        for t in 0..n {
            let prow = cache.group_probs.row(t);
            let drow = dlogits_group.row_mut(t);
            let dot: f32 = drow.iter().zip(prow).map(|(a, b)| a * b).sum();
            for (dj, &pj) in drow.iter_mut().zip(prow) {
                *dj = pj * (*dj - dot);
            }
        }
        self.wg_group
            .grad
            .add_assign(&matmul_tn(&cache.x, &dlogits_group));
        let mut dx = matmul_nt(&dlogits_group, &self.wg_group.value);

        // Expert-stage backward, token by token (sparse columns).
        for (t, slot) in dexpert_probs.iter().enumerate().take(n) {
            let Some((g, dpe)) = slot else { continue };
            let probs = &cache.chosen[t].1;
            let dot: f32 = dpe.iter().zip(probs).map(|(a, b)| a * b).sum();
            let xrow = cache.x.row(t).to_vec();
            let dxrow = dx.row_mut(t);
            for (j, (&dp, &p)) in dpe.iter().zip(probs).enumerate() {
                let dl = p * (dp - dot); // softmax backward
                if dl == 0.0 {
                    continue;
                }
                let col = g * epg + j;
                for k in 0..d {
                    // dWe[k, col] += x[t,k]·dl ; dx[t,k] += We[k,col]·dl.
                    let cur = self.wg_expert.grad.at(k, col);
                    self.wg_expert.grad.set(k, col, cur + xrow[k] * dl);
                    dxrow[k] += self.wg_expert.value.at(k, col) * dl;
                }
            }
        }
        dx
    }
}

impl HasParams for TwoLevelGate {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wg_group);
        f(&mut self.wg_expert);
    }
}

/// A routing policy: the flat gate or the two-level gate, behind one API.
#[derive(Debug, Clone)]
pub enum Router {
    Flat(Gate),
    TwoLevel(TwoLevelGate),
}

impl Router {
    pub fn n_experts(&self) -> usize {
        match self {
            Router::Flat(g) => g.n_experts(),
            Router::TwoLevel(g) => g.n_experts(),
        }
    }

    pub fn forward(&mut self, x: &Tensor) -> Routing {
        match self {
            Router::Flat(g) => g.forward(x),
            Router::TwoLevel(g) => g.forward(x),
        }
    }

    pub fn backward(&mut self, routing: &Routing, dweights: &[f32]) -> Tensor {
        match self {
            Router::Flat(g) => g.backward(routing, dweights),
            Router::TwoLevel(g) => g.backward(routing, dweights),
        }
    }

    /// The flat gate, if this router is flat (the distributed runtime
    /// currently requires it).
    pub fn as_flat(&self) -> Option<&Gate> {
        match self {
            Router::Flat(g) => Some(g),
            Router::TwoLevel(_) => None,
        }
    }

    pub fn as_flat_mut(&mut self) -> Option<&mut Gate> {
        match self {
            Router::Flat(g) => Some(g),
            Router::TwoLevel(_) => None,
        }
    }
}

impl HasParams for Router {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Router::Flat(g) => g.visit_params(f),
            Router::TwoLevel(g) => g.visit_params(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(e: usize, groups: usize) -> TwoLevelGate {
        let mut rng = Rng::seed_from(91);
        TwoLevelGate::new("t", 8, e, groups, 8.0, 0.0, &mut rng)
    }

    #[test]
    fn routes_every_token_within_chosen_group() {
        let mut rng = Rng::seed_from(92);
        let mut g = gate(16, 4);
        let x = Tensor::randn(&[24, 8], 1.0, &mut rng);
        let r = g.forward(&x);
        assert_eq!(r.assignments.len(), 24);
        for a in &r.assignments {
            assert!(a.expert < 16);
            assert!(a.weight > 0.0 && a.weight <= 1.0);
        }
    }

    #[test]
    fn weight_is_product_of_stage_probs() {
        // With one group, pg = 1 and the weight is the within-group prob.
        let mut rng = Rng::seed_from(93);
        let mut g = gate(4, 1);
        let x = Tensor::randn(&[6, 8], 1.0, &mut rng);
        let r = g.forward(&x);
        let sum_check: f32 = r.assignments.iter().map(|a| a.weight).sum();
        assert!(sum_check > 0.0);
        for a in &r.assignments {
            assert!(a.weight <= 1.0);
        }
    }

    #[test]
    fn flops_advantage_at_scale() {
        let flat = 2.0 * 4096.0 * 108_000.0;
        let two = TwoLevelGate::flops_per_token(4096, 108_000, 329); // ≈ √E
        assert!(flat / two > 100.0, "ratio {}", flat / two);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(94);
        let mut g = gate(6, 2);
        let x = Tensor::randn(&[5, 8], 1.0, &mut rng);

        // Toy loss: ½ Σ w².
        let r = g.forward(&x);
        let dweights: Vec<f32> = r.assignments.iter().map(|a| a.weight).collect();
        let dx = g.backward(&r, &dweights);

        let loss = |g: &mut TwoLevelGate, x: &Tensor| -> f32 {
            let r = g.forward(x);
            0.5 * r
                .assignments
                .iter()
                .map(|a| a.weight * a.weight)
                .sum::<f32>()
        };
        let routing_sig = |g: &mut TwoLevelGate, x: &Tensor| -> Vec<usize> {
            g.forward(x).assignments.iter().map(|a| a.expert).collect()
        };
        let base_sig = routing_sig(&mut g, &x);
        let eps = 1e-3f32;

        // Input entries (skip where routing flips — non-differentiable).
        let mut checked = 0;
        for i in 0..5 {
            for j in 0..8 {
                let mut x2 = x.clone();
                x2.set(i, j, x.at(i, j) + eps);
                if routing_sig(&mut g, &x2) != base_sig {
                    continue;
                }
                let lp = loss(&mut g, &x2);
                x2.set(i, j, x.at(i, j) - eps);
                if routing_sig(&mut g, &x2) != base_sig {
                    continue;
                }
                let lm = loss(&mut g, &x2);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx.at(i, j)).abs() < 5e-2 * (1.0 + fd.abs()),
                    "x[{i},{j}]: fd={fd} an={}",
                    dx.at(i, j)
                );
                checked += 1;
            }
        }
        assert!(checked > 15, "too few entries checked: {checked}");

        // One weight from each projection.
        g.zero_grad();
        let r = g.forward(&x);
        let dweights: Vec<f32> = r.assignments.iter().map(|a| a.weight).collect();
        g.backward(&r, &dweights);
        for (pick, which) in [(true, "group"), (false, "expert")] {
            let (i, j) = (2usize, 1usize);
            let orig = if pick {
                g.wg_group.value.at(i, j)
            } else {
                g.wg_expert.value.at(i, j)
            };
            let setv = |g: &mut TwoLevelGate, v: f32| {
                if pick {
                    g.wg_group.value.set(i, j, v)
                } else {
                    g.wg_expert.value.set(i, j, v)
                }
            };
            setv(&mut g, orig + eps);
            if routing_sig(&mut g, &x) != base_sig {
                setv(&mut g, orig);
                continue;
            }
            let lp = loss(&mut g, &x);
            setv(&mut g, orig - eps);
            let lm = loss(&mut g, &x);
            setv(&mut g, orig);
            let fd = (lp - lm) / (2.0 * eps);
            let an = if pick {
                g.wg_group.grad.at(i, j)
            } else {
                g.wg_expert.grad.at(i, j)
            };
            assert!(
                (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
                "{which}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let mut g = gate(4, 2);
        g.capacity_factor = 1.0;
        // Identical tokens: all want the same expert.
        let x = Tensor::ones(&[8, 8]);
        let r = g.forward(&x);
        assert_eq!(r.capacity, 2);
        assert!(r.dropped > 0);
        assert!(r.load.iter().all(|&l| l <= 2));
    }

    #[test]
    #[should_panic(expected = "groups must divide")]
    fn groups_must_divide_experts() {
        let mut rng = Rng::seed_from(95);
        TwoLevelGate::new("t", 8, 10, 3, 1.0, 0.0, &mut rng);
    }

    #[test]
    fn router_enum_dispatches() {
        let mut rng = Rng::seed_from(96);
        let x = Tensor::randn(&[4, 8], 1.0, &mut rng);
        let mut flat = Router::Flat(Gate::new(
            "f",
            8,
            4,
            crate::moe::gate::GateKind::Top1,
            8.0,
            0.0,
            &mut rng,
        ));
        let mut two = Router::TwoLevel(gate(4, 2));
        assert_eq!(flat.n_experts(), 4);
        assert_eq!(two.n_experts(), 4);
        assert!(flat.as_flat().is_some());
        assert!(two.as_flat().is_none());
        let r1 = flat.forward(&x);
        let r2 = two.forward(&x);
        assert_eq!(r1.assignments.len(), 4);
        assert_eq!(r2.assignments.len(), 4);
    }
}
