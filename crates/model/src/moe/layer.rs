//! Single-rank MoE layer: gate → dispatch → experts → combine.
//!
//! This is the semantic reference: the distributed expert-parallel layer in
//! `bagualu-parallel` performs exactly this computation with the dispatch
//! and combine crossing an all-to-all. Tokens dropped by capacity limiting
//! contribute zero here and ride the transformer block's residual.

use crate::ffn::FeedForward;
use crate::moe::gate::{Gate, GateKind, Routing};
use crate::moe::router::{Router, TwoLevelGate};
use crate::param::{HasParams, Param};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// A mixture-of-experts FFN layer with all experts resident locally.
#[derive(Debug, Clone)]
pub struct MoELayer {
    pub router: Router,
    pub experts: Vec<FeedForward>,
    cache: Option<MoECache>,
}

#[derive(Debug, Clone)]
struct MoECache {
    routing: Routing,
    /// Per expert: indices into `routing.assignments` of the tokens it got.
    per_expert: Vec<Vec<usize>>,
    /// Per expert: its output rows (aligned with `per_expert`).
    outputs: Vec<Tensor>,
    dy_shape: Vec<usize>,
}

impl MoELayer {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        d_model: usize,
        d_ff: usize,
        n_experts: usize,
        kind: GateKind,
        capacity_factor: f32,
        aux_weight: f32,
        rng: &mut Rng,
    ) -> MoELayer {
        MoELayer {
            router: Router::Flat(Gate::new(
                &format!("{name}.gate"),
                d_model,
                n_experts,
                kind,
                capacity_factor,
                aux_weight,
                rng,
            )),
            experts: (0..n_experts)
                .map(|e| FeedForward::new(&format!("{name}.expert{e}"), d_model, d_ff, rng))
                .collect(),
            cache: None,
        }
    }

    /// Build with the two-level hierarchical router (`groups` must divide
    /// `n_experts`). Single-rank only — the distributed runtime requires a
    /// flat gate.
    #[allow(clippy::too_many_arguments)]
    pub fn new_two_level(
        name: &str,
        d_model: usize,
        d_ff: usize,
        n_experts: usize,
        groups: usize,
        capacity_factor: f32,
        aux_weight: f32,
        rng: &mut Rng,
    ) -> MoELayer {
        MoELayer {
            router: Router::TwoLevel(TwoLevelGate::new(
                &format!("{name}.gate"),
                d_model,
                n_experts,
                groups,
                capacity_factor,
                aux_weight,
                rng,
            )),
            experts: (0..n_experts)
                .map(|e| FeedForward::new(&format!("{name}.expert{e}"), d_model, d_ff, rng))
                .collect(),
            cache: None,
        }
    }

    /// The flat gate; panics when the layer uses the two-level router.
    pub fn gate_mut(&mut self) -> &mut Gate {
        self.router
            .as_flat_mut()
            .expect("layer uses the two-level router")
    }

    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Auxiliary balance loss of the most recent forward pass.
    pub fn last_aux_loss(&self) -> f32 {
        self.cache
            .as_ref()
            .map(|c| c.routing.aux_loss)
            .unwrap_or(0.0)
    }

    /// Routing statistics of the most recent forward pass.
    pub fn last_routing(&self) -> Option<&Routing> {
        self.cache.as_ref().map(|c| &c.routing)
    }

    /// Forward over `[n, d]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let d = x.cols();
        let routing = self.router.forward(x);
        let e = self.n_experts();

        // Dispatch: gather each expert's tokens.
        let mut per_expert: Vec<Vec<usize>> = vec![Vec::new(); e];
        for (i, a) in routing.assignments.iter().enumerate() {
            per_expert[a.expert].push(i);
        }

        let mut y = Tensor::zeros(x.shape());
        let mut outputs = Vec::with_capacity(e);
        for (ex, idxs) in per_expert.iter().enumerate() {
            let mut xe = Tensor::zeros(&[idxs.len(), d]);
            for (row, &ai) in idxs.iter().enumerate() {
                xe.row_mut(row)
                    .copy_from_slice(x.row(routing.assignments[ai].token));
            }
            let ye = self.experts[ex].forward(&xe);
            // Combine: y[token] += weight · expert_out.
            for (row, &ai) in idxs.iter().enumerate() {
                let a = routing.assignments[ai];
                let dst = y.row_mut(a.token);
                for (o, &v) in dst.iter_mut().zip(ye.row(row)) {
                    *o += a.weight * v;
                }
            }
            outputs.push(ye);
        }

        self.cache = Some(MoECache {
            routing,
            per_expert,
            outputs,
            dy_shape: x.shape().to_vec(),
        });
        y
    }

    /// Backward; returns `dx` (expert path + gate path combined).
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("MoELayer::backward before forward");
        assert_eq!(dy.shape(), &cache.dy_shape[..]);
        let d = dy.cols();
        let routing = &cache.routing;

        // Combine-weight gradients: dw = ⟨dy_token, expert_out_row⟩.
        let mut dweights = vec![0.0f32; routing.assignments.len()];
        let mut dx = Tensor::zeros(dy.shape());

        for (ex, idxs) in cache.per_expert.iter().enumerate() {
            if idxs.is_empty() {
                // The expert still participates in backward with an empty
                // batch so its cached state is consumed.
                let empty = Tensor::zeros(&[0, d]);
                self.experts[ex].backward(&empty);
                continue;
            }
            let ye = &cache.outputs[ex];
            // dY_e[row] = weight · dy[token]; dweight = ⟨dy[token], Y_e[row]⟩.
            let mut dye = Tensor::zeros(&[idxs.len(), d]);
            for (row, &ai) in idxs.iter().enumerate() {
                let a = routing.assignments[ai];
                let dyr = dy.row(a.token);
                dweights[ai] = dyr.iter().zip(ye.row(row)).map(|(g, v)| g * v).sum();
                let dst = dye.row_mut(row);
                for (o, &g) in dst.iter_mut().zip(dyr) {
                    *o = a.weight * g;
                }
            }
            // dye already carries the combine weight, so the expert's input
            // gradient is added back unscaled.
            let dxe = self.experts[ex].backward(&dye);
            for (row, &ai) in idxs.iter().enumerate() {
                let a = routing.assignments[ai];
                let dst = dx.row_mut(a.token);
                for (o, &g) in dst.iter_mut().zip(dxe.row(row)) {
                    *o += g;
                }
            }
        }

        // Gate path.
        let dx_gate = self.router.backward(routing, &dweights);
        dx.add_assign(&dx_gate);
        dx
    }
}

impl HasParams for MoELayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.router.visit_params(f);
        for e in &mut self.experts {
            e.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(kind: GateKind, e: usize, cf: f32) -> MoELayer {
        let mut rng = Rng::seed_from(71);
        MoELayer::new("m", 8, 16, e, kind, cf, 0.0, &mut rng)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = Rng::seed_from(72);
        let mut m = layer(GateKind::Top2, 4, 2.0);
        let x = Tensor::randn(&[10, 8], 1.0, &mut rng);
        let y1 = m.forward(&x);
        let y2 = m.forward(&x);
        assert_eq!(y1.shape(), &[10, 8]);
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn single_expert_equals_weighted_ffn() {
        // With one expert, the gate prob is exactly 1, so the MoE layer must
        // equal that expert's FFN output.
        let mut rng = Rng::seed_from(73);
        let mut m = layer(GateKind::Top1, 1, 8.0);
        let x = Tensor::randn(&[6, 8], 1.0, &mut rng);
        let y = m.forward(&x);
        let expect = m.experts[0].forward(&x);
        assert!(y.approx_eq(&expect, 1e-5));
    }

    #[test]
    fn dropped_tokens_produce_zero_output() {
        let mut m = layer(GateKind::Top1, 2, 1.0);
        // Skew the gate to expert 0 so late tokens get dropped.
        m.gate_mut().wg.value = Tensor::zeros(&[8, 2]);
        for i in 0..8 {
            m.gate_mut().wg.value.set(i, 0, 4.0);
        }
        let x = Tensor::ones(&[8, 8]);
        let y = m.forward(&x);
        let r = m.last_routing().unwrap().clone();
        assert!(r.dropped > 0);
        // Tokens beyond capacity: output row must be all zeros.
        let assigned: std::collections::HashSet<usize> =
            r.assignments.iter().map(|a| a.token).collect();
        for t in 0..8 {
            let all_zero = y.row(t).iter().all(|&v| v == 0.0);
            assert_eq!(all_zero, !assigned.contains(&t), "token {t}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(75);
        let mut m = layer(GateKind::Top1, 3, 8.0);
        let x = Tensor::randn(&[5, 8], 1.0, &mut rng);
        let y = m.forward(&x);
        let dx = m.backward(&y); // loss = ½‖y‖²

        let eps = 1e-3f32;
        let loss = |m: &mut MoELayer, x: &Tensor| 0.5 * m.forward(x).sq_norm();

        // Input entries (includes gate path). The loss is discontinuous
        // where a perturbation flips the routing argmax, so only check
        // entries whose ±eps perturbations leave the routing unchanged —
        // the analytic gradient is defined for fixed routing.
        let routing_of = |m: &mut MoELayer, x: &Tensor| -> Vec<usize> {
            m.forward(x);
            m.last_routing()
                .unwrap()
                .assignments
                .iter()
                .map(|a| a.expert)
                .collect()
        };
        let base_routing = routing_of(&mut m, &x);
        let mut checked = 0;
        for i in 0..5 {
            for j in 0..8 {
                let mut x2 = x.clone();
                x2.set(i, j, x.at(i, j) + eps);
                if routing_of(&mut m, &x2) != base_routing {
                    continue;
                }
                let lp = loss(&mut m, &x2);
                x2.set(i, j, x.at(i, j) - eps);
                if routing_of(&mut m, &x2) != base_routing {
                    continue;
                }
                let lm = loss(&mut m, &x2);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx.at(i, j)).abs() < 5e-2 * (1.0 + fd.abs()),
                    "x[{i},{j}]: fd={fd} an={}",
                    dx.at(i, j)
                );
                checked += 1;
            }
        }
        assert!(
            checked > 20,
            "too few differentiable entries checked: {checked}"
        );

        // An expert weight (find one that received tokens).
        let busy = (0..3).find(|&e| {
            m.forward(&x) == m.forward(&x) && {
                let r = m.last_routing().unwrap();
                r.load[e] > 0
            }
        });
        let e = busy.expect("some expert must be busy");
        m.zero_grad();
        let y = m.forward(&x);
        m.backward(&y);
        let orig = m.experts[e].fc1.w.value.at(0, 0);
        m.experts[e].fc1.w.value.set(0, 0, orig + eps);
        let lp = loss(&mut m, &x);
        m.experts[e].fc1.w.value.set(0, 0, orig - eps);
        let lm = loss(&mut m, &x);
        m.experts[e].fc1.w.value.set(0, 0, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = m.experts[e].fc1.w.grad.at(0, 0);
        assert!(
            (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
            "expert w: fd={fd} an={an}"
        );

        // Gate weight.
        let orig = m.gate_mut().wg.value.at(1, 1);
        m.zero_grad();
        let y = m.forward(&x);
        m.backward(&y);
        m.gate_mut().wg.value.set(1, 1, orig + eps);
        let lp = loss(&mut m, &x);
        m.gate_mut().wg.value.set(1, 1, orig - eps);
        let lm = loss(&mut m, &x);
        m.gate_mut().wg.value.set(1, 1, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = m.gate_mut().wg.grad.at(1, 1);
        assert!(
            (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
            "gate wg: fd={fd} an={an}"
        );
    }

    #[test]
    fn param_visit_covers_gate_and_experts() {
        let mut m = layer(GateKind::Top1, 3, 1.0);
        let mut names = Vec::new();
        m.visit_params(&mut |p| names.push(p.name.clone()));
        assert!(names[0].contains("gate"));
        // gate + 3 experts × 2 linears × 2 params.
        assert_eq!(names.len(), 1 + 3 * 4);
    }

    #[test]
    fn top2_output_uses_both_experts() {
        let mut rng = Rng::seed_from(76);
        let mut m1 = layer(GateKind::Top1, 4, 8.0);
        let mut m2 = layer(GateKind::Top2, 4, 8.0);
        // Same weights.
        m2.gate_mut().wg.value = m1.gate_mut().wg.value.clone();
        for (a, b) in m2.experts.iter_mut().zip(&m1.experts) {
            a.fc1.w.value = b.fc1.w.value.clone();
            a.fc1.b.value = b.fc1.b.value.clone();
            a.fc2.w.value = b.fc2.w.value.clone();
            a.fc2.b.value = b.fc2.b.value.clone();
        }
        let x = Tensor::randn(&[8, 8], 1.0, &mut rng);
        let y1 = m1.forward(&x);
        let y2 = m2.forward(&x);
        // Top-2 includes top-1's contribution plus the runner-up's — outputs
        // must differ.
        assert!(!y1.approx_eq(&y2, 1e-4));
    }
}
