//! The MoE router: expert selection, capacity limiting, balance loss.

use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{matmul, matmul_nt, matmul_tn, softmax_rows};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// Expert-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Switch-style: each token goes to its single highest-probability
    /// expert.
    Top1,
    /// GShard-style: each token goes to its two highest-probability experts.
    Top2,
    /// Balance-aware greedy: each token goes to its highest-probability
    /// expert *among those still under capacity* — trades routing fidelity
    /// for a balanced dispatch, eliminating drops whenever `cf ≥ 1`.
    Balanced,
    /// Noisy top-1: Gaussian jitter (scale [`Gate::noise_std`]) is added to
    /// the logits before selection, spreading near-tie tokens across
    /// experts; the combine weight is the *clean* router probability.
    NoisyTop1,
}

impl GateKind {
    /// Experts chosen per token.
    pub fn k(self) -> usize {
        match self {
            GateKind::Top1 | GateKind::Balanced | GateKind::NoisyTop1 => 1,
            GateKind::Top2 => 2,
        }
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GateKind::Top1 => "top1",
            GateKind::Top2 => "top2",
            GateKind::Balanced => "balanced",
            GateKind::NoisyTop1 => "noisy",
        })
    }
}

impl std::str::FromStr for GateKind {
    type Err = String;

    /// `top1 | top2 | balanced | noisy`, the inverse of
    /// [`Display`](std::fmt::Display) (the CLI's historical spellings).
    fn from_str(s: &str) -> Result<GateKind, String> {
        match s {
            "top1" => Ok(GateKind::Top1),
            "top2" => Ok(GateKind::Top2),
            "balanced" => Ok(GateKind::Balanced),
            "noisy" => Ok(GateKind::NoisyTop1),
            other => Err(format!(
                "unknown gate: {other} (want top1 | top2 | balanced | noisy)"
            )),
        }
    }
}

/// One token→expert assignment with its combine weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    pub token: usize,
    pub expert: usize,
    /// Combine weight (the router probability of the chosen expert).
    pub weight: f32,
}

/// The dispatch plan produced by a gate forward pass.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Surviving (post-capacity) assignments, in token order.
    pub assignments: Vec<Assignment>,
    /// Post-capacity tokens per expert.
    pub load: Vec<usize>,
    /// Pre-capacity first-choice counts per expert (for balance metrics).
    pub raw_load: Vec<usize>,
    /// Assignments discarded because their expert was full.
    pub dropped: usize,
    /// Per-expert capacity that was applied.
    pub capacity: usize,
    /// Switch-style auxiliary balance loss (already weighted).
    pub aux_loss: f32,
}

impl Routing {
    /// Max-over-mean load imbalance (1.0 = perfectly balanced). Empty loads
    /// return 1.0.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.load.len() as f64;
        let max = *self.load.iter().max().unwrap() as f64;
        max / mean
    }

    /// Fraction of pre-capacity assignments that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let kept = self.assignments.len();
        let total = kept + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// The router network.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Routing weights `[d_model, n_experts]`.
    pub wg: Param,
    pub kind: GateKind,
    /// Capacity factor `cf`: per-expert capacity is `ceil(cf·n·k/E)`.
    pub capacity_factor: f32,
    /// Weight of the auxiliary balance loss added to the training loss.
    pub aux_weight: f32,
    /// Logit jitter scale for [`GateKind::NoisyTop1`].
    pub noise_std: f32,
    /// Private noise stream (deterministic per construction seed).
    noise_rng: Rng,
    /// Log-space selection bonus granted to experts flagged local in
    /// [`Gate::set_locality`] (0 = disabled; selection then runs the exact
    /// pre-bias code path, bit-identical to a gate without the feature).
    locality_bias: f32,
    /// Per-expert locality flags (empty until [`Gate::set_locality`]).
    locality: Vec<bool>,
    cache: Option<GateCache>,
}

#[derive(Debug, Clone)]
struct GateCache {
    x: Tensor,
    probs: Tensor,
    /// First-choice fraction per expert (fᵉ in the switch loss).
    frac: Vec<f32>,
}

impl Gate {
    pub fn new(
        name: &str,
        d_model: usize,
        n_experts: usize,
        kind: GateKind,
        capacity_factor: f32,
        aux_weight: f32,
        rng: &mut Rng,
    ) -> Gate {
        assert!(n_experts > 0);
        assert!(capacity_factor > 0.0);
        Gate {
            wg: Param::new(
                format!("{name}.wg"),
                Tensor::xavier(d_model, n_experts, rng),
            ),
            kind,
            capacity_factor,
            aux_weight,
            noise_std: 1.0,
            noise_rng: Rng::seed_from(rng.next_u64()),
            locality_bias: 0.0,
            locality: Vec::new(),
            cache: None,
        }
    }

    /// Bias expert *selection* toward the experts flagged in `mask` (e.g.
    /// those resident in the caller's supernode): their selection score
    /// gets a log-space bonus of `bias`, so a local expert wins whenever
    /// its router probability is within a factor `exp(bias)` of the best
    /// remote one. Combine weights remain the *clean* router probabilities
    /// (the [`GateKind::NoisyTop1`] convention), and the auxiliary balance
    /// loss keeps operating on the biased selection counts — turning up
    /// `aux_weight` therefore counteracts any imbalance the bias causes.
    /// `bias = 0` disables the feature exactly.
    pub fn set_locality(&mut self, bias: f32, mask: Vec<bool>) {
        assert!(bias >= 0.0, "locality bias must be >= 0, got {bias}");
        if bias != 0.0 {
            assert_eq!(
                mask.len(),
                self.n_experts(),
                "locality mask must cover every expert"
            );
        }
        self.locality_bias = bias;
        self.locality = mask;
    }

    pub fn n_experts(&self) -> usize {
        self.wg.value.cols()
    }

    /// Capacity for `n` tokens.
    pub fn capacity(&self, n: usize) -> usize {
        let e = self.n_experts();
        ((self.capacity_factor as f64 * n as f64 * self.kind.k() as f64 / e as f64).ceil() as usize)
            .max(1)
    }

    /// Route a batch `[n, d]`; returns the dispatch plan.
    pub fn forward(&mut self, x: &Tensor) -> Routing {
        let n = x.rows();
        let e = self.n_experts();
        let logits = matmul(x, &self.wg.value);
        let probs = softmax_rows(&logits);
        let capacity = self.capacity(n);

        let mut assignments = Vec::with_capacity(n * self.kind.k());
        let mut load = vec![0usize; e];
        let mut raw_load = vec![0usize; e];
        let mut dropped = 0usize;

        // Per-expert selection bonus; `None` when the locality bias is off,
        // in which case every selection loop below runs its original,
        // bit-identical path on the raw probabilities.
        let bias_vec: Option<Vec<f32>> = if self.locality_bias != 0.0 {
            Some(
                self.locality
                    .iter()
                    .map(|&l| if l { self.locality_bias } else { 0.0 })
                    .collect(),
            )
        } else {
            None
        };

        match self.kind {
            GateKind::Top1 => {
                for t in 0..n {
                    let row = probs.row(t);
                    let scored;
                    let sel: &[f32] = match &bias_vec {
                        None => row,
                        Some(bv) => {
                            scored = biased_scores(row, bv);
                            &scored
                        }
                    };
                    let (best, _) = argmax(sel);
                    let w = row[best];
                    raw_load[best] += 1;
                    if load[best] < capacity {
                        load[best] += 1;
                        assignments.push(Assignment {
                            token: t,
                            expert: best,
                            weight: w,
                        });
                    } else {
                        dropped += 1;
                    }
                }
            }
            GateKind::Top2 => {
                for t in 0..n {
                    let row = probs.row(t);
                    let scored;
                    let sel: &[f32] = match &bias_vec {
                        None => row,
                        Some(bv) => {
                            scored = biased_scores(row, bv);
                            &scored
                        }
                    };
                    let (e1, e2) = top2(sel);
                    raw_load[e1] += 1;
                    for &ex in &[e1, e2] {
                        if load[ex] < capacity {
                            load[ex] += 1;
                            assignments.push(Assignment {
                                token: t,
                                expert: ex,
                                weight: row[ex],
                            });
                        } else {
                            dropped += 1;
                        }
                    }
                }
            }
            GateKind::NoisyTop1 => {
                for t in 0..n {
                    let row = probs.row(t);
                    // Select on jittered logits; selection noise is treated
                    // as a constant of the backward pass (standard noisy
                    // top-k practice). ln(p) + noise preserves the softmax
                    // ordering semantics of logit-space jitter.
                    let mut best = 0usize;
                    let mut best_v = f32::NEG_INFINITY;
                    for (ex, &p) in row.iter().enumerate() {
                        let mut v = p.max(1e-30).ln() + self.noise_std * self.noise_rng.normal();
                        if let Some(bv) = &bias_vec {
                            v += bv[ex];
                        }
                        if v > best_v {
                            best_v = v;
                            best = ex;
                        }
                    }
                    raw_load[best] += 1;
                    if load[best] < capacity {
                        load[best] += 1;
                        assignments.push(Assignment {
                            token: t,
                            expert: best,
                            weight: row[best],
                        });
                    } else {
                        dropped += 1;
                    }
                }
            }
            GateKind::Balanced => {
                for t in 0..n {
                    let row = probs.row(t);
                    let scored;
                    let sel: &[f32] = match &bias_vec {
                        None => row,
                        Some(bv) => {
                            scored = biased_scores(row, bv);
                            &scored
                        }
                    };
                    // First choice feeds the balance statistics even here.
                    let (best, _) = argmax(sel);
                    raw_load[best] += 1;
                    // Greedy: best expert with spare capacity.
                    let mut chosen = None;
                    let mut best_p = f32::NEG_INFINITY;
                    for (ex, &p) in sel.iter().enumerate() {
                        if load[ex] < capacity && p > best_p {
                            best_p = p;
                            chosen = Some(ex);
                        }
                    }
                    match chosen {
                        Some(ex) => {
                            load[ex] += 1;
                            assignments.push(Assignment {
                                token: t,
                                expert: ex,
                                weight: row[ex],
                            });
                        }
                        None => dropped += 1, // only possible when cf·n·k < n
                    }
                }
            }
        }

        // Switch-style auxiliary loss: E · Σₑ fₑ · P̄ₑ, where fₑ is the
        // first-choice token fraction and P̄ₑ the mean router probability.
        let frac: Vec<f32> = raw_load
            .iter()
            .map(|&c| if n == 0 { 0.0 } else { c as f32 / n as f32 })
            .collect();
        let mut aux = 0.0f32;
        if n > 0 {
            for (ex, f) in frac.iter().enumerate().take(e) {
                let mean_p: f32 = (0..n).map(|t| probs.at(t, ex)).sum::<f32>() / n as f32;
                aux += f * mean_p;
            }
            aux *= e as f32 * self.aux_weight;
        }

        self.cache = Some(GateCache {
            x: x.clone(),
            probs,
            frac,
        });
        Routing {
            assignments,
            load,
            raw_load,
            dropped,
            capacity,
            aux_loss: aux,
        }
    }

    /// Inference-mode routing: route a batch `[n, d]` droplessly and
    /// deterministically, without touching the backward cache or the noise
    /// stream.
    ///
    /// Differences from the training-path [`Gate::forward`]:
    /// - **No capacity, no drops.** Capacity limiting makes a token's fate
    ///   depend on the rest of the batch (and on arrival order within it),
    ///   which would break the serving invariant that continuous-batched
    ///   decode is bit-identical to sequential decode. Dropless routing is
    ///   per-row pure, so batching cannot change any token's experts.
    /// - **No noise.** [`GateKind::NoisyTop1`] jitter is a training-time
    ///   exploration device; at decode time the gate uses its deterministic
    ///   mean (plain top-1 on the clean probabilities).
    /// - **No side effects.** Takes `&self`: the backward cache, the noise
    ///   RNG, and the aux-loss statistics are untouched, so interleaving
    ///   decode with training steps cannot perturb either.
    ///
    /// Locality bias still applies (selection on biased scores, clean
    /// combine weights), because the serving path wants the same
    /// intra-supernode traffic shaping as training. `Routing::capacity` is
    /// reported as `usize::MAX` (none applied) and `aux_loss` as 0.
    pub fn route_infer(&self, x: &Tensor) -> Routing {
        let n = x.rows();
        let e = self.n_experts();
        let logits = matmul(x, &self.wg.value);
        let probs = softmax_rows(&logits);

        let bias_vec: Option<Vec<f32>> = if self.locality_bias != 0.0 {
            Some(
                self.locality
                    .iter()
                    .map(|&l| if l { self.locality_bias } else { 0.0 })
                    .collect(),
            )
        } else {
            None
        };

        let k = self.kind.k();
        let mut assignments = Vec::with_capacity(n * k);
        let mut load = vec![0usize; e];
        let mut raw_load = vec![0usize; e];
        for t in 0..n {
            let row = probs.row(t);
            let scored;
            let sel: &[f32] = match &bias_vec {
                None => row,
                Some(bv) => {
                    scored = biased_scores(row, bv);
                    &scored
                }
            };
            match self.kind {
                GateKind::Top1 | GateKind::Balanced | GateKind::NoisyTop1 => {
                    let (best, _) = argmax(sel);
                    raw_load[best] += 1;
                    load[best] += 1;
                    assignments.push(Assignment {
                        token: t,
                        expert: best,
                        weight: row[best],
                    });
                }
                GateKind::Top2 => {
                    let (e1, e2) = top2(sel);
                    raw_load[e1] += 1;
                    for &ex in &[e1, e2] {
                        load[ex] += 1;
                        assignments.push(Assignment {
                            token: t,
                            expert: ex,
                            weight: row[ex],
                        });
                    }
                }
            }
        }

        Routing {
            assignments,
            load,
            raw_load,
            dropped: 0,
            capacity: usize::MAX,
            aux_loss: 0.0,
        }
    }

    /// Backward. `dweights[i]` is `∂L/∂assignments[i].weight` — supplied by
    /// the MoE layer as `⟨dy_token, expert_out⟩`. Adds the auxiliary-loss
    /// gradient, pushes everything through the softmax and the routing
    /// projection, accumulates `dWg`, and returns the gate's contribution
    /// to `dx`.
    pub fn backward(&mut self, routing: &Routing, dweights: &[f32]) -> Tensor {
        let cache = self.cache.take().expect("Gate::backward before forward");
        let n = cache.x.rows();
        let e = self.n_experts();
        assert_eq!(dweights.len(), routing.assignments.len());

        // ∂L/∂probs.
        let mut dprobs = Tensor::zeros(&[n, e]);
        for (a, &g) in routing.assignments.iter().zip(dweights) {
            let cur = dprobs.at(a.token, a.expert);
            dprobs.set(a.token, a.expert, cur + g);
        }
        // Auxiliary loss: ∂aux/∂p[t,e] = aux_weight · E · fₑ / n (fₑ is
        // treated as a constant of the argmax, per the switch formulation).
        if n > 0 && self.aux_weight != 0.0 {
            let scale = self.aux_weight * e as f32 / n as f32;
            for t in 0..n {
                for ex in 0..e {
                    let cur = dprobs.at(t, ex);
                    dprobs.set(t, ex, cur + scale * cache.frac[ex]);
                }
            }
        }

        // Softmax backward per row: dl = p ⊙ (dp − ⟨dp, p⟩).
        let mut dlogits = dprobs;
        for t in 0..n {
            let prow = cache.probs.row(t);
            let drow = dlogits.row_mut(t);
            let dot: f32 = drow.iter().zip(prow).map(|(a, b)| a * b).sum();
            for (dj, &pj) in drow.iter_mut().zip(prow) {
                *dj = pj * (*dj - dot);
            }
        }

        self.wg.grad.add_assign(&matmul_tn(&cache.x, &dlogits));
        matmul_nt(&dlogits, &self.wg.value)
    }
}

impl HasParams for Gate {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wg);
    }
}

/// Log-space selection scores: `ln(p) + bonus` per expert. Working in log
/// space makes the bonus a *multiplicative* tolerance on probabilities
/// (bonus `B` ⇒ a flagged expert wins while within `exp(B)×` of the best),
/// matching the logit-jitter convention of [`GateKind::NoisyTop1`].
fn biased_scores(row: &[f32], bonus: &[f32]) -> Vec<f32> {
    row.iter()
        .zip(bonus)
        .map(|(&p, &b)| p.max(1e-30).ln() + b)
        .collect()
}

/// Index and value of the row maximum (first of ties).
fn argmax(row: &[f32]) -> (usize, &f32) {
    let mut bi = 0;
    for i in 1..row.len() {
        if row[i] > row[bi] {
            bi = i;
        }
    }
    (bi, &row[bi])
}

/// Indices of the two largest entries (first of ties), `len ≥ 2`.
fn top2(row: &[f32]) -> (usize, usize) {
    assert!(row.len() >= 2, "top2 needs at least two experts");
    let (mut a, mut b) = if row[0] >= row[1] { (0, 1) } else { (1, 0) };
    for (i, &v) in row.iter().enumerate().skip(2) {
        if v > row[a] {
            b = a;
            a = i;
        } else if v > row[b] {
            b = i;
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(kind: GateKind, e: usize, cf: f32) -> Gate {
        let mut rng = Rng::seed_from(61);
        Gate::new("g", 8, e, kind, cf, 0.01, &mut rng)
    }

    #[test]
    fn top1_assigns_every_token_under_loose_capacity() {
        let mut rng = Rng::seed_from(62);
        let mut g = gate(GateKind::Top1, 4, 8.0);
        let x = Tensor::randn(&[16, 8], 1.0, &mut rng);
        let r = g.forward(&x);
        assert_eq!(r.assignments.len(), 16);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.load.iter().sum::<usize>(), 16);
        // Every weight is a probability.
        for a in &r.assignments {
            assert!(a.weight > 0.0 && a.weight <= 1.0);
        }
    }

    #[test]
    fn top2_assigns_two_experts_per_token() {
        let mut rng = Rng::seed_from(63);
        let mut g = gate(GateKind::Top2, 6, 8.0);
        let x = Tensor::randn(&[10, 8], 1.0, &mut rng);
        let r = g.forward(&x);
        assert_eq!(r.assignments.len(), 20);
        // The two experts of a token differ.
        for t in 0..10 {
            let pair: Vec<_> = r.assignments.iter().filter(|a| a.token == t).collect();
            assert_eq!(pair.len(), 2);
            assert_ne!(pair[0].expert, pair[1].expert);
            // Chosen in descending probability order.
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn capacity_limits_and_drops() {
        let mut g = gate(GateKind::Top1, 4, 1.0);
        // Force every token towards expert 0 by biasing the router weights.
        g.wg.value = Tensor::zeros(&[8, 4]);
        for i in 0..8 {
            g.wg.value.set(i, 0, 5.0);
        }
        let x = Tensor::ones(&[12, 8]);
        let r = g.forward(&x);
        // capacity = ceil(1.0 · 12 / 4) = 3 → 3 kept, 9 dropped.
        assert_eq!(r.capacity, 3);
        assert_eq!(r.load[0], 3);
        assert_eq!(r.dropped, 9);
        assert!(r.drop_rate() > 0.7);
    }

    #[test]
    fn balanced_gate_never_drops_with_cf_1() {
        let mut rng = Rng::seed_from(65);
        let mut g = gate(GateKind::Balanced, 4, 1.0);
        // Same skewed router as above.
        g.wg.value = Tensor::zeros(&[8, 4]);
        for i in 0..8 {
            g.wg.value.set(i, 0, 5.0);
        }
        let x = Tensor::randn(&[12, 8], 0.1, &mut rng).map(|v| v + 1.0);
        let r = g.forward(&x);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.assignments.len(), 12);
        // Load is perfectly balanced at capacity.
        assert!(r.load.iter().all(|&l| l <= r.capacity));
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aux_loss_is_higher_when_skewed() {
        let mut rng = Rng::seed_from(66);
        let x = Tensor::randn(&[32, 8], 1.0, &mut rng);
        // Balanced router.
        let mut g1 = gate(GateKind::Top1, 4, 8.0);
        let r1 = g1.forward(&x);
        // Skewed router.
        let mut g2 = gate(GateKind::Top1, 4, 8.0);
        g2.wg.value = Tensor::zeros(&[8, 4]);
        for i in 0..8 {
            g2.wg.value.set(i, 0, 5.0);
        }
        let r2 = g2.forward(&x);
        assert!(
            r2.aux_loss > r1.aux_loss,
            "{} vs {}",
            r2.aux_loss,
            r1.aux_loss
        );
    }

    #[test]
    fn gate_gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(67);
        let mut g = Gate::new("g", 6, 3, GateKind::Top1, 8.0, 0.0, &mut rng);
        let x = Tensor::randn(&[5, 6], 1.0, &mut rng);

        // Toy loss: L = Σ weightᵢ² / 2 over assignments → dweightᵢ = weightᵢ.
        let r = g.forward(&x);
        let dweights: Vec<f32> = r.assignments.iter().map(|a| a.weight).collect();
        let dx = g.backward(&r, &dweights);

        let loss = |g: &mut Gate, x: &Tensor| -> f32 {
            let r = g.forward(&x.clone());
            0.5 * r
                .assignments
                .iter()
                .map(|a| a.weight * a.weight)
                .sum::<f32>()
        };
        let eps = 1e-3f32;
        // Wg entry. (Perturbations small enough not to flip the argmax.)
        let orig = g.wg.value.at(2, 1);
        g.wg.value.set(2, 1, orig + eps);
        let lp = loss(&mut g, &x);
        g.wg.value.set(2, 1, orig - eps);
        let lm = loss(&mut g, &x);
        g.wg.value.set(2, 1, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = g.wg.grad.at(2, 1);
        assert!(
            (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
            "wg: fd={fd} an={an}"
        );

        // Input entry.
        let mut x2 = x.clone();
        let o = x2.at(1, 3);
        x2.set(1, 3, o + eps);
        let lp = loss(&mut g, &x2);
        x2.set(1, 3, o - eps);
        let lm = loss(&mut g, &x2);
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - dx.at(1, 3)).abs() < 3e-2 * (1.0 + fd.abs()),
            "x: fd={fd} an={}",
            dx.at(1, 3)
        );
    }

    #[test]
    fn top2_helper() {
        assert_eq!(top2(&[0.1, 0.5, 0.4]), (1, 2));
        assert_eq!(top2(&[0.9, 0.05, 0.05]), (0, 1));
        assert_eq!(top2(&[0.25, 0.25, 0.5, 0.0]), (2, 0));
    }

    #[test]
    fn noisy_top1_spreads_near_ties() {
        // All tokens identical ⇒ plain top-1 sends everything to one expert;
        // noisy top-1 must spread them.
        let x = Tensor::ones(&[256, 8]);
        let mut plain = gate(GateKind::Top1, 4, 8.0);
        plain.wg.value = Tensor::zeros(&[8, 4]); // uniform logits: pure tie
        let rp = plain.forward(&x);
        assert_eq!(rp.raw_load.iter().filter(|&&c| c > 0).count(), 1);

        let mut noisy = gate(GateKind::NoisyTop1, 4, 8.0);
        noisy.wg.value = Tensor::zeros(&[8, 4]);
        let rn = noisy.forward(&x);
        let used = rn.raw_load.iter().filter(|&&c| c > 0).count();
        assert_eq!(used, 4, "noise must break the tie across all experts");
        assert!(rn.imbalance() < 1.5, "imbalance {}", rn.imbalance());
        // Weights are still the clean probabilities (uniform = 0.25 here).
        for a in &rn.assignments {
            assert!((a.weight - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn noisy_top1_is_deterministic_per_seed() {
        let x = Tensor::ones(&[32, 8]);
        let route = |seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut g = Gate::new("g", 8, 4, GateKind::NoisyTop1, 8.0, 0.0, &mut rng);
            g.forward(&x)
                .assignments
                .iter()
                .map(|a| a.expert)
                .collect::<Vec<_>>()
        };
        assert_eq!(route(5), route(5));
        assert_ne!(route(5), route(6));
    }

    #[test]
    fn capacity_formula() {
        let g = gate(GateKind::Top1, 8, 1.25);
        assert_eq!(g.capacity(64), 10); // ceil(1.25·64/8)
        let g2 = gate(GateKind::Top2, 8, 1.0);
        assert_eq!(g2.capacity(64), 16); // ceil(1.0·64·2/8)
        assert!(g.capacity(0) >= 1);
    }

    #[test]
    fn locality_bias_tiebreaks_toward_local_experts() {
        // Near-uniform router: a modest bias must pull selection toward the
        // flagged experts, and the combine weights must stay the clean
        // probabilities.
        let mut rng = Rng::seed_from(68);
        let x = Tensor::randn(&[64, 8], 0.05, &mut rng);
        let local_frac = |r: &Routing| {
            let local = r.assignments.iter().filter(|a| a.expert < 2).count() as f64;
            local / r.assignments.len() as f64
        };
        let mut plain = gate(GateKind::Top1, 4, 8.0);
        let rp = plain.forward(&x);
        let mut biased = gate(GateKind::Top1, 4, 8.0);
        biased.set_locality(2.0, vec![true, true, false, false]);
        let rb = biased.forward(&x);
        assert!(
            local_frac(&rb) > local_frac(&rp),
            "bias did not raise local fraction: {} vs {}",
            local_frac(&rb),
            local_frac(&rp)
        );
        for a in &rb.assignments {
            let p = {
                let logits = matmul(&x, &biased.wg.value);
                softmax_rows(&logits).at(a.token, a.expert)
            };
            assert_eq!(a.weight, p, "combine weight must be the clean prob");
        }
    }

    #[test]
    fn zero_locality_bias_is_bit_identical() {
        let mut rng = Rng::seed_from(69);
        let x = Tensor::randn(&[32, 8], 1.0, &mut rng);
        for kind in [
            GateKind::Top1,
            GateKind::Top2,
            GateKind::Balanced,
            GateKind::NoisyTop1,
        ] {
            let mut plain = gate(kind, 4, 2.0);
            let mut zeroed = gate(kind, 4, 2.0);
            zeroed.set_locality(0.0, Vec::new());
            let rp = plain.forward(&x);
            let rz = zeroed.forward(&x);
            assert_eq!(rp.assignments, rz.assignments, "{kind:?}");
            assert_eq!(rp.aux_loss.to_bits(), rz.aux_loss.to_bits(), "{kind:?}");
        }
    }

    #[test]
    fn locality_bias_backward_still_matches_finite_differences() {
        // The bias only perturbs selection (a constant of the backward
        // pass); gradients through the clean-probability weights must stay
        // correct.
        let mut rng = Rng::seed_from(70);
        let mut g = Gate::new("g", 6, 4, GateKind::Top1, 8.0, 0.0, &mut rng);
        g.set_locality(1.0, vec![true, false, true, false]);
        let x = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let r = g.forward(&x);
        let dweights: Vec<f32> = r.assignments.iter().map(|a| a.weight).collect();
        g.backward(&r, &dweights);

        let loss = |g: &mut Gate, x: &Tensor| -> f32 {
            let r = g.forward(&x.clone());
            0.5 * r
                .assignments
                .iter()
                .map(|a| a.weight * a.weight)
                .sum::<f32>()
        };
        let eps = 1e-3f32;
        let orig = g.wg.value.at(1, 2);
        g.wg.value.set(1, 2, orig + eps);
        let lp = loss(&mut g, &x);
        g.wg.value.set(1, 2, orig - eps);
        let lm = loss(&mut g, &x);
        g.wg.value.set(1, 2, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = g.wg.grad.at(1, 2);
        assert!(
            (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
            "wg: fd={fd} an={an}"
        );
    }

    #[test]
    fn route_infer_is_per_row_pure_and_dropless() {
        let mut rng = Rng::seed_from(71);
        let x = Tensor::randn(&[12, 8], 1.0, &mut rng);
        for kind in [
            GateKind::Top1,
            GateKind::Top2,
            GateKind::Balanced,
            GateKind::NoisyTop1,
        ] {
            // Tight capacity: the training path would drop; inference not.
            let g = gate(kind, 4, 0.25);
            let full = g.route_infer(&x);
            assert_eq!(full.dropped, 0, "{kind:?}");
            assert_eq!(full.assignments.len(), 12 * kind.k(), "{kind:?}");
            assert_eq!(full.aux_loss, 0.0);
            // Row-wise purity: routing each token alone gives the same
            // expert and the bit-identical weight.
            for t in 0..12 {
                let solo = g.route_infer(&x.slice_rows(t, t + 1));
                let batch: Vec<_> = full.assignments.iter().filter(|a| a.token == t).collect();
                assert_eq!(solo.assignments.len(), batch.len());
                for (s, b) in solo.assignments.iter().zip(&batch) {
                    assert_eq!(s.expert, b.expert, "{kind:?} token {t}");
                    assert_eq!(s.weight.to_bits(), b.weight.to_bits(), "{kind:?} token {t}");
                }
            }
        }
    }

    #[test]
    fn route_infer_takes_no_side_effects() {
        // Routing between two noisy forwards must not perturb the noise
        // stream: the second forward sees the same jitter either way.
        let x = Tensor::ones(&[16, 8]);
        let experts = |r: &Routing| r.assignments.iter().map(|a| a.expert).collect::<Vec<_>>();
        let mut a = gate(GateKind::NoisyTop1, 4, 8.0);
        let mut b = gate(GateKind::NoisyTop1, 4, 8.0);
        a.forward(&x);
        b.forward(&x);
        b.route_infer(&x);
        assert_eq!(experts(&a.forward(&x)), experts(&b.forward(&x)));
    }

    #[test]
    fn route_infer_honors_locality_bias() {
        let mut rng = Rng::seed_from(72);
        let x = Tensor::randn(&[64, 8], 0.05, &mut rng);
        let local_frac = |r: &Routing| {
            let local = r.assignments.iter().filter(|a| a.expert < 2).count() as f64;
            local / r.assignments.len() as f64
        };
        let plain = gate(GateKind::Top1, 4, 8.0);
        let mut biased = gate(GateKind::Top1, 4, 8.0);
        biased.set_locality(2.0, vec![true, true, false, false]);
        assert!(local_frac(&biased.route_infer(&x)) > local_frac(&plain.route_infer(&x)));
    }

    #[test]
    fn empty_batch_routes_nothing() {
        let mut g = gate(GateKind::Top1, 4, 1.0);
        let r = g.forward(&Tensor::zeros(&[0, 8]));
        assert!(r.assignments.is_empty());
        assert_eq!(r.aux_loss, 0.0);
        assert_eq!(r.imbalance(), 1.0);
    }
}
