//! Transformer and mixture-of-experts model components with manual backprop.
//!
//! BaGuaLu's model is a GPT-style decoder where the FFN of (some) blocks is
//! replaced by a **mixture of experts**: a gating network routes each token
//! to one or two of many expert FFNs, so parameter count scales with the
//! expert count while per-token compute stays constant. This crate
//! implements every layer with an explicit, hand-derived backward pass —
//! no autograd tape — which keeps the per-rank training step allocation-
//! predictable and easy to cost-model, and mirrors how the original
//! system's kernels are structured.
//!
//! Layer convention: `forward(&mut self, …)` caches whatever the backward
//! pass needs; `backward(&mut self, dy)` consumes the cache, **accumulates**
//! parameter gradients, and returns the input gradient. A step is
//! `zero_grad → forward → loss → backward → optimizer`.

pub mod attention;
pub mod config;
pub mod dropout;
pub mod embedding;
pub mod ffn;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod moe;
pub mod param;
pub mod transformer;

pub use attention::MultiHeadAttention;
pub use config::ModelConfig;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use ffn::FeedForward;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use loss::{cross_entropy, cross_entropy_smoothed};
pub use moe::{Gate, GateKind, MoELayer};
pub use param::Param;
pub use transformer::{Block, Transformer};
