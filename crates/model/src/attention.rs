//! Causal multi-head self-attention with manual backward.

use crate::linear::Linear;
use crate::param::{HasParams, Param};
use bagualu_tensor::ops::{matmul, matmul_nt, matmul_tn, softmax_rows_inplace};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// Backing store for one layer's key/value history during incremental
/// decoding. Positions are appended one at a time; reads return the
/// contiguous `[d_model]` key/value slice for a single cached position
/// (all heads packed).
///
/// [`KvCache`] is the growable in-memory implementation; `bagualu-serve`
/// provides a paged implementation backed by a shared block pool. The
/// attention math in [`MultiHeadAttention::forward_incremental_store`] is
/// identical across stores, so swapping the store cannot change outputs.
pub trait KvStore {
    /// Number of cached positions.
    fn len(&self) -> usize;
    /// Append one position's packed keys and values (each `[d_model]`).
    fn append(&mut self, keys: &[f32], values: &[f32]);
    /// Packed `[d_model]` keys for cached position `pos`.
    fn key(&self, pos: usize) -> &[f32];
    /// Packed `[d_model]` values for cached position `pos`.
    fn value(&self, pos: usize) -> &[f32];
    /// True when no positions are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-layer key/value history for incremental decoding. Keys and values
/// are stored position-major (`[t, d_model]` flattened), all heads packed.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    keys: Vec<f32>,
    values: Vec<f32>,
    d: usize,
}

impl KvCache {
    pub fn new(d_model: usize) -> KvCache {
        KvCache {
            keys: Vec::new(),
            values: Vec::new(),
            d: d_model,
        }
    }

    /// Cached positions.
    pub fn len(&self) -> usize {
        self.keys.len().checked_div(self.d).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl KvStore for KvCache {
    fn len(&self) -> usize {
        KvCache::len(self)
    }

    fn append(&mut self, keys: &[f32], values: &[f32]) {
        debug_assert_eq!(keys.len(), self.d);
        debug_assert_eq!(values.len(), self.d);
        self.keys.extend_from_slice(keys);
        self.values.extend_from_slice(values);
    }

    fn key(&self, pos: usize) -> &[f32] {
        &self.keys[pos * self.d..(pos + 1) * self.d]
    }

    fn value(&self, pos: usize) -> &[f32] {
        &self.values[pos * self.d..(pos + 1) * self.d]
    }

    fn is_empty(&self) -> bool {
        KvCache::is_empty(self)
    }
}

/// Rotate a single-row `[1, hd]` tensor at absolute position `pos`.
fn apply_rope_at(x: &mut Tensor, pos: usize, sign: f32) {
    apply_rope(x, pos, sign);
}

/// Rotate the `[s, hd]` rows of `x` by RoPE angles for absolute positions
/// `start..start+s` (`sign = -1.0` applies the inverse rotation — the
/// backward pass, since rotations are orthogonal).
fn apply_rope(x: &mut Tensor, start: usize, sign: f32) {
    let hd = x.cols();
    assert!(hd.is_multiple_of(2), "RoPE needs an even head dim");
    for t in 0..x.rows() {
        let pos = (start + t) as f32;
        let row = x.row_mut(t);
        for i in 0..hd / 2 {
            let theta = pos * 10000f32.powf(-2.0 * i as f32 / hd as f32);
            let (sin, cos) = (sign * theta.sin(), theta.cos());
            let (a, b) = (row[2 * i], row[2 * i + 1]);
            row[2 * i] = a * cos - b * sin;
            row[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// Causal multi-head self-attention over `[batch·seq, d_model]` inputs.
///
/// A fused QKV projection feeds per-`(batch, head)` score/softmax/context
/// kernels; a final output projection mixes heads. The causal mask sets
/// future positions to `−∞` before the softmax. With [`rope`](Self::rope)
/// enabled, queries and keys carry rotary position embeddings (scores then
/// depend only on *relative* distance, and no learned position table is
/// needed).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    pub wqkv: Linear,
    pub wo: Linear,
    pub n_heads: usize,
    /// Apply rotary position embeddings to queries and keys.
    pub rope: bool,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    qkv: Tensor,
    /// Softmax probabilities per (batch, head), row-major over batches then
    /// heads.
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

impl MultiHeadAttention {
    pub fn new(name: &str, d_model: usize, n_heads: usize, rng: &mut Rng) -> MultiHeadAttention {
        assert!(
            n_heads > 0 && d_model.is_multiple_of(n_heads),
            "d_model must divide by heads"
        );
        MultiHeadAttention {
            wqkv: Linear::new(&format!("{name}.wqkv"), d_model, 3 * d_model, rng),
            wo: Linear::new(&format!("{name}.wo"), d_model, d_model, rng),
            n_heads,
            rope: false,
            cache: None,
        }
    }

    /// Enable rotary position embeddings (requires an even head dim).
    pub fn with_rope(mut self) -> MultiHeadAttention {
        assert!(
            self.head_dim().is_multiple_of(2),
            "RoPE needs an even head dim"
        );
        self.rope = true;
        self
    }

    pub fn d_model(&self) -> usize {
        self.wqkv.d_in()
    }

    fn head_dim(&self) -> usize {
        self.d_model() / self.n_heads
    }

    /// Copy columns `[c0, c0+w)` of rows `[r0, r0+s)` of `src` into a
    /// `[s, w]` tensor.
    fn gather_block(src: &Tensor, r0: usize, s: usize, c0: usize, w: usize) -> Tensor {
        let cols = src.cols();
        let mut out = Tensor::zeros(&[s, w]);
        for i in 0..s {
            let row = &src.as_slice()[(r0 + i) * cols + c0..(r0 + i) * cols + c0 + w];
            out.row_mut(i).copy_from_slice(row);
        }
        out
    }

    /// Add a `[s, w]` block into columns `[c0, c0+w)` of rows `[r0, r0+s)`.
    fn scatter_block(dst: &mut Tensor, block: &Tensor, r0: usize, c0: usize) {
        let cols = dst.cols();
        let (s, w) = (block.rows(), block.cols());
        for i in 0..s {
            let dst_row = &mut dst.as_mut_slice()[(r0 + i) * cols + c0..(r0 + i) * cols + c0 + w];
            for (d, &v) in dst_row.iter_mut().zip(block.row(i)) {
                *d += v;
            }
        }
    }

    /// Forward. `x` is `[batch·seq, d_model]`, flattened batch-major.
    pub fn forward(&mut self, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        let d = self.d_model();
        assert_eq!(x.rows(), batch * seq);
        assert_eq!(x.cols(), d);
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let qkv = self.wqkv.forward(x);
        let mut ctx_all = Tensor::zeros(&[batch * seq, d]);
        let mut probs = Vec::with_capacity(batch * self.n_heads);

        for b in 0..batch {
            let r0 = b * seq;
            for h in 0..self.n_heads {
                let mut q = Self::gather_block(&qkv, r0, seq, h * hd, hd);
                let mut k = Self::gather_block(&qkv, r0, seq, d + h * hd, hd);
                let v = Self::gather_block(&qkv, r0, seq, 2 * d + h * hd, hd);
                if self.rope {
                    apply_rope(&mut q, 0, 1.0);
                    apply_rope(&mut k, 0, 1.0);
                }

                let mut scores = matmul_nt(&q, &k);
                scores.scale(scale);
                // Causal mask: position i may only attend to j ≤ i.
                for i in 0..seq {
                    for j in i + 1..seq {
                        scores.set(i, j, f32::NEG_INFINITY);
                    }
                }
                softmax_rows_inplace(&mut scores);
                let ctx = matmul(&scores, &v);
                Self::scatter_block(&mut ctx_all, &ctx, r0, h * hd);
                probs.push(scores);
            }
        }

        self.cache = Some(Cache {
            qkv,
            probs,
            batch,
            seq,
        });
        self.wo.forward(&ctx_all)
    }

    /// Incremental (KV-cached) forward for autoregressive decoding: append
    /// one position's `[1, d]` input; `kv` holds the per-layer key/value
    /// history and is extended in place. Returns the `[1, d]` output.
    /// Inference-only — no backward cache is produced.
    pub fn forward_incremental(&mut self, x: &Tensor, kv: &mut KvCache) -> Tensor {
        self.forward_incremental_store(x, kv)
    }

    /// [`forward_incremental`](Self::forward_incremental) generalized over
    /// any [`KvStore`] — the serving path passes a paged store here. The
    /// math (and therefore the bits) is independent of the store.
    pub fn forward_incremental_store(&mut self, x: &Tensor, kv: &mut dyn KvStore) -> Tensor {
        let d = self.d_model();
        assert_eq!(x.shape(), &[1, d]);
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let qkv = self.wqkv.forward(x);
        self.wqkv.clear_cache(); // inference: no backward
        let row = qkv.row(0);
        let this_pos = kv.len();
        let mut q_all = row[..d].to_vec();
        let mut k_new = row[d..2 * d].to_vec();
        if self.rope {
            // Rotate per head at this absolute position; keys are stored
            // rotated, matching the batched path's score math.
            for h in 0..self.n_heads {
                let mut qh = Tensor::from_vec(q_all[h * hd..(h + 1) * hd].to_vec(), &[1, hd]);
                apply_rope_at(&mut qh, this_pos, 1.0);
                q_all[h * hd..(h + 1) * hd].copy_from_slice(qh.as_slice());
                let mut kh = Tensor::from_vec(k_new[h * hd..(h + 1) * hd].to_vec(), &[1, hd]);
                apply_rope_at(&mut kh, this_pos, 1.0);
                k_new[h * hd..(h + 1) * hd].copy_from_slice(kh.as_slice());
            }
        }
        kv.append(&k_new, &row[2 * d..3 * d]);
        let t = kv.len();

        let mut ctx_all = Tensor::zeros(&[1, d]);
        for h in 0..self.n_heads {
            let q = &q_all[h * hd..(h + 1) * hd];
            // Scores over all cached positions for this head.
            let mut scores = Vec::with_capacity(t);
            for pos in 0..t {
                let k = &kv.key(pos)[h * hd..(h + 1) * hd];
                let s: f32 = q.iter().zip(k).map(|(a, b)| a * b).sum();
                scores.push(s * scale);
            }
            // Softmax.
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                sum += *s;
            }
            let inv = 1.0 / sum;
            // Weighted value sum.
            let out = &mut ctx_all.as_mut_slice()[h * hd..(h + 1) * hd];
            for (pos, s) in scores.iter().enumerate().take(t) {
                let w = s * inv;
                let v = &kv.value(pos)[h * hd..(h + 1) * hd];
                for (o, &vv) in out.iter_mut().zip(v) {
                    *o += w * vv;
                }
            }
        }
        let y = self.wo.forward(&ctx_all);
        self.wo.clear_cache();
        y
    }

    /// Backward; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let Cache {
            qkv,
            probs,
            batch,
            seq,
        } = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward before forward");
        let d = self.d_model();
        let hd = self.head_dim();
        let scale = 1.0 / (hd as f32).sqrt();

        let dctx_all = self.wo.backward(dy);
        let mut dqkv = Tensor::zeros(&[batch * seq, 3 * d]);

        for b in 0..batch {
            let r0 = b * seq;
            for h in 0..self.n_heads {
                let p = &probs[b * self.n_heads + h];
                let mut q = Self::gather_block(&qkv, r0, seq, h * hd, hd);
                let mut k = Self::gather_block(&qkv, r0, seq, d + h * hd, hd);
                let v = Self::gather_block(&qkv, r0, seq, 2 * d + h * hd, hd);
                if self.rope {
                    apply_rope(&mut q, 0, 1.0);
                    apply_rope(&mut k, 0, 1.0);
                }
                let dctx = Self::gather_block(&dctx_all, r0, seq, h * hd, hd);

                let dp = matmul_nt(&dctx, &v); // [s, s]
                let dv = matmul_tn(p, &dctx); // [s, hd]

                // Softmax backward: ds = p ⊙ (dp − rowsum(dp ⊙ p)).
                let mut ds = dp;
                for i in 0..seq {
                    let prow = p.row(i);
                    let drow = ds.row_mut(i);
                    let dot: f32 = drow.iter().zip(prow).map(|(a, b)| a * b).sum();
                    for (dj, &pj) in drow.iter_mut().zip(prow) {
                        *dj = pj * (*dj - dot);
                    }
                }

                let mut dq = matmul(&ds, &k);
                dq.scale(scale);
                let mut dk = matmul_tn(&ds, &q);
                dk.scale(scale);
                if self.rope {
                    // Rotations are orthogonal: the gradient through RoPE is
                    // the inverse rotation.
                    apply_rope(&mut dq, 0, -1.0);
                    apply_rope(&mut dk, 0, -1.0);
                }

                Self::scatter_block(&mut dqkv, &dq, r0, h * hd);
                Self::scatter_block(&mut dqkv, &dk, r0, d + h * hd);
                Self::scatter_block(&mut dqkv, &dv, r0, 2 * d + h * hd);
            }
        }

        self.wqkv.backward(&dqkv)
    }
}

impl HasParams for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wqkv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let mut rng = Rng::seed_from(51);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::randn(&[2 * 4, 8], 1.0, &mut rng);
        let y1 = attn.forward(&x, 2, 4);
        let y2 = attn.forward(&x, 2, 4);
        assert_eq!(y1.shape(), &[8, 8]);
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn causality_future_tokens_do_not_affect_past() {
        let mut rng = Rng::seed_from(52);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x1 = Tensor::randn(&[6, 8], 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Perturb the last position only.
        for v in x2.row_mut(5) {
            *v += 1.0;
        }
        let y1 = attn.forward(&x1, 1, 6);
        let y2 = attn.forward(&x2, 1, 6);
        // Outputs at positions 0..5 must be identical.
        for t in 0..5 {
            assert_eq!(y1.row(t), y2.row(t), "position {t} saw the future");
        }
        assert_ne!(y1.row(5), y2.row(5));
    }

    #[test]
    fn batches_are_independent() {
        let mut rng = Rng::seed_from(53);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let a = Tensor::randn(&[3, 8], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 8], 1.0, &mut rng);
        let ab = Tensor::concat_rows(&[a.clone(), b.clone()]);
        let y_ab = attn.forward(&ab, 2, 3);
        let y_a = attn.forward(&a, 1, 3);
        let y_b = attn.forward(&b, 1, 3);
        assert!(y_ab.slice_rows(0, 3).approx_eq(&y_a, 1e-5));
        assert!(y_ab.slice_rows(3, 6).approx_eq(&y_b, 1e-5));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(54);
        let mut attn = MultiHeadAttention::new("t", 6, 2, &mut rng);
        let x = Tensor::randn(&[4, 6], 0.8, &mut rng);

        let y = attn.forward(&x, 1, 4);
        let dx = attn.backward(&y); // loss = ½‖y‖²

        let eps = 1e-3f32;
        let loss = |a: &mut MultiHeadAttention, x: &Tensor| 0.5 * a.forward(x, 1, 4).sq_norm();

        for &(i, j) in &[(0usize, 0usize), (1, 3), (3, 5)] {
            let mut x2 = x.clone();
            x2.set(i, j, x.at(i, j) + eps);
            let lp = loss(&mut attn, &x2);
            x2.set(i, j, x.at(i, j) - eps);
            let lm = loss(&mut attn, &x2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.at(i, j)).abs() < 3e-2 * (1.0 + fd.abs()),
                "x[{i},{j}]: fd={fd} an={}",
                dx.at(i, j)
            );
        }

        // A QKV weight entry.
        let orig = attn.wqkv.w.value.at(2, 7);
        attn.wqkv.w.value.set(2, 7, orig + eps);
        let lp = loss(&mut attn, &x);
        attn.wqkv.w.value.set(2, 7, orig - eps);
        let lm = loss(&mut attn, &x);
        attn.wqkv.w.value.set(2, 7, orig);
        let fd = (lp - lm) / (2.0 * eps);
        let an = attn.wqkv.w.grad.at(2, 7);
        assert!(
            (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
            "wqkv: fd={fd} an={an}"
        );
    }

    #[test]
    fn incremental_forward_matches_batched() {
        let mut rng = Rng::seed_from(57);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng);
        let x = Tensor::randn(&[5, 8], 1.0, &mut rng);
        let full = attn.forward(&x, 1, 5);
        let mut kv = KvCache::new(8);
        for t in 0..5 {
            let step = attn.forward_incremental(&x.slice_rows(t, t + 1), &mut kv);
            assert!(
                step.approx_eq(&full.slice_rows(t, t + 1), 1e-5),
                "position {t} diverged"
            );
        }
        assert_eq!(kv.len(), 5);
    }

    #[test]
    fn rope_scores_depend_only_on_relative_position() {
        // ⟨rot(q, i), rot(k, j)⟩ must equal ⟨rot(q, i+s), rot(k, j+s)⟩.
        let mut rng = Rng::seed_from(58);
        let q0 = Tensor::randn(&[1, 8], 1.0, &mut rng);
        let k0 = Tensor::randn(&[1, 8], 1.0, &mut rng);
        let dot = |a: &Tensor, b: &Tensor| -> f32 {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| x * y)
                .sum()
        };
        let rotated = |x: &Tensor, pos: usize| {
            let mut y = x.clone();
            apply_rope(&mut y, pos, 1.0);
            y
        };
        let base = dot(&rotated(&q0, 3), &rotated(&k0, 1));
        for shift in [1usize, 5, 11] {
            let shifted = dot(&rotated(&q0, 3 + shift), &rotated(&k0, 1 + shift));
            assert!(
                (base - shifted).abs() < 1e-4,
                "shift {shift}: {base} vs {shifted}"
            );
        }
        // And rotation is invertible.
        let mut y = q0.clone();
        apply_rope(&mut y, 7, 1.0);
        apply_rope(&mut y, 7, -1.0);
        assert!(y.approx_eq(&q0, 1e-5));
    }

    #[test]
    fn rope_gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(59);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng).with_rope();
        let x = Tensor::randn(&[4, 8], 0.8, &mut rng);
        let y = attn.forward(&x, 1, 4);
        let dx = attn.backward(&y);
        let eps = 1e-3f32;
        let loss = |a: &mut MultiHeadAttention, x: &Tensor| 0.5 * a.forward(x, 1, 4).sq_norm();
        for &(i, j) in &[(0usize, 0usize), (2, 5), (3, 7)] {
            let mut x2 = x.clone();
            x2.set(i, j, x.at(i, j) + eps);
            let lp = loss(&mut attn, &x2);
            x2.set(i, j, x.at(i, j) - eps);
            let lm = loss(&mut attn, &x2);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.at(i, j)).abs() < 3e-2 * (1.0 + fd.abs()),
                "x[{i},{j}]: fd={fd} an={}",
                dx.at(i, j)
            );
        }
    }

    #[test]
    fn rope_incremental_matches_batched() {
        let mut rng = Rng::seed_from(60);
        let mut attn = MultiHeadAttention::new("t", 8, 2, &mut rng).with_rope();
        let x = Tensor::randn(&[5, 8], 1.0, &mut rng);
        let full = attn.forward(&x, 1, 5);
        let mut kv = KvCache::new(8);
        for t in 0..5 {
            let step = attn.forward_incremental(&x.slice_rows(t, t + 1), &mut kv);
            assert!(
                step.approx_eq(&full.slice_rows(t, t + 1), 1e-4),
                "rope position {t} diverged"
            );
        }
    }

    #[test]
    fn single_token_sequence_attends_to_itself() {
        let mut rng = Rng::seed_from(55);
        let mut attn = MultiHeadAttention::new("t", 4, 1, &mut rng);
        let x = Tensor::randn(&[1, 4], 1.0, &mut rng);
        // With one position, softmax over one score = 1, so ctx = v.
        let y = attn.forward(&x, 1, 1);
        assert_eq!(y.shape(), &[1, 4]);
        assert!(!y.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "divide by heads")]
    fn head_count_must_divide() {
        let mut rng = Rng::seed_from(56);
        MultiHeadAttention::new("t", 10, 3, &mut rng);
    }
}
