//! Trainable parameters: value + gradient accumulator.

use bagualu_tensor::Tensor;

/// One trainable tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Stable name for checkpointing and debugging (e.g. `blocks.3.attn.wqkv`).
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    /// Wrap an initialized tensor; the gradient starts at zero.
    pub fn new(name: impl Into<String>, value: Tensor) -> Param {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.len()
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// Anything that exposes its parameters to an optimizer, in a stable order.
pub trait HasParams {
    /// Visit every parameter mutably. Order must be deterministic — the
    /// data-parallel gradient all-reduce flattens gradients in this order
    /// on every rank.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero every gradient accumulator.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Flatten all gradients into one buffer (deterministic order).
    fn flat_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p.grad.as_slice()));
        out
    }

    /// Overwrite all gradients from a flat buffer (inverse of
    /// [`HasParams::flat_grads`]). Panics if the length does not match.
    fn load_flat_grads(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.grad.len();
            p.grad.as_mut_slice().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat gradient length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two {
        a: Param,
        b: Param,
    }

    impl HasParams for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn two() -> Two {
        Two {
            a: Param::new("a", Tensor::from_vec(vec![1.0, 2.0], &[2])),
            b: Param::new("b", Tensor::from_vec(vec![3.0], &[1])),
        }
    }

    #[test]
    fn numel_and_zero_grad() {
        let mut t = two();
        assert_eq!(t.num_params(), 3);
        t.a.grad.fill(5.0);
        t.zero_grad();
        assert_eq!(t.a.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn flat_grads_round_trip() {
        let mut t = two();
        t.a.grad = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        t.b.grad = Tensor::from_vec(vec![3.0], &[1]);
        let flat = t.flat_grads();
        assert_eq!(flat, vec![1.0, 2.0, 3.0]);
        t.zero_grad();
        t.load_flat_grads(&flat);
        assert_eq!(t.flat_grads(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_flat_grads_checks_length() {
        two().load_flat_grads(&[1.0, 2.0, 3.0, 4.0]);
    }
}
