//! Inverted dropout with a deterministic per-layer noise stream.
//!
//! Training-mode forward zeroes each activation with probability `p` and
//! scales survivors by `1/(1-p)` (inverted dropout, so evaluation needs no
//! rescale). The mask is cached for the backward pass. Determinism comes
//! from an owned seeded RNG — the same construction seed replays the same
//! noise, keeping multi-rank replicas in lockstep when they share seeds.

use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// One dropout layer.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    /// Training mode; evaluation passes activations through untouched.
    pub training: bool,
    rng: Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Dropout {
            p,
            training: true,
            rng: Rng::seed_from(seed),
            mask: None,
        }
    }

    /// Forward; caches the mask when training with `p > 0`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        for m in mask.as_mut_slice() {
            *m = if self.rng.uniform() < self.p {
                0.0
            } else {
                scale
            };
        }
        let mut y = x.clone();
        y.mul_assign(&mask);
        self.mask = Some(mask);
        y
    }

    /// Backward: the same mask gates the gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.mask.take() {
            None => dy.clone(),
            Some(mask) => {
                let mut dx = dy.clone();
                dx.mul_assign(&mask);
                dx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu_tensor::rng::Rng as TRng;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.training = false;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert!(d.forward(&x).approx_eq(&x, 0.0));
        assert!(d.backward(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn keeps_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[50_000]);
        let y = d.forward(&x);
        // Inverted dropout: E[y] = x.
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
        // Survivors are exactly 1/(1-p).
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = dropped as f64 / y.len() as f64;
        assert!((rate - 0.3).abs() < 0.01, "drop rate {rate}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let mut rng = TRng::seed_from(4);
        let x = Tensor::randn(&[64], 1.0, &mut rng);
        let y = d.forward(&x);
        let dy = Tensor::ones(&[64]);
        let dx = d.backward(&dy);
        // Wherever the output was zeroed the gradient must be zero, and
        // elsewhere it is 1/(1-p).
        for (yy, gg) in y.as_slice().iter().zip(dx.as_slice()) {
            if *yy == 0.0 {
                assert_eq!(*gg, 0.0);
            } else {
                assert!((gg - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut d = Dropout::new(0.5, seed);
            d.forward(&Tensor::ones(&[32])).into_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_one() {
        Dropout::new(1.0, 1);
    }
}
