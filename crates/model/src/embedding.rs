//! Token and position embedding tables.

use crate::param::{HasParams, Param};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// A lookup table `[vocab, d]`: forward gathers rows, backward scatters
/// gradient rows back.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Param,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    pub fn new(name: &str, vocab: usize, d: usize, rng: &mut Rng) -> Embedding {
        Embedding {
            table: Param::new(
                format!("{name}.table"),
                Tensor::randn(&[vocab, d], 0.02, rng),
            ),
            cache_ids: None,
        }
    }

    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Gather `[len(ids), d]`. Panics on out-of-vocab ids.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let d = self.dim();
        let v = self.vocab();
        let mut out = Tensor::zeros(&[ids.len(), d]);
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < v, "token id {id} out of vocab {v}");
            out.row_mut(i).copy_from_slice(self.table.value.row(id));
        }
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Scatter-add `dy` rows into the table gradient.
    pub fn backward(&mut self, dy: &Tensor) {
        let ids = self
            .cache_ids
            .take()
            .expect("Embedding::backward before forward");
        assert_eq!(dy.rows(), ids.len());
        assert_eq!(dy.cols(), self.dim());
        for (i, &id) in ids.iter().enumerate() {
            let src = dy.row(i);
            let dst = self.table.grad.row_mut(id);
            for (g, &v) in dst.iter_mut().zip(src) {
                *g += v;
            }
        }
    }
}

impl HasParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_correct_rows() {
        let mut rng = Rng::seed_from(31);
        let mut emb = Embedding::new("t", 10, 4, &mut rng);
        let out = emb.forward(&[3, 3, 7]);
        assert_eq!(out.row(0), emb.table.value.row(3));
        assert_eq!(out.row(1), emb.table.value.row(3));
        assert_eq!(out.row(2), emb.table.value.row(7));
    }

    #[test]
    fn backward_scatter_adds_repeats() {
        let mut rng = Rng::seed_from(32);
        let mut emb = Embedding::new("t", 5, 2, &mut rng);
        emb.forward(&[1, 1, 4]);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0, 5.0, 6.0], &[3, 2]);
        emb.backward(&dy);
        // Row 1 used twice: gradients add.
        assert_eq!(emb.table.grad.row(1), &[11.0, 22.0]);
        assert_eq!(emb.table.grad.row(4), &[5.0, 6.0]);
        assert_eq!(emb.table.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_out_of_vocab() {
        let mut rng = Rng::seed_from(33);
        let mut emb = Embedding::new("t", 5, 2, &mut rng);
        emb.forward(&[5]);
    }
}
