//! Shared-memory transport: mailboxes, communicators, and splitting.
//!
//! One OS thread per rank. Point-to-point semantics mirror MPI:
//!
//! * `send` is asynchronous and never blocks (unbounded mailbox),
//! * `recv(src, tag)` blocks until a matching message arrives,
//! * messages between a fixed `(sender, tag)` pair are **non-overtaking**
//!   (FIFO per key), which is what makes tag reuse across consecutive
//!   collectives safe,
//! * `split(color)` builds sub-communicators (expert-parallel and
//!   data-parallel groups), with message isolation via a per-group context
//!   id baked into the mailbox key.

use crate::payload::Payload;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-to-point communication within a group of ranks.
pub trait Communicator {
    /// This rank's index within the group.
    fn rank(&self) -> usize;
    /// Number of ranks in the group.
    fn size(&self) -> usize;
    /// Asynchronously send `payload` to group rank `dst` under `tag`.
    fn send(&self, dst: usize, tag: u64, payload: Payload);
    /// Block until a message from group rank `src` under `tag` arrives.
    fn recv(&self, src: usize, tag: u64) -> Payload;
    /// Block until every rank in the group has entered the barrier.
    fn barrier(&self);
}

/// Mailbox key: (group context, sender's group rank, tag).
type Key = (u64, usize, u64);

struct Mailbox {
    queues: Mutex<HashMap<Key, VecDeque<Payload>>>,
    arrived: Condvar,
}

struct BarrierState {
    inner: Mutex<(usize, u64)>, // (arrived, generation)
    released: Condvar,
    size: usize,
}

impl BarrierState {
    fn wait(&self) {
        let mut g = self.inner.lock();
        let generation = g.1;
        g.0 += 1;
        if g.0 == self.size {
            g.0 = 0;
            g.1 += 1;
            self.released.notify_all();
        } else {
            while g.1 == generation {
                self.released.wait(&mut g);
            }
        }
    }
}

struct Shared {
    boxes: Vec<Mailbox>,
    barriers: Mutex<HashMap<u64, Arc<BarrierState>>>,
    next_ctx: AtomicU64,
    total_bytes: AtomicU64,
    total_msgs: AtomicU64,
}

impl Shared {
    fn barrier_for(&self, ctx: u64, size: usize) -> Arc<BarrierState> {
        let mut map = self.barriers.lock();
        let b = map.entry(ctx).or_insert_with(|| {
            Arc::new(BarrierState {
                inner: Mutex::new((0, 0)),
                released: Condvar::new(),
                size,
            })
        });
        assert_eq!(b.size, size, "barrier size mismatch for ctx {ctx}");
        b.clone()
    }
}

/// The world: owns the shared mailboxes; hands out one [`ShmComm`] per rank.
pub struct World {
    shared: Arc<Shared>,
    size: usize,
}

impl World {
    /// Create a world of `n` ranks.
    pub fn new(n: usize) -> World {
        assert!(n > 0, "world must have at least one rank");
        let boxes = (0..n)
            .map(|_| Mailbox { queues: Mutex::new(HashMap::new()), arrived: Condvar::new() })
            .collect();
        World {
            shared: Arc::new(Shared {
                boxes,
                barriers: Mutex::new(HashMap::new()),
                next_ctx: AtomicU64::new(1),
                total_bytes: AtomicU64::new(0),
                total_msgs: AtomicU64::new(0),
            }),
            size: n,
        }
    }

    /// One communicator handle per rank, in rank order.
    pub fn comms(&self) -> Vec<ShmComm> {
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        (0..self.size)
            .map(|r| ShmComm {
                shared: self.shared.clone(),
                ctx: 0,
                rank: r,
                members: members.clone(),
                split_seq: AtomicU64::new(0),
            })
            .collect()
    }

    /// Total payload bytes sent through this world so far (all groups).
    pub fn bytes_sent(&self) -> u64 {
        self.shared.total_bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent through this world so far (all groups).
    pub fn messages_sent(&self) -> u64 {
        self.shared.total_msgs.load(Ordering::Relaxed)
    }
}

/// Reserved tag bit for internal control traffic (split).
const CTRL_TAG: u64 = 1 << 63;

/// A rank's handle on a (sub-)communicator.
pub struct ShmComm {
    shared: Arc<Shared>,
    ctx: u64,
    rank: usize,
    /// Group rank → world rank.
    members: Arc<Vec<usize>>,
    /// Per-handle counter so repeated `split` calls use distinct tags.
    split_seq: AtomicU64,
}

impl ShmComm {
    /// Split into sub-communicators by `color`: ranks sharing a color form a
    /// new group, ordered by their rank in `self`. Collective — every rank
    /// of `self` must call it, in the same program order.
    pub fn split(&self, color: u64) -> ShmComm {
        let n = self.size();
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        let tag = CTRL_TAG | seq;

        // Gather colors at rank 0, which assigns one fresh context per
        // distinct color and replies with (ctx, group rank, members).
        if self.rank == 0 {
            let mut colors = vec![0u64; n];
            colors[0] = color;
            for r in 1..n {
                colors[r] = self.recv(r, tag).into_u64()[0];
            }
            // Deterministic: contexts assigned in order of first appearance.
            let mut ctx_of: HashMap<u64, u64> = HashMap::new();
            let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
            for (r, &c) in colors.iter().enumerate() {
                ctx_of.entry(c).or_insert_with(|| {
                    self.shared.next_ctx.fetch_add(1, Ordering::Relaxed)
                });
                groups.entry(c).or_default().push(r);
            }
            let mut my_new = None;
            for (r, &c) in colors.iter().enumerate() {
                let grp = &groups[&c];
                let grank = grp.iter().position(|&x| x == r).unwrap() as u64;
                // members as world ranks
                let mut msg = vec![ctx_of[&c], grank, grp.len() as u64];
                msg.extend(grp.iter().map(|&p| self.members[p] as u64));
                if r == 0 {
                    my_new = Some(msg);
                } else {
                    self.send(r, tag, msg.into());
                }
            }
            Self::from_split_msg(self, my_new.unwrap())
        } else {
            self.send(0, tag, vec![color].into());
            let msg = self.recv(0, tag).into_u64();
            Self::from_split_msg(self, msg)
        }
    }

    fn from_split_msg(parent: &ShmComm, msg: Vec<u64>) -> ShmComm {
        let ctx = msg[0];
        let rank = msg[1] as usize;
        let len = msg[2] as usize;
        let members: Vec<usize> = msg[3..3 + len].iter().map(|&x| x as usize).collect();
        ShmComm {
            shared: parent.shared.clone(),
            ctx,
            rank,
            members: Arc::new(members),
            split_seq: AtomicU64::new(0),
        }
    }

    /// World rank of a group rank.
    pub fn world_rank_of(&self, group_rank: usize) -> usize {
        self.members[group_rank]
    }
}

impl Communicator for ShmComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        let world_dst = self.members[dst];
        self.shared.total_bytes.fetch_add(payload.wire_bytes() as u64, Ordering::Relaxed);
        self.shared.total_msgs.fetch_add(1, Ordering::Relaxed);
        let mbox = &self.shared.boxes[world_dst];
        let mut queues = mbox.queues.lock();
        queues.entry((self.ctx, self.rank, tag)).or_default().push_back(payload);
        mbox.arrived.notify_all();
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        let world_me = self.members[self.rank];
        let mbox = &self.shared.boxes[world_me];
        let key = (self.ctx, src, tag);
        let mut queues = mbox.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&key) {
                if let Some(p) = q.pop_front() {
                    return p;
                }
            }
            mbox.arrived.wait(&mut queues);
        }
    }

    fn barrier(&self) {
        let b = self.shared.barrier_for(self.ctx, self.size());
        b.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_ranks;

    #[test]
    fn ping_pong() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f32, 2.0].into());
                let back = c.recv(1, 8).into_f32();
                assert_eq!(back, vec![3.0]);
            } else {
                let msg = c.recv(0, 7).into_f32();
                assert_eq!(msg, vec![1.0, 2.0]);
                c.send(0, 8, vec![3.0f32].into());
            }
        });
    }

    #[test]
    fn messages_are_fifo_per_sender_tag() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send(1, 1, vec![i as f32].into());
                }
            } else {
                for i in 0..100 {
                    assert_eq!(c.recv(0, 1).into_f32(), vec![i as f32]);
                }
            }
        });
    }

    #[test]
    fn tags_do_not_cross_talk() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 2, vec![2.0f32].into());
                c.send(1, 1, vec![1.0f32].into());
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(c.recv(0, 1).into_f32(), vec![1.0]);
                assert_eq!(c.recv(0, 2).into_f32(), vec![2.0]);
            }
        });
    }

    #[test]
    fn self_send_works() {
        run_ranks(1, |c| {
            c.send(0, 5, vec![42u64].into());
            assert_eq!(c.recv(0, 5).into_u64(), vec![42]);
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn barrier_is_reusable() {
        run_ranks(4, |c| {
            for _ in 0..50 {
                c.barrier();
            }
        });
    }

    #[test]
    fn split_forms_consistent_groups() {
        run_ranks(8, |c| {
            // Even/odd split.
            let sub = c.split((c.rank() % 2) as u64);
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.rank(), c.rank() / 2);
            // Message within the subgroup: ring neighbor exchange.
            let right = (sub.rank() + 1) % sub.size();
            let left = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(right, 3, vec![c.rank() as f32].into());
            let got = sub.recv(left, 3).into_f32();
            // Left neighbor in the subgroup has world rank = mine - 2 (mod 8,
            // same parity).
            let expect = ((c.rank() + 8 - 2) % 8) as f32;
            assert_eq!(got, vec![expect]);
        });
    }

    #[test]
    fn split_groups_are_isolated() {
        run_ranks(4, |c| {
            let sub = c.split((c.rank() % 2) as u64);
            // Same tag in both groups; contexts must keep them apart.
            let peer = 1 - sub.rank();
            sub.send(peer, 9, vec![c.rank() as f32].into());
            let got = sub.recv(peer, 9).into_f32()[0] as usize;
            assert_eq!(got % 2, c.rank() % 2, "crossed group boundary!");
        });
    }

    #[test]
    fn nested_split_works() {
        run_ranks(8, |c| {
            let half = c.split((c.rank() / 4) as u64); // two groups of 4
            let pair = half.split((half.rank() / 2) as u64); // four groups of 2
            assert_eq!(pair.size(), 2);
            pair.send(1 - pair.rank(), 1, vec![c.rank() as u64].into());
            let got = pair.recv(1 - pair.rank(), 1).into_u64()[0] as usize;
            // Partner differs by exactly 1 in world rank.
            assert_eq!(got ^ c.rank(), 1);
        });
    }

    #[test]
    fn world_counts_traffic() {
        let world = World::new(2);
        let comms = world.comms();
        std::thread::scope(|s| {
            let (c0, c1) = {
                let mut it = comms.into_iter();
                (it.next().unwrap(), it.next().unwrap())
            };
            s.spawn(move || c0.send(1, 1, vec![0.0f32; 256].into()));
            s.spawn(move || {
                c1.recv(0, 1);
            });
        });
        assert_eq!(world.bytes_sent(), 1024);
        assert_eq!(world.messages_sent(), 1);
    }
}
