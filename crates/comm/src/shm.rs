//! Shared-memory transport: mailboxes, communicators, and splitting.
//!
//! One OS thread per rank. Point-to-point semantics mirror MPI:
//!
//! * `send` is asynchronous and never blocks (unbounded mailbox),
//! * `recv(src, tag)` blocks until a matching message arrives,
//! * `irecv(src, tag)` posts a *request* that [`Communicator::test`] can
//!   poll and [`Communicator::wait`] completes — the nonblocking layer the
//!   overlapped gradient sync is built on. `recv` ≡ `wait(irecv(..))`,
//! * messages between a fixed `(sender, tag)` pair are **non-overtaking**
//!   (FIFO per key), which is what makes tag reuse across consecutive
//!   collectives safe; requests waited in post order preserve this,
//! * `split(color)` builds sub-communicators (expert-parallel and
//!   data-parallel groups), with message isolation via a per-group context
//!   id baked into the mailbox key.

use crate::fault::{
    corrupt_payload, CommError, FaultRuntime, FaultStats, FtCommunicator, SendAction,
};
use crate::payload::Payload;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle for an initiated send. Sends into the unbounded mailboxes are
/// eagerly buffered, so the handle is born complete; it exists so call
/// sites read like their MPI counterparts (`MPI_Isend` + `MPI_Wait`).
#[derive(Debug)]
#[must_use = "an isend request should be waited (or explicitly dropped)"]
pub struct SendRequest {
    _private: (),
}

impl SendRequest {
    pub(crate) fn completed() -> SendRequest {
        SendRequest { _private: () }
    }

    /// Eager sends complete at initiation.
    pub fn is_complete(&self) -> bool {
        true
    }
}

/// Point-to-point communication within a group of ranks.
pub trait Communicator {
    /// In-flight receive handle produced by [`Communicator::irecv`].
    type RecvReq;

    /// This rank's index within the group.
    fn rank(&self) -> usize;
    /// Number of ranks in the group.
    fn size(&self) -> usize;
    /// Asynchronously send `payload` to group rank `dst` under `tag`.
    fn send(&self, dst: usize, tag: u64, payload: Payload);
    /// Block until a message from group rank `src` under `tag` arrives.
    fn recv(&self, src: usize, tag: u64) -> Payload;
    /// Block until every rank in the group has entered the barrier.
    fn barrier(&self);

    /// Initiate a send; the returned request is already complete (sends
    /// are eagerly buffered) but keeps call sites explicit about intent.
    fn isend(&self, dst: usize, tag: u64, payload: Payload) -> SendRequest {
        self.send(dst, tag, payload);
        SendRequest::completed()
    }

    /// Post a nonblocking receive for the next message from `src` under
    /// `tag`. Multiple requests on the same `(src, tag)` match arrivals in
    /// post order when waited in post order (FIFO is preserved).
    fn irecv(&self, src: usize, tag: u64) -> Self::RecvReq;

    /// Poll a request; returns `true` once the message has arrived (after
    /// which [`Communicator::wait`] returns without blocking). Completion
    /// latches: once `test` returns `true` it stays `true`.
    fn test(&self, req: &mut Self::RecvReq) -> bool;

    /// Block until the request completes and return its payload.
    fn wait(&self, req: Self::RecvReq) -> Payload;

    /// Wait on several requests, returning payloads in request order.
    fn wait_all(&self, reqs: Vec<Self::RecvReq>) -> Vec<Payload> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Traffic counters for the transport under this communicator, when
    /// the transport collects them (`None` otherwise).
    fn stats(&self) -> Option<CommStats> {
        None
    }

    /// Arm intra/inter-supernode accounting: `supernode_size` consecutive
    /// *world* ranks form one supernode, and every subsequent all-to-all
    /// send is attributed to [`CommStats::a2a_intra_bytes`] or
    /// [`CommStats::a2a_inter_bytes`] by whether source and destination
    /// share a supernode. `0` disables the split (the default). Transports
    /// without byte accounting ignore the call.
    fn set_supernode_size(&self, _supernode_size: usize) {}

    /// Cumulative wall-clock nanoseconds **this rank** has spent inside
    /// [`Communicator::send`], when the transport accounts for it (`None`
    /// otherwise). On `ShmComm` sends are nonblocking enqueues, so a healthy
    /// rank's occupancy is negligible — the counter only grows materially
    /// when the send path itself stalls (an injected [`crate::fault::FaultSpec::SlowRank`]
    /// window, or on a real transport a backed-up NIC queue). That asymmetry
    /// is exactly the straggler signal: recv-side waiting is symmetric
    /// across ranks under lockstep collectives, send-side occupancy is not.
    /// Collected only while a fault schedule is armed, so the fault-free
    /// hot path stays timer-free.
    fn send_occupancy_ns(&self) -> Option<u64> {
        None
    }
}

/// Collective families distinguished by [`CommStats`]. Classification is
/// by tag: every collective in this crate uses a reserved tag (or tag
/// range), so the transport can attribute traffic without plumbing labels
/// through every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommFamily {
    /// Ring + recursive-doubling all-reduce, incl. bucketed gradient sync.
    Allreduce,
    /// Binomial-tree broadcast.
    Broadcast,
    /// All-gather and gather.
    Gather,
    /// Pairwise and hierarchical all-to-all(v), f32 and u64.
    Alltoall,
    /// Virtual-time headers posted by `TimedComm`.
    Timing,
    /// Internal control traffic (communicator splits).
    Control,
    /// Application point-to-point traffic outside the reserved tag ranges.
    Other,
}

pub(crate) const N_FAMILIES: usize = 7;

impl CommFamily {
    pub(crate) const ALL: [CommFamily; N_FAMILIES] = [
        CommFamily::Allreduce,
        CommFamily::Broadcast,
        CommFamily::Gather,
        CommFamily::Alltoall,
        CommFamily::Timing,
        CommFamily::Control,
        CommFamily::Other,
    ];

    fn index(self) -> usize {
        CommFamily::ALL.iter().position(|&f| f == self).unwrap()
    }

    /// Lower-case family label, used in reports and trace counter names.
    pub fn label(self) -> &'static str {
        match self {
            CommFamily::Allreduce => "allreduce",
            CommFamily::Broadcast => "broadcast",
            CommFamily::Gather => "gather",
            CommFamily::Alltoall => "alltoall",
            CommFamily::Timing => "timing",
            CommFamily::Control => "control",
            CommFamily::Other => "other",
        }
    }

    /// Trace counter names for traffic *sent* under this family:
    /// `("comm.sent.<family>.bytes", "comm.sent.<family>.msgs")`. Static
    /// strings because the tracer stores `&'static str` names.
    pub fn sent_counter_names(self) -> (&'static str, &'static str) {
        match self {
            CommFamily::Allreduce => ("comm.sent.allreduce.bytes", "comm.sent.allreduce.msgs"),
            CommFamily::Broadcast => ("comm.sent.broadcast.bytes", "comm.sent.broadcast.msgs"),
            CommFamily::Gather => ("comm.sent.gather.bytes", "comm.sent.gather.msgs"),
            CommFamily::Alltoall => ("comm.sent.alltoall.bytes", "comm.sent.alltoall.msgs"),
            CommFamily::Timing => ("comm.sent.timing.bytes", "comm.sent.timing.msgs"),
            CommFamily::Control => ("comm.sent.control.bytes", "comm.sent.control.msgs"),
            CommFamily::Other => ("comm.sent.other.bytes", "comm.sent.other.msgs"),
        }
    }

    /// Trace counter names for traffic *received* under this family:
    /// `("comm.recv.<family>.bytes", "comm.recv.<family>.msgs")`.
    pub fn recv_counter_names(self) -> (&'static str, &'static str) {
        match self {
            CommFamily::Allreduce => ("comm.recv.allreduce.bytes", "comm.recv.allreduce.msgs"),
            CommFamily::Broadcast => ("comm.recv.broadcast.bytes", "comm.recv.broadcast.msgs"),
            CommFamily::Gather => ("comm.recv.gather.bytes", "comm.recv.gather.msgs"),
            CommFamily::Alltoall => ("comm.recv.alltoall.bytes", "comm.recv.alltoall.msgs"),
            CommFamily::Timing => ("comm.recv.timing.bytes", "comm.recv.timing.msgs"),
            CommFamily::Control => ("comm.recv.control.bytes", "comm.recv.control.msgs"),
            CommFamily::Other => ("comm.recv.other.bytes", "comm.recv.other.msgs"),
        }
    }

    /// Attribute a tag to a family (see the tag constants in
    /// `collectives.rs` and the reserved high bits below / in `timed.rs`).
    pub fn of_tag(tag: u64) -> CommFamily {
        use crate::collectives::tags;
        if tag & CTRL_TAG != 0 {
            return CommFamily::Control;
        }
        if tag & crate::timed::TIME_TAG_XOR != 0 {
            return CommFamily::Timing;
        }
        match tag {
            tags::TAG_BCAST => CommFamily::Broadcast,
            tags::TAG_RING | tags::TAG_RD => CommFamily::Allreduce,
            tags::TAG_AG => CommFamily::Gather,
            tags::TAG_A2A..=tags::TAG_A2A_U64 | tags::TAG_A2A_U32 => CommFamily::Alltoall,
            t if (tags::TAG_BUCKET_BASE..tags::TAG_BUCKET_END).contains(&t) => {
                CommFamily::Allreduce
            }
            _ => CommFamily::Other,
        }
    }
}

/// Per-family traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyStats {
    /// Payload bytes sent under this family.
    pub bytes: u64,
    /// Messages sent under this family.
    pub msgs: u64,
}

/// A snapshot of transport traffic, total and per collective family.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Payload bytes sent, all families.
    pub total_bytes: u64,
    /// Messages sent, all families.
    pub total_msgs: u64,
    /// All-to-all payload bytes that stayed inside one supernode. Only
    /// collected after [`Communicator::set_supernode_size`] armed a nonzero
    /// supernode size; 0 otherwise.
    pub a2a_intra_bytes: u64,
    /// All-to-all payload bytes that crossed a supernode boundary (see
    /// [`CommStats::a2a_intra_bytes`]).
    pub a2a_inter_bytes: u64,
    families: [FamilyStats; N_FAMILIES],
}

impl CommStats {
    /// Counters for one collective family.
    pub fn family(&self, f: CommFamily) -> FamilyStats {
        self.families[f.index()]
    }

    /// Iterate `(family, counters)` pairs in a fixed order.
    pub fn families(&self) -> impl Iterator<Item = (CommFamily, FamilyStats)> + '_ {
        CommFamily::ALL.iter().map(|&f| (f, self.family(f)))
    }

    /// Measured fraction of all-to-all bytes that stayed inside a
    /// supernode. `None` until supernode accounting is armed and at least
    /// one all-to-all byte has been sent.
    pub fn a2a_local_fraction(&self) -> Option<f64> {
        let total = self.a2a_intra_bytes + self.a2a_inter_bytes;
        if total == 0 {
            None
        } else {
            Some(self.a2a_intra_bytes as f64 / total as f64)
        }
    }
}

/// Trace counter slicing sent payload bytes by *element format* (the
/// `comm.wire.*` axis, orthogonal to the per-family `comm.sent.*` axis).
fn wire_counter_name(payload: &Payload) -> &'static str {
    use bagualu_trace::names;
    match payload.wire_label() {
        "fp16" => names::WIRE_F16_BYTES,
        "bf16" => names::WIRE_BF16_BYTES,
        "u64" => names::WIRE_U64_BYTES,
        "u32" => names::WIRE_U32_BYTES,
        _ => names::WIRE_F32_BYTES,
    }
}

/// Record per-family and per-wire-dtype trace counters for one sent
/// message. No-op unless the calling thread currently records a trace lane
/// (one relaxed load).
fn trace_sent(tag: u64, payload: &Payload, bytes: u64) {
    if bagualu_trace::enabled() {
        let (b, m) = CommFamily::of_tag(tag).sent_counter_names();
        bagualu_trace::count(b, bytes);
        bagualu_trace::count(m, 1);
        bagualu_trace::count(wire_counter_name(payload), bytes);
    }
}

/// Record per-family trace counters for one received (claimed) message.
fn trace_recv(tag: u64, payload: &Payload) {
    if bagualu_trace::enabled() {
        let (b, m) = CommFamily::of_tag(tag).recv_counter_names();
        bagualu_trace::count(b, payload.wire_bytes() as u64);
        bagualu_trace::count(m, 1);
    }
}

/// Mailbox key: (group context, sender's group rank, tag).
type Key = (u64, usize, u64);

/// Post-order matching state for one `(ctx, src, tag)` key: requests take
/// a ticket at post time and may only claim a queued message when every
/// earlier ticket has claimed — MPI's posted-receive ordering, which keeps
/// FIFO intact even when requests are `test`ed out of order.
#[derive(Default, Clone, Copy)]
struct Tickets {
    posted: u64,
    claimed: u64,
}

#[derive(Default)]
struct MailboxState {
    queues: HashMap<Key, VecDeque<Payload>>,
    tickets: HashMap<Key, Tickets>,
}

struct Mailbox {
    state: Mutex<MailboxState>,
    arrived: Condvar,
}

struct BarrierState {
    inner: Mutex<(usize, u64)>, // (arrived, generation)
    released: Condvar,
    size: usize,
}

impl BarrierState {
    fn wait(&self) {
        let mut g = self.inner.lock();
        let generation = g.1;
        g.0 += 1;
        if g.0 == self.size {
            g.0 = 0;
            g.1 += 1;
            self.released.notify_all();
        } else {
            while g.1 == generation {
                self.released.wait(&mut g);
            }
        }
    }
}

/// Lock-free per-family counters (indexed by `CommFamily::index`).
#[derive(Default)]
struct FamilyCounters {
    bytes: [AtomicU64; N_FAMILIES],
    msgs: [AtomicU64; N_FAMILIES],
}

struct Shared {
    boxes: Vec<Mailbox>,
    barriers: Mutex<HashMap<u64, Arc<BarrierState>>>,
    next_ctx: AtomicU64,
    total_bytes: AtomicU64,
    total_msgs: AtomicU64,
    families: FamilyCounters,
    /// Supernode size for intra/inter all-to-all byte attribution
    /// (0 = split disabled).
    supernode_size: AtomicU64,
    /// All-to-all bytes between world ranks of the same supernode.
    a2a_intra_bytes: AtomicU64,
    /// All-to-all bytes crossing a supernode boundary.
    a2a_inter_bytes: AtomicU64,
    /// Armed fault schedule, consulted on every send (None = no faults).
    faults: Option<Arc<FaultRuntime>>,
    /// Per-world-rank nanoseconds spent inside `send` (the straggler
    /// signal; accounted only while `faults` is armed).
    send_ns: Vec<AtomicU64>,
    /// Per-world-rank dead flags; set once a rank's thread panics or
    /// aborts, after which receives from it fail fast instead of hanging.
    dead: Vec<AtomicBool>,
}

impl Shared {
    fn snapshot_stats(&self) -> CommStats {
        let mut stats = CommStats {
            total_bytes: self.total_bytes.load(Ordering::Relaxed),
            total_msgs: self.total_msgs.load(Ordering::Relaxed),
            ..CommStats::default()
        };
        stats.a2a_intra_bytes = self.a2a_intra_bytes.load(Ordering::Relaxed);
        stats.a2a_inter_bytes = self.a2a_inter_bytes.load(Ordering::Relaxed);
        for (i, fam) in stats.families.iter_mut().enumerate() {
            fam.bytes = self.families.bytes[i].load(Ordering::Relaxed);
            fam.msgs = self.families.msgs[i].load(Ordering::Relaxed);
        }
        stats
    }

    fn barrier_for(&self, ctx: u64, size: usize) -> Arc<BarrierState> {
        let mut map = self.barriers.lock();
        let b = map.entry(ctx).or_insert_with(|| {
            Arc::new(BarrierState {
                inner: Mutex::new((0, 0)),
                released: Condvar::new(),
                size,
            })
        });
        assert_eq!(b.size, size, "barrier size mismatch for ctx {ctx}");
        b.clone()
    }
}

/// The world: owns the shared mailboxes; hands out one [`ShmComm`] per rank.
pub struct World {
    shared: Arc<Shared>,
    size: usize,
}

impl World {
    /// Create a world of `n` ranks.
    pub fn new(n: usize) -> World {
        World::build(n, None)
    }

    /// Create a world whose transport runs under an armed fault schedule.
    /// Pass the same `Arc<FaultRuntime>` to successive worlds of a
    /// checkpoint-restart loop so one-shot events fire exactly once across
    /// attempts.
    pub fn new_with_faults(n: usize, faults: Arc<FaultRuntime>) -> World {
        World::build(n, Some(faults))
    }

    fn build(n: usize, faults: Option<Arc<FaultRuntime>>) -> World {
        assert!(n > 0, "world must have at least one rank");
        let boxes = (0..n)
            .map(|_| Mailbox {
                state: Mutex::new(MailboxState::default()),
                arrived: Condvar::new(),
            })
            .collect();
        World {
            shared: Arc::new(Shared {
                boxes,
                barriers: Mutex::new(HashMap::new()),
                next_ctx: AtomicU64::new(1),
                total_bytes: AtomicU64::new(0),
                total_msgs: AtomicU64::new(0),
                families: FamilyCounters::default(),
                supernode_size: AtomicU64::new(0),
                a2a_intra_bytes: AtomicU64::new(0),
                a2a_inter_bytes: AtomicU64::new(0),
                faults,
                send_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
                dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
            size: n,
        }
    }

    /// Mark a world rank dead and wake every blocked receiver so waits on
    /// the dead rank resolve to [`CommError::PeerDead`] promptly.
    pub fn mark_dead(&self, world_rank: usize) {
        self.shared.dead[world_rank].store(true, Ordering::SeqCst);
        for mbox in &self.shared.boxes {
            let _guard = mbox.state.lock();
            mbox.arrived.notify_all();
        }
    }

    /// Is the given world rank marked dead?
    pub fn is_dead(&self, world_rank: usize) -> bool {
        self.shared.dead[world_rank].load(Ordering::SeqCst)
    }

    /// Counters of faults injected so far, when a plan is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.shared.faults.as_ref().map(|f| f.stats())
    }

    /// One communicator handle per rank, in rank order.
    pub fn comms(&self) -> Vec<ShmComm> {
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        (0..self.size)
            .map(|r| ShmComm {
                shared: self.shared.clone(),
                ctx: 0,
                rank: r,
                members: members.clone(),
                split_seq: AtomicU64::new(0),
            })
            .collect()
    }

    /// Total payload bytes sent through this world so far (all groups).
    pub fn bytes_sent(&self) -> u64 {
        self.shared.total_bytes.load(Ordering::Relaxed)
    }

    /// Total messages sent through this world so far (all groups).
    pub fn messages_sent(&self) -> u64 {
        self.shared.total_msgs.load(Ordering::Relaxed)
    }

    /// Traffic snapshot, total and per collective family (all groups).
    pub fn stats(&self) -> CommStats {
        self.shared.snapshot_stats()
    }
}

/// Reserved tag bit for internal control traffic (split).
const CTRL_TAG: u64 = 1 << 63;

/// A rank's handle on a (sub-)communicator.
pub struct ShmComm {
    shared: Arc<Shared>,
    ctx: u64,
    rank: usize,
    /// Group rank → world rank.
    members: Arc<Vec<usize>>,
    /// Per-handle counter so repeated `split` calls use distinct tags.
    split_seq: AtomicU64,
}

impl ShmComm {
    /// Split into sub-communicators by `color`: ranks sharing a color form a
    /// new group, ordered by their rank in `self`. Collective — every rank
    /// of `self` must call it, in the same program order.
    pub fn split(&self, color: u64) -> ShmComm {
        let n = self.size();
        let seq = self.split_seq.fetch_add(1, Ordering::Relaxed);
        let tag = CTRL_TAG | seq;

        // Gather colors at rank 0, which assigns one fresh context per
        // distinct color and replies with (ctx, group rank, members).
        if self.rank == 0 {
            let mut colors = vec![0u64; n];
            colors[0] = color;
            for (r, slot) in colors.iter_mut().enumerate().take(n).skip(1) {
                *slot = self.recv(r, tag).into_u64()[0];
            }
            // Deterministic: contexts assigned in order of first appearance.
            let mut ctx_of: HashMap<u64, u64> = HashMap::new();
            let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
            for (r, &c) in colors.iter().enumerate() {
                ctx_of
                    .entry(c)
                    .or_insert_with(|| self.shared.next_ctx.fetch_add(1, Ordering::Relaxed));
                groups.entry(c).or_default().push(r);
            }
            let mut my_new = None;
            for (r, &c) in colors.iter().enumerate() {
                let grp = &groups[&c];
                let grank = grp.iter().position(|&x| x == r).unwrap_or_else(|| {
                    panic!("split: rank {r} is missing from its own color-{c} group {grp:?}")
                }) as u64;
                // members as world ranks
                let mut msg = vec![ctx_of[&c], grank, grp.len() as u64];
                msg.extend(grp.iter().map(|&p| self.members[p] as u64));
                if r == 0 {
                    my_new = Some(msg);
                } else {
                    self.send(r, tag, msg.into());
                }
            }
            Self::from_split_msg(self, my_new.unwrap())
        } else {
            self.send(0, tag, vec![color].into());
            let msg = self.recv(0, tag).into_u64();
            Self::from_split_msg(self, msg)
        }
    }

    fn from_split_msg(parent: &ShmComm, msg: Vec<u64>) -> ShmComm {
        assert!(
            msg.len() >= 3 && msg.len() == 3 + msg[2] as usize,
            "split: malformed group message at rank {} ({} words: {:?})",
            parent.rank,
            msg.len(),
            &msg[..msg.len().min(8)],
        );
        let ctx = msg[0];
        let rank = msg[1] as usize;
        let len = msg[2] as usize;
        let members: Vec<usize> = msg[3..3 + len].iter().map(|&x| x as usize).collect();
        ShmComm {
            shared: parent.shared.clone(),
            ctx,
            rank,
            members: Arc::new(members),
            split_seq: AtomicU64::new(0),
        }
    }

    /// World rank of a group rank.
    pub fn world_rank_of(&self, group_rank: usize) -> usize {
        self.members[group_rank]
    }

    fn my_mailbox(&self) -> &Mailbox {
        &self.shared.boxes[self.members[self.rank]]
    }

    /// Charge the elapsed time since `t0` (when accounting is armed) to
    /// this rank's send-occupancy counter.
    fn note_send_time(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.shared.send_ns[self.members[self.rank]]
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Claim the queued message for `req` if it is `req`'s turn (its ticket
    /// is the oldest unclaimed for the key) and a message is available.
    fn try_claim(&self, req: &ShmRecv) -> Option<Payload> {
        let mbox = self.my_mailbox();
        let key = (self.ctx, req.src, req.tag);
        let mut state = mbox.state.lock();
        let tickets = state.tickets.entry(key).or_default();
        if tickets.claimed != req.ticket {
            return None;
        }
        let state = &mut *state;
        let payload = state.queues.get_mut(&key)?.pop_front()?;
        state
            .tickets
            .get_mut(&key)
            .unwrap_or_else(|| {
                panic!(
                    "claim: ticket entry vanished for (ctx {}, src {}, tag {})",
                    key.0, key.1, key.2
                )
            })
            .claimed += 1;
        // A claim may unblock a later-ticket waiter on the same key.
        mbox.arrived.notify_all();
        Some(payload)
    }

    /// Retract an abandoned (timed-out) receive so later receives on the
    /// same key are not blocked behind a ghost ticket. Receives are posted
    /// only by this rank's own thread, so an abandoned synchronous receive
    /// is always the newest ticket on its key.
    fn cancel_recv(&self, state: &mut MailboxState, req: &ShmRecv) {
        let key = (self.ctx, req.src, req.tag);
        if let Some(t) = state.tickets.get_mut(&key) {
            if t.posted == req.ticket + 1 && t.claimed <= req.ticket {
                t.posted -= 1;
            }
        }
    }
}

/// A pending receive on a [`ShmComm`]. Holds the match key and post-order
/// ticket until completion, then buffers the payload for `wait`.
#[derive(Debug)]
pub struct ShmRecv {
    src: usize,
    tag: u64,
    /// Post-order position among requests on the same `(src, tag)`.
    ticket: u64,
    done: Option<Payload>,
}

impl Communicator for ShmComm {
    type RecvReq = ShmRecv;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        let mut payload = payload;
        // Send-occupancy accounting (the straggler signal) rides the fault
        // hook: only timed while a schedule is armed, so the fault-free hot
        // path takes no `Instant::now` calls.
        let t0 = self.shared.faults.as_ref().map(|_| Instant::now());
        if let Some(f) = &self.shared.faults {
            match f.on_send(self.members[self.rank]) {
                SendAction::Deliver => {}
                // Dropped in flight: never enqueued, never counted as sent.
                SendAction::Drop => {
                    bagualu_trace::count(bagualu_trace::names::FAULT_DROPS, 1);
                    self.note_send_time(t0);
                    return;
                }
                // A stalled link: the sender blocks for the delay.
                SendAction::Delay(d) => std::thread::sleep(d),
                SendAction::Corrupt => {
                    bagualu_trace::count(bagualu_trace::names::FAULT_CORRUPTIONS, 1);
                    corrupt_payload(&mut payload);
                }
            }
        }
        let world_dst = self.members[dst];
        let bytes = payload.wire_bytes() as u64;
        self.shared.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.shared.total_msgs.fetch_add(1, Ordering::Relaxed);
        let family = CommFamily::of_tag(tag);
        let fam = family.index();
        self.shared.families.bytes[fam].fetch_add(bytes, Ordering::Relaxed);
        self.shared.families.msgs[fam].fetch_add(1, Ordering::Relaxed);
        // Intra/inter-supernode split of all-to-all traffic, by *world*
        // rank (supernodes are a physical-topology property, so sub-group
        // communicators still attribute against the machine layout).
        if family == CommFamily::Alltoall {
            let s = self.shared.supernode_size.load(Ordering::Relaxed) as usize;
            let world_src = self.members[self.rank];
            // `s == 0` means the split is disarmed; checked_div folds that
            // case into `None` without a separate zero guard.
            if let (Some(src_sn), Some(dst_sn)) =
                (world_src.checked_div(s), world_dst.checked_div(s))
            {
                let intra = src_sn == dst_sn;
                if intra {
                    self.shared
                        .a2a_intra_bytes
                        .fetch_add(bytes, Ordering::Relaxed);
                } else {
                    self.shared
                        .a2a_inter_bytes
                        .fetch_add(bytes, Ordering::Relaxed);
                }
                if bagualu_trace::enabled() {
                    let name = if intra {
                        bagualu_trace::names::A2A_INTRA_BYTES
                    } else {
                        bagualu_trace::names::A2A_INTER_BYTES
                    };
                    bagualu_trace::count(name, bytes);
                }
            }
        }
        trace_sent(tag, &payload, bytes);
        let mbox = &self.shared.boxes[world_dst];
        let mut state = mbox.state.lock();
        state
            .queues
            .entry((self.ctx, self.rank, tag))
            .or_default()
            .push_back(payload);
        mbox.arrived.notify_all();
        drop(state);
        self.note_send_time(t0);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        // Take a ticket like any other receive so blocking and nonblocking
        // receives on the same key share one post-order match sequence.
        let req = self.irecv(src, tag);
        self.wait(req)
    }

    fn irecv(&self, src: usize, tag: u64) -> ShmRecv {
        let key = (self.ctx, src, tag);
        let mut state = self.my_mailbox().state.lock();
        let tickets = state.tickets.entry(key).or_default();
        let ticket = tickets.posted;
        tickets.posted += 1;
        ShmRecv {
            src,
            tag,
            ticket,
            done: None,
        }
    }

    fn test(&self, req: &mut ShmRecv) -> bool {
        if req.done.is_none() {
            req.done = self.try_claim(req);
            if let Some(p) = &req.done {
                trace_recv(req.tag, p);
            }
        }
        req.done.is_some()
    }

    fn wait(&self, mut req: ShmRecv) -> Payload {
        if let Some(p) = req.done.take() {
            return p;
        }
        let mbox = self.my_mailbox();
        let key = (self.ctx, req.src, req.tag);
        let mut state = mbox.state.lock();
        loop {
            let turn = state
                .tickets
                .get(&key)
                .is_some_and(|t| t.claimed == req.ticket);
            if turn {
                let s = &mut *state;
                if let Some(p) = s.queues.get_mut(&key).and_then(|q| q.pop_front()) {
                    s.tickets
                        .get_mut(&key)
                        .unwrap_or_else(|| {
                            panic!(
                                "wait: ticket entry vanished for (ctx {}, src {}, tag {})",
                                key.0, key.1, key.2
                            )
                        })
                        .claimed += 1;
                    mbox.arrived.notify_all();
                    drop(state);
                    trace_recv(req.tag, &p);
                    return p;
                }
            }
            mbox.arrived.wait(&mut state);
        }
    }

    fn barrier(&self) {
        let b = self.shared.barrier_for(self.ctx, self.size());
        b.wait();
    }

    fn stats(&self) -> Option<CommStats> {
        Some(self.shared.snapshot_stats())
    }

    fn set_supernode_size(&self, supernode_size: usize) {
        self.shared
            .supernode_size
            .store(supernode_size as u64, Ordering::Relaxed);
    }

    fn send_occupancy_ns(&self) -> Option<u64> {
        self.shared
            .faults
            .as_ref()
            .map(|_| self.shared.send_ns[self.members[self.rank]].load(Ordering::Relaxed))
    }
}

impl FtCommunicator for ShmComm {
    fn recv_timeout(&self, src: usize, tag: u64, timeout: Duration) -> Result<Payload, CommError> {
        let deadline = Instant::now() + timeout;
        let world_src = self.members[src];
        let req = self.irecv(src, tag);
        let mbox = self.my_mailbox();
        let key = (self.ctx, req.src, req.tag);
        let mut state = mbox.state.lock();
        loop {
            // Claim like `wait`: only at our ticket's turn, FIFO preserved.
            let turn = state
                .tickets
                .get(&key)
                .is_some_and(|t| t.claimed == req.ticket);
            if turn {
                let s = &mut *state;
                if let Some(p) = s.queues.get_mut(&key).and_then(|q| q.pop_front()) {
                    s.tickets
                        .get_mut(&key)
                        .expect("ticket entry exists while claiming")
                        .claimed += 1;
                    mbox.arrived.notify_all();
                    drop(state);
                    trace_recv(req.tag, &p);
                    return Ok(p);
                }
            }
            // Queued messages drain first; only then does death fail fast.
            if self.shared.dead[world_src].load(Ordering::SeqCst) {
                self.cancel_recv(&mut state, &req);
                return Err(CommError::PeerDead { peer: src });
            }
            let now = Instant::now();
            if now >= deadline {
                self.cancel_recv(&mut state, &req);
                return Err(CommError::Timeout {
                    src,
                    tag,
                    waited_ms: timeout.as_millis() as u64,
                });
            }
            mbox.arrived.wait_for(&mut state, deadline - now);
        }
    }

    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        if self.shared.dead[self.members[dst]].load(Ordering::SeqCst) {
            return Err(CommError::PeerDead { peer: dst });
        }
        self.send(dst, tag, payload);
        Ok(())
    }

    fn mark_self_dead(&self) {
        self.shared.dead[self.members[self.rank]].store(true, Ordering::SeqCst);
        for mbox in &self.shared.boxes {
            let _guard = mbox.state.lock();
            mbox.arrived.notify_all();
        }
    }

    fn is_dead(&self, group_rank: usize) -> bool {
        self.shared.dead[self.members[group_rank]].load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_ranks;

    #[test]
    fn ping_pong() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f32, 2.0].into());
                let back = c.recv(1, 8).into_f32();
                assert_eq!(back, vec![3.0]);
            } else {
                let msg = c.recv(0, 7).into_f32();
                assert_eq!(msg, vec![1.0, 2.0]);
                c.send(0, 8, vec![3.0f32].into());
            }
        });
    }

    #[test]
    fn messages_are_fifo_per_sender_tag() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send(1, 1, vec![i as f32].into());
                }
            } else {
                for i in 0..100 {
                    assert_eq!(c.recv(0, 1).into_f32(), vec![i as f32]);
                }
            }
        });
    }

    #[test]
    fn tags_do_not_cross_talk() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 2, vec![2.0f32].into());
                c.send(1, 1, vec![1.0f32].into());
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(c.recv(0, 1).into_f32(), vec![1.0]);
                assert_eq!(c.recv(0, 2).into_f32(), vec![2.0]);
            }
        });
    }

    #[test]
    fn self_send_works() {
        run_ranks(1, |c| {
            c.send(0, 5, vec![42u64].into());
            assert_eq!(c.recv(0, 5).into_u64(), vec![42]);
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn barrier_is_reusable() {
        run_ranks(4, |c| {
            for _ in 0..50 {
                c.barrier();
            }
        });
    }

    #[test]
    fn split_forms_consistent_groups() {
        run_ranks(8, |c| {
            // Even/odd split.
            let sub = c.split((c.rank() % 2) as u64);
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.rank(), c.rank() / 2);
            // Message within the subgroup: ring neighbor exchange.
            let right = (sub.rank() + 1) % sub.size();
            let left = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(right, 3, vec![c.rank() as f32].into());
            let got = sub.recv(left, 3).into_f32();
            // Left neighbor in the subgroup has world rank = mine - 2 (mod 8,
            // same parity).
            let expect = ((c.rank() + 8 - 2) % 8) as f32;
            assert_eq!(got, vec![expect]);
        });
    }

    #[test]
    fn split_groups_are_isolated() {
        run_ranks(4, |c| {
            let sub = c.split((c.rank() % 2) as u64);
            // Same tag in both groups; contexts must keep them apart.
            let peer = 1 - sub.rank();
            sub.send(peer, 9, vec![c.rank() as f32].into());
            let got = sub.recv(peer, 9).into_f32()[0] as usize;
            assert_eq!(got % 2, c.rank() % 2, "crossed group boundary!");
        });
    }

    #[test]
    fn nested_split_works() {
        run_ranks(8, |c| {
            let half = c.split((c.rank() / 4) as u64); // two groups of 4
            let pair = half.split((half.rank() / 2) as u64); // four groups of 2
            assert_eq!(pair.size(), 2);
            pair.send(1 - pair.rank(), 1, vec![c.rank() as u64].into());
            let got = pair.recv(1 - pair.rank(), 1).into_u64()[0] as usize;
            // Partner differs by exactly 1 in world rank.
            assert_eq!(got ^ c.rank(), 1);
        });
    }

    #[test]
    fn isend_irecv_preserve_fifo_per_sender_tag() {
        // Non-overtaking: requests posted in order and waited in order see
        // messages in send order, even when sends race ahead and tests
        // interleave.
        run_ranks(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    let req = c.isend(1, 1, vec![i as f32].into());
                    assert!(req.is_complete());
                }
            } else {
                let mut reqs: Vec<_> = (0..100).map(|_| c.irecv(0, 1)).collect();
                // Poll out of order: completion must not steal a message
                // out of FIFO position for the post-order wait below.
                for r in reqs.iter_mut().rev() {
                    c.test(r);
                }
                for (i, payload) in c.wait_all(reqs).into_iter().enumerate() {
                    assert_eq!(payload.into_f32(), vec![i as f32]);
                }
            }
        });
    }

    #[test]
    fn test_latches_and_wait_returns_buffered_payload() {
        run_ranks(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                c.send(1, 4, vec![7.0f32].into());
            } else {
                let mut req = c.irecv(0, 4);
                // Nothing sent yet: must not complete.
                assert!(!c.test(&mut req));
                c.barrier();
                // Spin until arrival, then confirm the latch holds.
                while !c.test(&mut req) {
                    std::thread::yield_now();
                }
                assert!(c.test(&mut req));
                assert_eq!(c.wait(req).into_f32(), vec![7.0]);
            }
        });
    }

    #[test]
    fn stats_classify_families() {
        use crate::collectives::{allreduce, broadcast, ReduceOp};
        let world = World::new(2);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(move || {
                    let msg = (c.rank() == 0).then(|| vec![1.0f32; 8]);
                    broadcast(c, 0, msg);
                    allreduce(c, vec![c.rank() as f32; 16], ReduceOp::Sum);
                });
            }
        });
        let stats = world.stats();
        let bc = stats.family(CommFamily::Broadcast);
        let ar = stats.family(CommFamily::Allreduce);
        assert_eq!(bc.msgs, 1, "one broadcast relay at n=2");
        assert_eq!(bc.bytes, 32);
        // Ring at n=2: each rank sends 2 chunks of 8 floats.
        assert_eq!(ar.msgs, 4);
        assert_eq!(ar.bytes, 2 * 2 * 8 * 4);
        assert_eq!(stats.total_msgs, bc.msgs + ar.msgs);
        assert_eq!(stats.total_bytes, bc.bytes + ar.bytes);
        assert_eq!(stats.family(CommFamily::Alltoall), FamilyStats::default());
    }

    #[test]
    fn supernode_split_attributes_a2a_bytes() {
        use crate::collectives::alltoallv;
        let world = World::new(4);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(move || {
                    // Supernodes of 2: ranks {0,1} and {2,3}.
                    c.set_supernode_size(2);
                    // One f32 to every rank. The self-part never touches
                    // the wire, so each rank has 1 intra and 2 inter wire
                    // destinations.
                    let parts: Vec<Vec<f32>> = (0..c.size()).map(|d| vec![d as f32]).collect();
                    alltoallv(c, parts);
                });
            }
        });
        let stats = world.stats();
        assert_eq!(stats.a2a_intra_bytes, 4 * 4);
        assert_eq!(stats.a2a_inter_bytes, 4 * 2 * 4);
        assert_eq!(stats.a2a_local_fraction(), Some(1.0 / 3.0));
        assert_eq!(
            stats.a2a_intra_bytes + stats.a2a_inter_bytes,
            stats.family(CommFamily::Alltoall).bytes
        );
    }

    #[test]
    fn supernode_split_disabled_counts_nothing() {
        use crate::collectives::alltoallv;
        let world = World::new(2);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(move || {
                    let parts: Vec<Vec<f32>> = (0..c.size()).map(|d| vec![d as f32]).collect();
                    alltoallv(c, parts);
                });
            }
        });
        let stats = world.stats();
        assert!(stats.family(CommFamily::Alltoall).bytes > 0);
        assert_eq!(stats.a2a_intra_bytes, 0);
        assert_eq!(stats.a2a_inter_bytes, 0);
        assert_eq!(stats.a2a_local_fraction(), None);
    }

    #[test]
    fn world_counts_traffic() {
        let world = World::new(2);
        let comms = world.comms();
        std::thread::scope(|s| {
            let (c0, c1) = {
                let mut it = comms.into_iter();
                (it.next().unwrap(), it.next().unwrap())
            };
            s.spawn(move || c0.send(1, 1, vec![0.0f32; 256].into()));
            s.spawn(move || {
                c1.recv(0, 1);
            });
        });
        assert_eq!(world.bytes_sent(), 1024);
        assert_eq!(world.messages_sent(), 1);
    }
}
