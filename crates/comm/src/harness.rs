//! Rank thread harness: spawn one thread per rank, join, propagate panics.

use crate::shm::{ShmComm, World};

/// Run `f` on `n` ranks, one OS thread each. Panics in any rank are
/// propagated to the caller after all threads have been joined.
pub fn run_ranks<F>(n: usize, f: F)
where
    F: Fn(ShmComm) + Send + Sync,
{
    run_ranks_map(n, f);
}

/// Like [`run_ranks`] but collects one result per rank, in rank order.
pub fn run_ranks_map<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(ShmComm) -> R + Send + Sync,
    R: Send,
{
    let world = World::new(n);
    let comms = world.comms();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms.into_iter().map(|c| s.spawn(move || f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Run `f` on `n` ranks and also return the world's traffic counters
/// `(bytes_sent, messages_sent)` — used by communication-volume experiments.
pub fn run_ranks_counted<F>(n: usize, f: F) -> (u64, u64)
where
    F: Fn(ShmComm) + Send + Sync,
{
    let world = World::new(n);
    let comms = world.comms();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms.into_iter().map(|c| s.spawn(move || f(c))).collect();
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
    (world.bytes_sent(), world.messages_sent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::Communicator;

    #[test]
    fn map_returns_in_rank_order() {
        let out = run_ranks_map(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn panics_propagate() {
        run_ranks(4, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn counted_reports_traffic() {
        use crate::shm::Communicator;
        let (bytes, msgs) = run_ranks_counted(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u64; 4].into());
            } else {
                c.recv(0, 1);
            }
        });
        assert_eq!(bytes, 32);
        assert_eq!(msgs, 1);
    }
}
