//! Rank thread harness: spawn one thread per rank, join, propagate panics.
//!
//! Fault-aware variants: [`run_ranks_ft`] traps per-rank panics and comm
//! errors into [`RankOutcome`]s (marking the failed rank dead so survivors'
//! timeout receives resolve instead of hanging), and [`run_ranks_deadline`]
//! is the deadlock watchdog for tests — a mismatched-tag hang fails within
//! the deadline with a diagnostic instead of stalling CI.

use crate::fault::CommError;
use crate::shm::{ShmComm, World};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Run `f` on `n` ranks, one OS thread each. Panics in any rank are
/// propagated to the caller after all threads have been joined.
pub fn run_ranks<F>(n: usize, f: F)
where
    F: Fn(ShmComm) + Send + Sync,
{
    run_ranks_map(n, f);
}

/// Like [`run_ranks`] but collects one result per rank, in rank order.
pub fn run_ranks_map<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(ShmComm) -> R + Send + Sync,
    R: Send,
{
    let world = World::new(n);
    let comms = world.comms();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms.into_iter().map(|c| s.spawn(move || f(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Run `f` on `n` ranks and also return the world's traffic counters
/// `(bytes_sent, messages_sent)` — used by communication-volume experiments.
pub fn run_ranks_counted<F>(n: usize, f: F) -> (u64, u64)
where
    F: Fn(ShmComm) + Send + Sync,
{
    let world = World::new(n);
    let comms = world.comms();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms.into_iter().map(|c| s.spawn(move || f(c))).collect();
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
    (world.bytes_sent(), world.messages_sent())
}

/// How one rank of a fault-tolerant run ended.
#[derive(Debug)]
pub enum RankOutcome<R> {
    /// The rank's closure returned normally.
    Ok(R),
    /// The rank panicked (fault-injected crash or a bug); the payload is
    /// the panic message.
    Crashed(String),
    /// The rank aborted on a communication error — a deadline receive
    /// timed out or a peer was found dead.
    TimedOut(CommError),
}

impl<R> RankOutcome<R> {
    /// Did the rank's closure return normally?
    pub fn is_ok(&self) -> bool {
        matches!(self, RankOutcome::Ok(_))
    }

    /// The result of a successful rank, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            RankOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Run `f` on every rank of `world`, trapping failures per rank instead of
/// propagating them. A rank that panics or returns `Err` is marked **dead**
/// in the world before its thread exits, which wakes every blocked
/// receiver: survivors' `recv_timeout`/failure-aware collectives resolve
/// with [`CommError::PeerDead`] promptly instead of waiting out their full
/// deadline. Returns one [`RankOutcome`] per rank, in rank order.
pub fn run_ranks_ft<F, R>(world: &World, f: F) -> Vec<RankOutcome<R>>
where
    F: Fn(ShmComm) -> Result<R, CommError> + Send + Sync,
    R: Send,
{
    let comms = world.comms();
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, c)| {
                s.spawn(move || {
                    let world_rank = c.world_rank_of(rank);
                    let result = catch_unwind(AssertUnwindSafe(|| f(c)));
                    let outcome = match result {
                        Ok(Ok(r)) => RankOutcome::Ok(r),
                        Ok(Err(e)) => RankOutcome::TimedOut(e),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".into());
                            RankOutcome::Crashed(msg)
                        }
                    };
                    // Mark death from inside the failing thread, before any
                    // join: survivors blocked on this rank wake immediately
                    // with `PeerDead` instead of waiting out their timeout.
                    if !outcome.is_ok() {
                        world.mark_dead(world_rank);
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| unreachable!("rank closure is catch_unwind-wrapped"))
            })
            .collect()
    })
}

/// Watchdog wrapper for comm tests: run `f` on `n` ranks, but fail with a
/// diagnostic panic if the whole world has not finished within `deadline` —
/// a mismatched tag or a swallowed message then costs seconds, not a CI
/// job timeout. Rank panics propagate as usual when the run does finish.
///
/// On deadline expiry the stuck rank threads are leaked (they are blocked
/// on condvars and cannot be cancelled); the test process reaps them at
/// exit.
pub fn run_ranks_deadline<F>(n: usize, deadline: Duration, f: F)
where
    F: Fn(ShmComm) + Send + Sync + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| run_ranks(n, f)));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(deadline) {
        Ok(Ok(())) => {}
        Ok(Err(panic)) => resume_unwind(panic),
        Err(_) => panic!(
            "deadlock watchdog: {n} ranks still running after {deadline:?} — \
             likely a mismatched (src, tag) pair, a missing send, or a \
             dropped message with no timeout on the receive"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::Communicator;

    #[test]
    fn map_returns_in_rank_order() {
        let out = run_ranks_map(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn panics_propagate() {
        run_ranks(4, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn ft_collects_outcomes_instead_of_propagating() {
        use crate::fault::FtCommunicator;
        let world = World::new(3);
        let outcomes = run_ranks_ft(&world, |c| {
            match c.rank() {
                0 => Ok(c.rank()),
                1 => panic!("injected: rank 1 dies"),
                // Rank 2 waits on the dead rank 1 and must resolve, not hang.
                _ => c
                    .recv_timeout(1, 9, Duration::from_secs(5))
                    .map(|_| usize::MAX),
            }
        });
        assert!(matches!(outcomes[0], RankOutcome::Ok(0)));
        assert!(matches!(&outcomes[1], RankOutcome::Crashed(m) if m.contains("rank 1 dies")));
        assert!(matches!(
            &outcomes[2],
            RankOutcome::TimedOut(CommError::PeerDead { peer: 1 })
        ));
        assert!(world.is_dead(1));
        assert!(!world.is_dead(0));
    }

    #[test]
    fn deadline_passes_fast_runs_through() {
        run_ranks_deadline(4, Duration::from_secs(30), |c| {
            let peer = c.size() - 1 - c.rank();
            if peer != c.rank() {
                c.send(peer, 1, vec![c.rank() as u64].into());
                assert_eq!(c.recv(peer, 1).into_u64(), vec![peer as u64]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "deadlock watchdog")]
    fn deadline_catches_a_mismatched_tag_hang() {
        // Rank 1 receives on a tag nobody sends: a classic deadlock that
        // would stall CI forever without the watchdog.
        run_ranks_deadline(2, Duration::from_millis(300), |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f32].into());
            } else {
                c.recv(0, 8);
            }
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn deadline_still_propagates_rank_panics() {
        run_ranks_deadline(2, Duration::from_secs(30), |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn counted_reports_traffic() {
        use crate::shm::Communicator;
        let (bytes, msgs) = run_ranks_counted(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0u64; 4].into());
            } else {
                c.recv(0, 1);
            }
        });
        assert_eq!(bytes, 32);
        assert_eq!(msgs, 1);
    }
}
