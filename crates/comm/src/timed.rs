//! Virtual-time accounting over any communicator.
//!
//! Functional runs execute on OS threads whose wall-clock says nothing
//! about the target machine. [`TimedComm`] wraps a communicator and
//! charges every message the α–β cost it would have on a configured
//! topology (per-rank virtual clocks, receiver waits for sender), so a
//! *functional* training step also yields the *simulated* communication
//! time it would spend on the machine — per rank, per collective family.
//!
//! The α–β constants come in through [`LinkCost`], a trait the caller
//! implements (in practice from `bagualu_hw::NetworkParams`; this crate
//! stays independent of the hardware crate).

use crate::payload::Payload;
use crate::shm::Communicator;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cost of moving `bytes` between two ranks, seconds.
pub trait LinkCost: Send + Sync {
    fn cost(&self, from: usize, to: usize, bytes: usize) -> f64;
}

/// Simple two-level α–β cost: ranks in the same `supernode_size` block use
/// the intra constants, others the inter constants.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelCost {
    pub supernode_size: usize,
    pub alpha_intra: f64,
    pub beta_intra: f64, // seconds per byte
    pub alpha_inter: f64,
    pub beta_inter: f64,
}

impl TwoLevelCost {
    /// Constants mirroring `bagualu_hw::NetworkParams::sunway()`.
    pub fn sunway_like(supernode_size: usize) -> TwoLevelCost {
        TwoLevelCost {
            supernode_size,
            alpha_intra: 2.5e-6,
            beta_intra: 1.0 / 16.0e9,
            alpha_inter: 4.5e-6,
            beta_inter: 1.0 / 4.0e9,
        }
    }
}

impl LinkCost for TwoLevelCost {
    fn cost(&self, from: usize, to: usize, bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let same = from / self.supernode_size == to / self.supernode_size;
        if same {
            self.alpha_intra + bytes as f64 * self.beta_intra
        } else {
            self.alpha_inter + bytes as f64 * self.beta_inter
        }
    }
}

/// Shared virtual clocks, one per rank.
struct Clocks {
    now: Mutex<Vec<f64>>,
}

/// A communicator that forwards to `inner` while accumulating virtual
/// communication time on per-rank clocks.
///
/// Timing rule (a standard LogP-style approximation): a message from `s`
/// to `r` arrives at `max(clock_s, clock_r) + cost(s, r, bytes)`; the
/// receive advances the receiver's clock to the arrival time. Sends are
/// asynchronous and do not advance the sender.
pub struct TimedComm<C: Communicator, L: LinkCost> {
    inner: C,
    cost: Arc<L>,
    clocks: Arc<Clocks>,
}

impl<C: Communicator, L: LinkCost> TimedComm<C, L> {
    /// Wrap a full set of communicators (one per rank) with shared clocks.
    pub fn wrap_all(comms: Vec<C>, cost: L) -> Vec<TimedComm<C, L>> {
        let n = comms.len();
        let clocks = Arc::new(Clocks { now: Mutex::new(vec![0.0; n]) });
        let cost = Arc::new(cost);
        comms
            .into_iter()
            .map(|inner| TimedComm { inner, cost: cost.clone(), clocks: clocks.clone() })
            .collect()
    }

    /// This rank's virtual communication time so far, seconds.
    pub fn virtual_time(&self) -> f64 {
        self.clocks.now.lock()[self.inner.rank()]
    }

    /// Maximum virtual time across all ranks (the collective's makespan).
    pub fn virtual_makespan(&self) -> f64 {
        self.clocks.now.lock().iter().cloned().fold(0.0, f64::max)
    }
}

impl<C: Communicator, L: LinkCost> Communicator for TimedComm<C, L> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        // Stamp the virtual send time into the message path: the receiver
        // will fold it in when it receives. We piggyback by advancing the
        // receiver-side bookkeeping at receive time instead, which needs the
        // sender's clock; capture it now into a side-channel message.
        let bytes = payload.wire_bytes();
        {
            let clocks = self.clocks.now.lock();
            let send_time = clocks[self.inner.rank()];
            drop(clocks);
            // Header carries (send_time_bits, bytes) for the timing fold.
            self.inner.send(
                dst,
                tag ^ TIME_TAG_XOR,
                vec![send_time.to_bits(), bytes as u64].into(),
            );
        }
        self.inner.send(dst, tag, payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        let hdr = self.inner.recv(src, tag ^ TIME_TAG_XOR).into_u64();
        let payload = self.inner.recv(src, tag);
        let send_time = f64::from_bits(hdr[0]);
        let bytes = hdr[1] as usize;
        let me = self.inner.rank();
        let world_src = src;
        let mut clocks = self.clocks.now.lock();
        let arrival =
            send_time.max(clocks[me]) + self.cost.cost(world_src, me, bytes);
        clocks[me] = arrival;
        payload
    }

    fn barrier(&self) {
        self.inner.barrier();
        // A barrier synchronizes virtual clocks to the slowest rank.
        let mut clocks = self.clocks.now.lock();
        let max = clocks.iter().cloned().fold(0.0, f64::max);
        clocks.iter_mut().for_each(|c| *c = max);
    }
}

/// Tag-space split for the timing headers (flips a high bit that the
/// collectives' tag constants never use).
const TIME_TAG_XOR: u64 = 1 << 62;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, alltoallv, alltoallv_hierarchical, ReduceOp};
    use crate::shm::World;

    fn run_timed<F, R>(n: usize, sn: usize, f: F) -> Vec<R>
    where
        F: Fn(&TimedComm<crate::shm::ShmComm, TwoLevelCost>) -> R + Send + Sync,
        R: Send,
    {
        let world = World::new(n);
        let comms = TimedComm::wrap_all(world.comms(), TwoLevelCost::sunway_like(sn));
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(move || f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn point_to_point_charges_alpha_beta() {
        let times = run_timed(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![0.0f32; 1000].into());
                0.0
            } else {
                c.recv(0, 5).into_f32();
                c.virtual_time()
            }
        });
        let cost = TwoLevelCost::sunway_like(2);
        let expect = cost.alpha_intra + 4000.0 * cost.beta_intra;
        assert!((times[1] - expect).abs() < 1e-12, "{} vs {expect}", times[1]);
    }

    #[test]
    fn cross_supernode_costs_more() {
        let t_near = run_timed(4, 4, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0f32; 1 << 12].into());
            } else if c.rank() == 1 {
                c.recv(0, 1);
                return c.virtual_time();
            }
            0.0
        })[1];
        let t_far = run_timed(4, 2, |c| {
            // supernodes of 2: rank 0 → rank 3 crosses.
            if c.rank() == 0 {
                c.send(3, 1, vec![0.0f32; 1 << 12].into());
            } else if c.rank() == 3 {
                c.recv(0, 1);
                return c.virtual_time();
            }
            0.0
        })[3];
        assert!(t_far > t_near * 2.0, "{t_far} vs {t_near}");
    }

    #[test]
    fn collectives_run_and_accumulate_makespan() {
        let makespans = run_timed(8, 4, |c| {
            let out = allreduce(c, vec![c.rank() as f32; 64], ReduceOp::Sum);
            assert_eq!(out[0], 28.0);
            c.barrier();
            c.virtual_makespan()
        });
        // Every rank agrees after the barrier, and time passed.
        assert!(makespans[0] > 0.0);
        for m in &makespans {
            assert!((m - makespans[0]).abs() < 1e-15);
        }
    }

    #[test]
    fn hierarchical_a2a_beats_pairwise_in_virtual_time() {
        // At 16 ranks with tiny messages, fewer cross-supernode messages
        // must show up as less virtual time — the functional counterpart of
        // the E3 projection, measured on the real algorithms.
        let n = 16;
        let mk = |rank: usize| -> Vec<Vec<f32>> { (0..n).map(|_| vec![rank as f32; 8]).collect() };
        let flat = run_timed(n, 4, |c| {
            alltoallv(c, mk(c.rank()));
            c.barrier();
            c.virtual_makespan()
        })[0];
        let hier = run_timed(n, 4, |c| {
            alltoallv_hierarchical(c, mk(c.rank()), 4);
            c.barrier();
            c.virtual_makespan()
        })[0];
        assert!(
            hier < flat,
            "hierarchical {hier} should beat pairwise {flat} in virtual time"
        );
    }

    #[test]
    fn self_messages_are_free() {
        let t = run_timed(2, 2, |c| {
            c.send(c.rank(), 9, vec![0.0f32; 1 << 16].into());
            c.recv(c.rank(), 9);
            c.virtual_time()
        });
        assert_eq!(t[0], 0.0);
    }
}
