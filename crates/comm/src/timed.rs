//! Virtual-time accounting over any communicator.
//!
//! Functional runs execute on OS threads whose wall-clock says nothing
//! about the target machine. [`TimedComm`] wraps a communicator and
//! charges every message the α–β cost it would have on a configured
//! topology (per-rank virtual clocks, receiver waits for sender), so a
//! *functional* training step also yields the *simulated* communication
//! time it would spend on the machine — per rank, per collective family.
//!
//! The α–β constants come in through [`LinkCost`], a trait the caller
//! implements (in practice from `bagualu_hw::NetworkParams`; this crate
//! stays independent of the hardware crate).

use crate::fault::{CommError, FtCommunicator};
use crate::payload::Payload;
use crate::shm::{CommStats, Communicator};
use parking_lot::Mutex;
use std::sync::Arc;

/// Cost of moving `bytes` between two ranks, seconds.
pub trait LinkCost: Send + Sync {
    /// Seconds charged for moving `bytes` from rank `from` to rank `to`.
    fn cost(&self, from: usize, to: usize, bytes: usize) -> f64;
}

/// Simple two-level α–β cost: ranks in the same `supernode_size` block use
/// the intra constants, others the inter constants.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelCost {
    /// Ranks per supernode block (intra-block links are the fast ones).
    pub supernode_size: usize,
    /// Intra-block latency, seconds.
    pub alpha_intra: f64,
    /// Intra-block inverse bandwidth, seconds per byte.
    pub beta_intra: f64,
    /// Inter-block latency, seconds.
    pub alpha_inter: f64,
    /// Inter-block inverse bandwidth, seconds per byte.
    pub beta_inter: f64,
}

impl TwoLevelCost {
    /// Constants mirroring `bagualu_hw::NetworkParams::sunway()`.
    pub fn sunway_like(supernode_size: usize) -> TwoLevelCost {
        TwoLevelCost {
            supernode_size,
            alpha_intra: 2.5e-6,
            beta_intra: 1.0 / 16.0e9,
            alpha_inter: 4.5e-6,
            beta_inter: 1.0 / 4.0e9,
        }
    }
}

impl LinkCost for TwoLevelCost {
    fn cost(&self, from: usize, to: usize, bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let same = from / self.supernode_size == to / self.supernode_size;
        if same {
            self.alpha_intra + bytes as f64 * self.beta_intra
        } else {
            self.alpha_inter + bytes as f64 * self.beta_inter
        }
    }
}

/// Shared virtual clocks, one per rank.
struct Clocks {
    now: Mutex<Vec<f64>>,
}

/// A communicator that forwards to `inner` while accumulating virtual
/// communication time on per-rank clocks.
///
/// Timing rule (a standard LogP-style approximation): a message from `s`
/// to `r` arrives at `max(clock_s, clock_r) + cost(s, r, bytes)`; the
/// receive advances the receiver's clock to the arrival time. Sends are
/// asynchronous and do not advance the sender.
pub struct TimedComm<C: Communicator, L: LinkCost> {
    inner: C,
    cost: Arc<L>,
    clocks: Arc<Clocks>,
}

impl<C: Communicator, L: LinkCost> TimedComm<C, L> {
    /// Wrap a full set of communicators (one per rank) with shared clocks.
    pub fn wrap_all(comms: Vec<C>, cost: L) -> Vec<TimedComm<C, L>> {
        let n = comms.len();
        let clocks = Arc::new(Clocks {
            now: Mutex::new(vec![0.0; n]),
        });
        let cost = Arc::new(cost);
        comms
            .into_iter()
            .map(|inner| TimedComm {
                inner,
                cost: cost.clone(),
                clocks: clocks.clone(),
            })
            .collect()
    }

    /// This rank's virtual communication time so far, seconds.
    pub fn virtual_time(&self) -> f64 {
        self.clocks.now.lock()[self.inner.rank()]
    }

    /// Maximum virtual time across all ranks (the collective's makespan).
    pub fn virtual_makespan(&self) -> f64 {
        self.clocks.now.lock().iter().cloned().fold(0.0, f64::max)
    }
}

/// A pending receive on a [`TimedComm`]: the two inner requests (timing
/// header + payload) plus the virtual *post* time.
///
/// The timing rule makes overlap visible in simulated time: the message's
/// transfer is charged from `max(send_time, posted_at)` — the moment both
/// endpoints were ready — **not** from the receiver's clock at `wait`. A
/// receiver that posts several `irecv`s early and waits later therefore
/// pays the transfer costs concurrently (its clock advances to the max of
/// the arrivals), whereas back-to-back blocking `recv`s serialize them.
pub struct TimedRecv<R> {
    hdr: Option<R>,
    dat: Option<R>,
    src: usize,
    posted_at: f64,
    /// Parsed from the header once it lands.
    send_time: f64,
    bytes: usize,
    hdr_done: bool,
    /// Set once both inner requests have completed.
    arrival: Option<f64>,
    payload: Option<Payload>,
}

impl<C: Communicator, L: LinkCost> TimedComm<C, L> {
    /// Compute arrival and buffer the payload once both halves are in.
    fn complete_recv(&self, req: &mut TimedRecv<C::RecvReq>, payload: Payload) {
        let me = self.inner.rank();
        let ready = self.cost.cost(req.src, me, req.bytes);
        req.arrival = Some(req.send_time.max(req.posted_at) + ready);
        req.payload = Some(payload);
    }
}

impl<C: Communicator, L: LinkCost> Communicator for TimedComm<C, L> {
    type RecvReq = TimedRecv<C::RecvReq>;

    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        // Stamp the virtual send time into the message path: the receiver
        // will fold it in when it receives. We piggyback by advancing the
        // receiver-side bookkeeping at receive time instead, which needs the
        // sender's clock; capture it now into a side-channel message.
        let bytes = payload.wire_bytes();
        {
            let clocks = self.clocks.now.lock();
            let send_time = clocks[self.inner.rank()];
            drop(clocks);
            // Header carries (send_time_bits, bytes) for the timing fold.
            self.inner.send(
                dst,
                tag ^ TIME_TAG_XOR,
                vec![send_time.to_bits(), bytes as u64].into(),
            );
        }
        self.inner.send(dst, tag, payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        // Blocking receive ≡ wait(irecv(..)): posted_at equals the clock at
        // the call, reproducing the original `max(send_time, clock) + cost`
        // rule exactly.
        let req = self.irecv(src, tag);
        self.wait(req)
    }

    fn irecv(&self, src: usize, tag: u64) -> TimedRecv<C::RecvReq> {
        let posted_at = self.clocks.now.lock()[self.inner.rank()];
        TimedRecv {
            hdr: Some(self.inner.irecv(src, tag ^ TIME_TAG_XOR)),
            dat: Some(self.inner.irecv(src, tag)),
            src,
            posted_at,
            send_time: 0.0,
            bytes: 0,
            hdr_done: false,
            arrival: None,
            payload: None,
        }
    }

    fn test(&self, req: &mut TimedRecv<C::RecvReq>) -> bool {
        if req.payload.is_some() {
            return true;
        }
        if !req.hdr_done {
            let mut hdr = req.hdr.take().expect("header request present");
            if !self.inner.test(&mut hdr) {
                req.hdr = Some(hdr);
                return false;
            }
            let parsed = self.inner.wait(hdr).into_u64();
            req.send_time = f64::from_bits(parsed[0]);
            req.bytes = parsed[1] as usize;
            req.hdr_done = true;
        }
        let mut dat = req.dat.take().expect("payload request present");
        if !self.inner.test(&mut dat) {
            req.dat = Some(dat);
            return false;
        }
        let payload = self.inner.wait(dat);
        self.complete_recv(req, payload);
        true
    }

    fn wait(&self, mut req: TimedRecv<C::RecvReq>) -> Payload {
        if req.payload.is_none() {
            if !req.hdr_done {
                let parsed = self
                    .inner
                    .wait(req.hdr.take().expect("header request present"))
                    .into_u64();
                req.send_time = f64::from_bits(parsed[0]);
                req.bytes = parsed[1] as usize;
                req.hdr_done = true;
            }
            let payload = self
                .inner
                .wait(req.dat.take().expect("payload request present"));
            self.complete_recv(&mut req, payload);
        }
        let arrival = req.arrival.expect("completed request has an arrival time");
        let me = self.inner.rank();
        let mut clocks = self.clocks.now.lock();
        clocks[me] = clocks[me].max(arrival);
        req.payload.expect("completed request has a payload")
    }

    fn barrier(&self) {
        self.inner.barrier();
        // A barrier synchronizes virtual clocks to the slowest rank.
        let mut clocks = self.clocks.now.lock();
        let max = clocks.iter().cloned().fold(0.0, f64::max);
        clocks.iter_mut().for_each(|c| *c = max);
    }

    fn stats(&self) -> Option<CommStats> {
        self.inner.stats()
    }

    fn set_supernode_size(&self, supernode_size: usize) {
        // Byte accounting lives in the inner transport; the virtual-time
        // layer already charges intra- vs inter-supernode α/β through its
        // `TwoLevelCost` link model.
        self.inner.set_supernode_size(supernode_size);
    }

    fn send_occupancy_ns(&self) -> Option<u64> {
        self.inner.send_occupancy_ns()
    }
}

impl<C: FtCommunicator, L: LinkCost> FtCommunicator for TimedComm<C, L> {
    /// Deadline receive that still charges virtual time on success. The
    /// deadline is wall-clock (failure detection runs on the host), the
    /// charge on success is virtual (the modeled machine).
    fn recv_timeout(
        &self,
        src: usize,
        tag: u64,
        timeout: std::time::Duration,
    ) -> Result<Payload, CommError> {
        let posted_at = self.clocks.now.lock()[self.inner.rank()];
        let start = std::time::Instant::now();
        // Report the caller's logical tag in errors, not the header tag.
        let logical_tag = |e| match e {
            CommError::Timeout { src, waited_ms, .. } => CommError::Timeout {
                src,
                tag,
                waited_ms,
            },
            other => other,
        };
        let hdr = self
            .inner
            .recv_timeout(src, tag ^ TIME_TAG_XOR, timeout)
            .map_err(logical_tag)?
            .into_u64();
        let send_time = f64::from_bits(hdr[0]);
        let bytes = hdr[1] as usize;
        let remaining = timeout.saturating_sub(start.elapsed());
        let payload = self.inner.recv_timeout(src, tag, remaining)?;
        let me = self.inner.rank();
        let arrival = send_time.max(posted_at) + self.cost.cost(src, me, bytes);
        let mut clocks = self.clocks.now.lock();
        clocks[me] = clocks[me].max(arrival);
        Ok(payload)
    }

    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        if self.inner.is_dead(dst) {
            return Err(CommError::PeerDead { peer: dst });
        }
        self.send(dst, tag, payload);
        Ok(())
    }

    fn mark_self_dead(&self) {
        self.inner.mark_self_dead();
    }

    fn is_dead(&self, group_rank: usize) -> bool {
        self.inner.is_dead(group_rank)
    }
}

/// Tag-space split for the timing headers (flips a high bit that the
/// collectives' tag constants never use).
pub(crate) const TIME_TAG_XOR: u64 = 1 << 62;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce, alltoallv, alltoallv_hierarchical, ReduceOp};
    use crate::shm::World;

    fn run_timed<F, R>(n: usize, sn: usize, f: F) -> Vec<R>
    where
        F: Fn(&TimedComm<crate::shm::ShmComm, TwoLevelCost>) -> R + Send + Sync,
        R: Send,
    {
        let world = World::new(n);
        let comms = TimedComm::wrap_all(world.comms(), TwoLevelCost::sunway_like(sn));
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(move || f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn point_to_point_charges_alpha_beta() {
        let times = run_timed(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![0.0f32; 1000].into());
                0.0
            } else {
                c.recv(0, 5).into_f32();
                c.virtual_time()
            }
        });
        let cost = TwoLevelCost::sunway_like(2);
        let expect = cost.alpha_intra + 4000.0 * cost.beta_intra;
        assert!(
            (times[1] - expect).abs() < 1e-12,
            "{} vs {expect}",
            times[1]
        );
    }

    #[test]
    fn cross_supernode_costs_more() {
        let t_near = run_timed(4, 4, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0f32; 1 << 12].into());
            } else if c.rank() == 1 {
                c.recv(0, 1);
                return c.virtual_time();
            }
            0.0
        })[1];
        let t_far = run_timed(4, 2, |c| {
            // supernodes of 2: rank 0 → rank 3 crosses.
            if c.rank() == 0 {
                c.send(3, 1, vec![0.0f32; 1 << 12].into());
            } else if c.rank() == 3 {
                c.recv(0, 1);
                return c.virtual_time();
            }
            0.0
        })[3];
        assert!(t_far > t_near * 2.0, "{t_far} vs {t_near}");
    }

    #[test]
    fn collectives_run_and_accumulate_makespan() {
        let makespans = run_timed(8, 4, |c| {
            let out = allreduce(c, vec![c.rank() as f32; 64], ReduceOp::Sum);
            assert_eq!(out[0], 28.0);
            c.barrier();
            c.virtual_makespan()
        });
        // Every rank agrees after the barrier, and time passed.
        assert!(makespans[0] > 0.0);
        for m in &makespans {
            assert!((m - makespans[0]).abs() < 1e-15);
        }
    }

    #[test]
    fn hierarchical_a2a_beats_pairwise_in_virtual_time() {
        // At 16 ranks with tiny messages, fewer cross-supernode messages
        // must show up as less virtual time — the functional counterpart of
        // the E3 projection, measured on the real algorithms.
        let n = 16;
        let mk = |rank: usize| -> Vec<Vec<f32>> { (0..n).map(|_| vec![rank as f32; 8]).collect() };
        let flat = run_timed(n, 4, |c| {
            alltoallv(c, mk(c.rank()));
            c.barrier();
            c.virtual_makespan()
        })[0];
        let hier = run_timed(n, 4, |c| {
            alltoallv_hierarchical(c, mk(c.rank()), 4);
            c.barrier();
            c.virtual_makespan()
        })[0];
        assert!(
            hier < flat,
            "hierarchical {hier} should beat pairwise {flat} in virtual time"
        );
    }

    #[test]
    fn overlapped_irecvs_beat_sequential_recvs_in_virtual_time() {
        // Rank 2 receives one large message from each of ranks 0 and 1.
        // Blocking back-to-back receives serialize the two transfer costs;
        // posting both irecvs first lets the modeled transfers overlap, so
        // the clock advances to the max of the arrivals, not the sum.
        let serial = run_timed(3, 4, |c| {
            if c.rank() < 2 {
                c.send(2, 5, vec![0.0f32; 1 << 14].into());
                0.0
            } else {
                c.recv(0, 5);
                c.recv(1, 5);
                c.virtual_time()
            }
        })[2];
        let overlapped = run_timed(3, 4, |c| {
            if c.rank() < 2 {
                c.send(2, 5, vec![0.0f32; 1 << 14].into());
                0.0
            } else {
                let r0 = c.irecv(0, 5);
                let r1 = c.irecv(1, 5);
                c.wait(r0);
                c.wait(r1);
                c.virtual_time()
            }
        })[2];
        let cost = TwoLevelCost::sunway_like(4);
        let one = cost.alpha_intra + ((1usize << 16) as f64) * cost.beta_intra;
        assert!(
            (serial - 2.0 * one).abs() < 1e-12,
            "serial {serial} vs {}",
            2.0 * one
        );
        assert!(
            (overlapped - one).abs() < 1e-12,
            "overlapped {overlapped} should equal one transfer {one}"
        );
    }

    #[test]
    fn blocking_recv_equals_wait_of_irecv() {
        // The refactored recv must charge exactly the pre-refactor cost.
        let t = run_timed(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![0.0f32; 500].into());
                0.0
            } else {
                let req = c.irecv(0, 3);
                c.wait(req);
                c.virtual_time()
            }
        })[1];
        let cost = TwoLevelCost::sunway_like(2);
        let expect = cost.alpha_intra + 2000.0 * cost.beta_intra;
        assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
    }

    #[test]
    fn recv_timeout_charges_virtual_time_on_success() {
        use std::time::Duration;
        let times = run_timed(2, 2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![0.0f32; 1000].into());
                0.0
            } else {
                c.recv_timeout(0, 5, Duration::from_secs(10))
                    .expect("message was sent");
                c.virtual_time()
            }
        });
        let cost = TwoLevelCost::sunway_like(2);
        let expect = cost.alpha_intra + 4000.0 * cost.beta_intra;
        assert!(
            (times[1] - expect).abs() < 1e-12,
            "{} vs {expect}",
            times[1]
        );
    }

    #[test]
    fn recv_timeout_times_out_when_nothing_is_sent() {
        use std::time::Duration;
        run_timed(2, 2, |c| {
            if c.rank() == 1 {
                let err = c
                    .recv_timeout(0, 5, Duration::from_millis(50))
                    .expect_err("nothing was sent");
                assert!(matches!(err, CommError::Timeout { src: 0, tag: 5, .. }));
                // The failed wait must not advance the virtual clock.
                assert_eq!(c.virtual_time(), 0.0);
            }
        });
    }

    #[test]
    fn self_messages_are_free() {
        let t = run_timed(2, 2, |c| {
            c.send(c.rank(), 9, vec![0.0f32; 1 << 16].into());
            c.recv(c.rank(), 9);
            c.virtual_time()
        });
        assert_eq!(t[0], 0.0);
    }
}
