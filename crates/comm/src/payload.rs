//! Typed message payloads.
//!
//! Training traffic is overwhelmingly `f32` tensors (gradients, activations)
//! plus small integer metadata (token ids, routing tables, counts). A small
//! enum keeps the transport monomorphic while preserving type safety at the
//! receive side.
//!
//! Comm-bound tensor traffic can additionally be *compressed on the wire*:
//! [`Payload::pack`] rounds `f32` data to 16-bit FP16/BF16 bit patterns
//! (via the bit-exact conversions in `bagualu_tensor`) and the receiver
//! expands back to `f32` with [`Payload::into_floats`]. Because
//! [`Payload::wire_bytes`] reports the *stored* representation, every byte
//! consumer downstream — `TimedComm`'s α–β cost, `CommStats`, fault-
//! injection accounting, trace counters — automatically sees the true
//! 2-byte elements.

use bagualu_tensor::pack::{pack_slice, unpack_slice};
use bagualu_tensor::DType;

/// Wire element format for `f32` tensor traffic.
///
/// The *master* data is always `f32`; this knob only controls how the bytes
/// look while in flight. `F32` is lossless; `F16`/`BF16` round each element
/// to 16 bits per hop (round-to-nearest-even), halving the β term of the
/// α–β cost model at the price of per-hop rounding noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireDType {
    /// Uncompressed 4-byte elements (the default; bit-exact).
    #[default]
    F32,
    /// IEEE binary16: 5 exponent bits, 11-bit significand, max finite
    /// 65504 — beware loss-scaled gradients overflowing to ±∞.
    F16,
    /// bfloat16: f32's 8 exponent bits with a 8-bit significand — same
    /// range as f32, coarser rounding. The safe default for gradients.
    BF16,
}

impl WireDType {
    /// Bytes per element in flight.
    pub const fn size_bytes(self) -> usize {
        match self {
            WireDType::F32 => 4,
            WireDType::F16 | WireDType::BF16 => 2,
        }
    }

    /// The 16-bit storage dtype, or `None` for the uncompressed wire.
    pub const fn half_dtype(self) -> Option<DType> {
        match self {
            WireDType::F32 => None,
            WireDType::F16 => Some(DType::F16),
            WireDType::BF16 => Some(DType::BF16),
        }
    }
}

impl std::fmt::Display for WireDType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireDType::F32 => "f32",
            WireDType::F16 => "f16",
            WireDType::BF16 => "bf16",
        })
    }
}

impl std::str::FromStr for WireDType {
    type Err = String;

    fn from_str(s: &str) -> Result<WireDType, String> {
        match s {
            "f32" | "fp32" => Ok(WireDType::F32),
            "f16" | "fp16" => Ok(WireDType::F16),
            "bf16" => Ok(WireDType::BF16),
            other => Err(format!(
                "unknown wire dtype '{other}' (expected f32, f16, or bf16)"
            )),
        }
    }
}

/// A message body.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Tensor data, uncompressed.
    F32(Vec<f32>),
    /// Tensor data compressed to a 16-bit wire format: the dtype names the
    /// bit layout of each `u16` (FP16 or BF16). Logical length equals the
    /// vector length — one element per `u16`.
    Half(DType, Vec<u16>),
    /// Metadata: token ids, counts, and other 8-byte records.
    U64(Vec<u64>),
    /// Compact metadata: expert assignments and other ids that fit 4 bytes.
    U32(Vec<u32>),
}

impl Payload {
    /// Wrap `f32` data for the wire, compressing per `wire`. `F32` wraps
    /// without copying; `F16`/`BF16` round each element to 16 bits.
    pub fn pack(wire: WireDType, v: Vec<f32>) -> Payload {
        match wire.half_dtype() {
            None => Payload::F32(v),
            Some(dt) => Payload::Half(dt, pack_slice(dt, &v)),
        }
    }

    /// Unwrap tensor data back to `f32`, expanding a compressed payload if
    /// needed; panics on metadata variants. The counterpart of
    /// [`Payload::pack`] — use it wherever the sender may compress.
    pub fn into_floats(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            Payload::Half(dt, bits) => unpack_slice(dt, &bits),
            other => panic!("expected tensor payload, got {}", other.variant_name()),
        }
    }

    /// Unwrap as uncompressed `f32` data; panics on any other variant. Tag
    /// discipline in the collectives guarantees the variant statically.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected F32 payload, got {}", other.variant_name()),
        }
    }

    /// Unwrap as `u64` metadata; panics if the message was something else.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.variant_name()),
        }
    }

    /// Unwrap as `u32` metadata; panics if the message was something else.
    pub fn into_u32(self) -> Vec<u32> {
        match self {
            Payload::U32(v) => v,
            other => panic!("expected U32 payload, got {}", other.variant_name()),
        }
    }

    /// Size in bytes of the payload body (what a wire would carry).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::Half(_, v) => v.len() * 2,
            Payload::U64(v) => v.len() * 8,
            Payload::U32(v) => v.len() * 4,
        }
    }

    /// Canonical label of the element format in flight ("fp32", "fp16",
    /// "bf16", "u64", "u32") — keys the per-dtype wire-byte trace counters.
    pub fn wire_label(&self) -> &'static str {
        match self {
            Payload::F32(_) => "fp32",
            Payload::Half(DType::F16, _) => "fp16",
            Payload::Half(_, _) => "bf16",
            Payload::U64(_) => "u64",
            Payload::U32(_) => "u32",
        }
    }

    fn variant_name(&self) -> &'static str {
        match self {
            Payload::F32(_) => "F32",
            Payload::Half(..) => "Half",
            Payload::U64(_) => "U64",
            Payload::U32(_) => "U32",
        }
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Payload {
        Payload::F32(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Payload {
        Payload::U64(v)
    }
}

impl From<Vec<u32>> for Payload {
    fn from(v: Vec<u32>) -> Payload {
        Payload::U32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f32() {
        let p: Payload = vec![1.0f32, 2.0].into();
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.into_f32(), vec![1.0, 2.0]);
    }

    #[test]
    fn round_trip_u64() {
        let p: Payload = vec![7u64].into();
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.into_u64(), vec![7]);
    }

    #[test]
    fn round_trip_u32() {
        let p: Payload = vec![7u32, 8].into();
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.into_u32(), vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn wrong_variant_panics() {
        Payload::U64(vec![1]).into_f32();
    }

    #[test]
    #[should_panic(expected = "expected tensor payload")]
    fn into_floats_rejects_metadata() {
        Payload::U32(vec![1]).into_floats();
    }

    #[test]
    fn pack_halves_wire_bytes_and_rounds() {
        let v = vec![1.0f32, 2.5, -3.25, 65504.0];
        let f32p = Payload::pack(WireDType::F32, v.clone());
        assert_eq!(f32p.wire_bytes(), 16);
        assert_eq!(f32p.clone().into_floats(), v);
        for wire in [WireDType::F16, WireDType::BF16] {
            let p = Payload::pack(wire, v.clone());
            assert_eq!(p.wire_bytes(), 8, "{wire}: 2 bytes per element");
            let dt = wire.half_dtype().unwrap();
            let back = p.into_floats();
            for (x, b) in v.iter().zip(&back) {
                assert_eq!(b.to_bits(), dt.round_trip(*x).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected F32 payload, got Half")]
    fn into_f32_stays_strict_about_compression() {
        // `into_f32` is the "this path must be lossless" assertion: a
        // compressed payload arriving there is a routing bug.
        Payload::pack(WireDType::BF16, vec![1.0]).into_f32();
    }

    #[test]
    fn wire_dtype_parses_and_prints() {
        for (s, w) in [
            ("f32", WireDType::F32),
            ("fp32", WireDType::F32),
            ("f16", WireDType::F16),
            ("fp16", WireDType::F16),
            ("bf16", WireDType::BF16),
        ] {
            assert_eq!(s.parse::<WireDType>().unwrap(), w);
        }
        assert!("f8".parse::<WireDType>().is_err());
        assert_eq!(WireDType::BF16.to_string(), "bf16");
        assert_eq!(WireDType::F16.size_bytes(), 2);
    }

    #[test]
    fn wire_labels() {
        assert_eq!(Payload::F32(vec![]).wire_label(), "fp32");
        assert_eq!(Payload::Half(DType::F16, vec![]).wire_label(), "fp16");
        assert_eq!(Payload::Half(DType::BF16, vec![]).wire_label(), "bf16");
        assert_eq!(Payload::U64(vec![]).wire_label(), "u64");
        assert_eq!(Payload::U32(vec![]).wire_label(), "u32");
    }
}
