//! Typed message payloads.
//!
//! Training traffic is overwhelmingly `f32` tensors (gradients, activations)
//! plus small `u64` metadata (token ids, routing tables, counts). A
//! two-variant enum keeps the transport monomorphic while preserving type
//! safety at the receive side.

/// A message body.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Tensor data.
    F32(Vec<f32>),
    /// Metadata: token ids, expert assignments, counts.
    U64(Vec<u64>),
}

impl Payload {
    /// Unwrap as `f32` data; panics if the message was metadata. Tag
    /// discipline in the collectives guarantees the variant statically.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            Payload::U64(_) => panic!("expected F32 payload, got U64"),
        }
    }

    /// Unwrap as `u64` metadata; panics if the message was tensor data.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            Payload::F32(_) => panic!("expected U64 payload, got F32"),
        }
    }

    /// Size in bytes of the payload body (what a wire would carry).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::F32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
        }
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Payload {
        Payload::F32(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Payload {
        Payload::U64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f32() {
        let p: Payload = vec![1.0f32, 2.0].into();
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.into_f32(), vec![1.0, 2.0]);
    }

    #[test]
    fn round_trip_u64() {
        let p: Payload = vec![7u64].into();
        assert_eq!(p.wire_bytes(), 8);
        assert_eq!(p.into_u64(), vec![7]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn wrong_variant_panics() {
        Payload::U64(vec![1]).into_f32();
    }
}
