//! Deterministic fault injection and the error-carrying comm surface.
//!
//! At 96,000 nodes component failure during a run is the expected case, so
//! the transport must be testable *under* faults, not only without them.
//! This module provides:
//!
//! * [`FaultPlan`] — a declarative, seeded schedule of faults (rank crash
//!   at a training step, nth-message drop/delay/corruption, probabilistic
//!   drops). Plans are pure data; [`FaultRuntime`] is the live state that
//!   a [`crate::shm::World`] consults on every send. Every decision is
//!   deterministic given the plan (per-rank message counters and per-rank
//!   seeded RNG streams), so a failing schedule replays exactly.
//! * [`CommError`] — what failure-aware operations return instead of
//!   hanging: a receive that exceeded its deadline, a peer known to be
//!   dead, or a malformed communicator split.
//! * [`FtCommunicator`] — the failure-aware extension of
//!   [`crate::shm::Communicator`]: `recv_timeout`, `try_send`, and dead-rank
//!   bookkeeping. `ShmComm` implements it natively; `TimedComm` forwards
//!   and keeps charging virtual time on the successful paths.
//!
//! Detection semantics: a *crashed* rank is marked dead (by the harness's
//! panic trap or by the rank itself before aborting), which wakes every
//! blocked receiver; `recv_timeout` then fails fast with
//! [`CommError::PeerDead`]. A *silent* fault (dropped message, stalled
//! sender) is detected only by the timeout. Payload corruption is silent at
//! the transport level by design — it is caught downstream by the
//! checkpoint CRC or by divergence checks, mirroring how real networks
//! deliver bit flips past the NIC.

use crate::payload::Payload;
use crate::shm::Communicator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One scheduled fault. `rank` is always a **world** rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The rank panics at the start of training step `at_step`. The
    /// trainer (or any step-structured driver) polls
    /// [`FaultRuntime::should_crash`]; the transport itself has no step
    /// notion. Fires once, even across checkpoint-restart replays.
    Crash {
        /// World rank that crashes.
        rank: usize,
        /// Training step at whose start the crash fires.
        at_step: usize,
    },
    /// Silently discard the `nth` message sent by `from` (0-based over the
    /// rank's lifetime sends, timing headers included).
    DropNth {
        /// Sending world rank.
        from: usize,
        /// 0-based index among `from`'s lifetime sends.
        nth: u64,
    },
    /// Hold the `nth` message sent by `from` for `millis` before delivery
    /// (the sender blocks, modeling a stalled link).
    DelayNth {
        /// Sending world rank.
        from: usize,
        /// 0-based index among `from`'s lifetime sends.
        nth: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Flip one bit in the `nth` message sent by `from`.
    CorruptNth {
        /// Sending world rank.
        from: usize,
        /// 0-based index among `from`'s lifetime sends.
        nth: u64,
    },
    /// Drop each message sent by `from` independently with probability
    /// `prob`, decided by a per-rank seeded RNG stream.
    DropProb {
        /// Sending world rank.
        from: usize,
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// **Sustained degradation**: while the armed training step is in
    /// `[from_step, to_step)`, every message sent by `rank` is held for
    /// `delay_us` microseconds before delivery. Unlike [`FaultSpec::DelayNth`]
    /// this is not one-shot — it models a sick-but-alive rank (thermal
    /// throttling, a noisy neighbor, a degraded NIC), the dominant failure
    /// mode MegaScale reports on production clusters. The trainer publishes
    /// the step via [`FaultRuntime::set_step`]; before the first call the
    /// armed step is 0.
    SlowRank {
        /// World rank whose sends are slowed.
        rank: usize,
        /// First training step (inclusive) of the degradation window.
        from_step: usize,
        /// First training step past the degradation window (exclusive).
        to_step: usize,
        /// Per-message stall in microseconds.
        delay_us: u64,
    },
    /// **Sustained flaky link**: while the armed training step is in
    /// `[from_step, to_step)`, each message sent by `from` is dropped
    /// independently with probability `drop_prob`, drawn from the same
    /// per-rank seeded stream as [`FaultSpec::DropProb`]. Step-ranged so a
    /// link can degrade and then recover deterministically.
    FlakyLink {
        /// Sending world rank.
        from: usize,
        /// First training step (inclusive) of the flaky window.
        from_step: usize,
        /// First training step past the flaky window (exclusive).
        to_step: usize,
        /// Per-message drop probability in `[0, 1]` inside the window.
        drop_prob: f64,
    },
}

/// A deterministic, seeded schedule of faults. Pure data — clone it freely,
/// hand it to [`FaultRuntime::new`] to arm it against a world.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the probabilistic events' per-rank RNG streams.
    pub seed: u64,
    events: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan: no faults, zero overhead beyond a null check.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with a seed for later probabilistic events.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled fault events, in insertion order.
    pub fn events(&self) -> &[FaultSpec] {
        &self.events
    }

    /// Crash `rank` at the start of step `at_step` (fires once).
    pub fn crash(mut self, rank: usize, at_step: usize) -> FaultPlan {
        self.events.push(FaultSpec::Crash { rank, at_step });
        self
    }

    /// Drop the `nth` message `from` sends.
    pub fn drop_nth(mut self, from: usize, nth: u64) -> FaultPlan {
        self.events.push(FaultSpec::DropNth { from, nth });
        self
    }

    /// Delay the `nth` message `from` sends by `millis`.
    pub fn delay_nth(mut self, from: usize, nth: u64, millis: u64) -> FaultPlan {
        self.events.push(FaultSpec::DelayNth { from, nth, millis });
        self
    }

    /// Flip one bit in the `nth` message `from` sends.
    pub fn corrupt_nth(mut self, from: usize, nth: u64) -> FaultPlan {
        self.events.push(FaultSpec::CorruptNth { from, nth });
        self
    }

    /// Drop each of `from`'s messages with probability `prob`.
    pub fn drop_prob(mut self, from: usize, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.events.push(FaultSpec::DropProb { from, prob });
        self
    }

    /// Slow every send of `rank` by `delay_us` microseconds while the armed
    /// step is in `[from_step, to_step)`.
    pub fn slow_rank(
        mut self,
        rank: usize,
        from_step: usize,
        to_step: usize,
        delay_us: u64,
    ) -> FaultPlan {
        assert!(from_step < to_step, "empty slow-rank step range");
        self.events.push(FaultSpec::SlowRank {
            rank,
            from_step,
            to_step,
            delay_us,
        });
        self
    }

    /// Drop each of `from`'s messages with probability `drop_prob` while the
    /// armed step is in `[from_step, to_step)`.
    pub fn flaky_link(
        mut self,
        from: usize,
        from_step: usize,
        to_step: usize,
        drop_prob: f64,
    ) -> FaultPlan {
        assert!(from_step < to_step, "empty flaky-link step range");
        assert!((0.0..=1.0).contains(&drop_prob), "probability out of range");
        self.events.push(FaultSpec::FlakyLink {
            from,
            from_step,
            to_step,
            drop_prob,
        });
        self
    }

    /// Steps at which any rank is scheduled to crash, ascending.
    pub fn crash_steps(&self) -> Vec<usize> {
        let mut steps: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultSpec::Crash { at_step, .. } => Some(*at_step),
                _ => None,
            })
            .collect();
        steps.sort_unstable();
        steps
    }
}

/// What the transport should do with a message about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendAction {
    Deliver,
    Drop,
    Delay(Duration),
    Corrupt,
}

/// Counters of faults actually injected, for reports and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently discarded in flight.
    pub dropped: u64,
    /// Messages held back by a one-shot [`FaultSpec::DelayNth`] delay.
    pub delayed: u64,
    /// Messages held back by a sustained [`FaultSpec::SlowRank`] window.
    /// Kept separate from `delayed` so tests can pin "the one-shot delay
    /// fired exactly once" independently of sustained degradation.
    pub slowed: u64,
    /// Messages that had a bit flipped.
    pub corrupted: u64,
    /// Crash events that actually fired (one-shot latches claimed).
    pub crashes_fired: u64,
}

/// Live state of an armed [`FaultPlan`]: per-rank send counters and RNG
/// streams, plus one-shot flags so an event fires exactly once even when a
/// checkpoint-restart loop replays the schedule across several worlds.
/// Share one runtime (via `Arc`) across all restart attempts of a run.
#[derive(Debug)]
pub struct FaultRuntime {
    plan: FaultPlan,
    /// One-shot latch per plan event, indexed like `plan.events`.
    fired: Vec<AtomicBool>,
    /// Lifetime messages sent, per world rank (headers included).
    send_seq: Vec<AtomicU64>,
    /// Per-rank xorshift state for probabilistic faults; seeded from
    /// `plan.seed` so decisions are independent of thread interleaving.
    rng: Vec<AtomicU64>,
    /// The training step the driver last armed via [`FaultRuntime::set_step`].
    /// Sustained (step-ranged) faults consult this; it only moves forward.
    step: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    slowed: AtomicU64,
    corrupted: AtomicU64,
    crashes: AtomicU64,
}

impl FaultRuntime {
    /// Arm `plan` against a world of `nranks` ranks.
    pub fn new(plan: FaultPlan, nranks: usize) -> FaultRuntime {
        let fired = (0..plan.events.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        let send_seq = (0..nranks).map(|_| AtomicU64::new(0)).collect();
        let rng = (0..nranks)
            .map(|r| {
                AtomicU64::new(splitmix(
                    plan.seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ))
            })
            .collect();
        FaultRuntime {
            plan,
            fired,
            send_seq,
            rng,
            step: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            slowed: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// Publish the current training step so sustained (step-ranged) faults
    /// know whether they are inside their window. Monotonic (`fetch_max`):
    /// ranks advance at slightly different times around a step boundary, so
    /// the armed value is advisory *at* the boundary and exact inside it —
    /// sustained windows should be read as "±1 step at the edges" unless the
    /// test steps the runtime explicitly. Cheap enough to call every step.
    pub fn set_step(&self, step: usize) {
        self.step.fetch_max(step as u64, Ordering::Relaxed);
    }

    /// The last step armed via [`FaultRuntime::set_step`] (0 before any call).
    pub fn current_step(&self) -> usize {
        self.step.load(Ordering::Relaxed) as usize
    }

    /// The plan this runtime was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            slowed: self.slowed.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            crashes_fired: self.crashes.load(Ordering::Relaxed),
        }
    }

    /// Should `rank` crash at the start of `step`? One-shot: the first call
    /// that matches a crash event claims it, so a restarted run replaying
    /// the same steps does not crash again on the same event.
    pub fn should_crash(&self, rank: usize, step: usize) -> bool {
        for (i, e) in self.plan.events.iter().enumerate() {
            if let FaultSpec::Crash { rank: r, at_step } = e {
                if *r == rank
                    && *at_step == step
                    && self.fired[i]
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    self.crashes.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Decide the fate of the next message sent by world rank `from`, and
    /// advance that rank's send counter. Called by the transport.
    pub(crate) fn on_send(&self, from: usize) -> SendAction {
        let nth = self.send_seq[from].fetch_add(1, Ordering::Relaxed);
        for (i, e) in self.plan.events.iter().enumerate() {
            let action = match *e {
                FaultSpec::DropNth { from: f, nth: n } if f == from && n == nth => {
                    Some(SendAction::Drop)
                }
                FaultSpec::DelayNth {
                    from: f,
                    nth: n,
                    millis,
                } if f == from && n == nth => {
                    Some(SendAction::Delay(Duration::from_millis(millis)))
                }
                FaultSpec::CorruptNth { from: f, nth: n } if f == from && n == nth => {
                    Some(SendAction::Corrupt)
                }
                _ => None,
            };
            if let Some(a) = action {
                if self.fired[i]
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.record(a);
                    return a;
                }
            }
        }
        // Probabilistic drops: not one-shot, drawn from the rank's stream.
        for e in &self.plan.events {
            if let FaultSpec::DropProb { from: f, prob } = *e {
                if f == from && self.next_unit(from) < prob {
                    self.record(SendAction::Drop);
                    return SendAction::Drop;
                }
            }
        }
        // Sustained (step-ranged) degradation: never one-shot. Checked last
        // so one-shot events keep their exact nth-message semantics even
        // inside a degradation window.
        let step = self.step.load(Ordering::Relaxed) as usize;
        for e in &self.plan.events {
            match *e {
                FaultSpec::FlakyLink {
                    from: f,
                    from_step,
                    to_step,
                    drop_prob,
                } if f == from
                    && (from_step..to_step).contains(&step)
                    && self.next_unit(from) < drop_prob =>
                {
                    self.record(SendAction::Drop);
                    return SendAction::Drop;
                }
                FaultSpec::SlowRank {
                    rank,
                    from_step,
                    to_step,
                    delay_us,
                } if rank == from && (from_step..to_step).contains(&step) => {
                    self.slowed.fetch_add(1, Ordering::Relaxed);
                    return SendAction::Delay(Duration::from_micros(delay_us));
                }
                _ => {}
            }
        }
        SendAction::Deliver
    }

    fn record(&self, a: SendAction) {
        match a {
            SendAction::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
            SendAction::Delay(_) => self.delayed.fetch_add(1, Ordering::Relaxed),
            SendAction::Corrupt => self.corrupted.fetch_add(1, Ordering::Relaxed),
            SendAction::Deliver => 0,
        };
    }

    /// Next uniform in [0, 1) from `rank`'s xorshift stream.
    fn next_unit(&self, rank: usize) -> f64 {
        let mut x = self.rng[rank].load(Ordering::Relaxed);
        loop {
            let mut y = x;
            y ^= y << 13;
            y ^= y >> 7;
            y ^= y << 17;
            match self.rng[rank].compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return (y >> 11) as f64 / (1u64 << 53) as f64,
                Err(cur) => x = cur,
            }
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1 // xorshift state must be nonzero
}

/// Flip one deterministic bit of a payload in place (the injected
/// "bit rot"). The bit index derives from the payload length so repeated
/// runs corrupt identically.
pub(crate) fn corrupt_payload(p: &mut Payload) {
    match p {
        Payload::F32(v) => {
            let bit = v.len() % 23;
            if let Some(x) = v.first_mut() {
                *x = f32::from_bits(x.to_bits() ^ (1 << bit));
            }
        }
        Payload::U64(v) => {
            let bit = v.len() % 63;
            if let Some(x) = v.first_mut() {
                *x ^= 1 << bit;
            }
        }
        Payload::Half(_, v) => {
            let bit = v.len() % 13;
            if let Some(x) = v.first_mut() {
                *x ^= 1 << bit;
            }
        }
        Payload::U32(v) => {
            let bit = v.len() % 31;
            if let Some(x) = v.first_mut() {
                *x ^= 1 << bit;
            }
        }
    }
}

/// Why a failure-aware communication operation gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline. The peer may be
    /// dead, stalled, or the message may have been dropped in flight.
    Timeout {
        /// Group rank the receive was posted against.
        src: usize,
        /// Tag the receive was posted under.
        tag: u64,
        /// How long the receive waited before giving up, milliseconds.
        waited_ms: u64,
    },
    /// The peer is known dead (its thread panicked or aborted); no message
    /// can ever arrive from it.
    PeerDead {
        /// Group rank of the dead peer.
        peer: usize,
    },
    /// A communicator split was malformed (inconsistent colors/ordering).
    InvalidSplit {
        /// Group rank that observed the malformed split.
        rank: usize,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                src,
                tag,
                waited_ms,
            } => write!(
                f,
                "receive from rank {src} (tag {tag}) timed out after {waited_ms} ms"
            ),
            CommError::PeerDead { peer } => write!(f, "peer rank {peer} is dead"),
            CommError::InvalidSplit { rank, detail } => {
                write!(f, "invalid communicator split at rank {rank}: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Failure-aware extension of [`Communicator`]: deadline receives, sends
/// that refuse dead destinations, and dead-rank bookkeeping. Collectives
/// built on this trait (e.g. [`crate::collectives::allreduce_ft`]) return
/// [`CommError`] instead of hanging on a lost peer.
pub trait FtCommunicator: Communicator {
    /// Like [`Communicator::recv`] but gives up after `timeout`, and fails
    /// fast with [`CommError::PeerDead`] when `src` is marked dead and no
    /// matching message is already queued.
    fn recv_timeout(&self, src: usize, tag: u64, timeout: Duration) -> Result<Payload, CommError>;

    /// Like [`Communicator::send`] but returns [`CommError::PeerDead`]
    /// instead of silently writing into a dead rank's mailbox.
    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError>;

    /// Mark this rank dead and wake every blocked receiver in the world.
    /// Called by the harness when a rank panics or aborts.
    fn mark_self_dead(&self);

    /// Is the given **group** rank marked dead?
    fn is_dead(&self, group_rank: usize) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates_events() {
        let p = FaultPlan::new(7)
            .crash(1, 10)
            .drop_nth(0, 3)
            .delay_nth(2, 5, 20)
            .corrupt_nth(1, 8)
            .drop_prob(0, 0.5);
        assert_eq!(p.events().len(), 5);
        assert_eq!(p.crash_steps(), vec![10]);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn crash_fires_exactly_once() {
        let rt = FaultRuntime::new(FaultPlan::new(1).crash(2, 5), 4);
        assert!(!rt.should_crash(2, 4));
        assert!(!rt.should_crash(1, 5));
        assert!(rt.should_crash(2, 5));
        // Replaying the same step after restart must not crash again.
        assert!(!rt.should_crash(2, 5));
        assert_eq!(rt.stats().crashes_fired, 1);
    }

    #[test]
    fn nth_message_faults_hit_the_right_message() {
        let rt = FaultRuntime::new(FaultPlan::new(1).drop_nth(0, 2).corrupt_nth(1, 0), 2);
        assert_eq!(rt.on_send(0), SendAction::Deliver); // msg 0
        assert_eq!(rt.on_send(0), SendAction::Deliver); // msg 1
        assert_eq!(rt.on_send(0), SendAction::Drop); // msg 2
        assert_eq!(rt.on_send(0), SendAction::Deliver); // msg 3
        assert_eq!(rt.on_send(1), SendAction::Corrupt); // rank 1 msg 0
        assert_eq!(rt.on_send(1), SendAction::Deliver);
        let s = rt.stats();
        assert_eq!((s.dropped, s.corrupted, s.delayed), (1, 1, 0));
    }

    #[test]
    fn probabilistic_drops_are_deterministic_given_seed() {
        let decide = |seed: u64| -> Vec<bool> {
            let rt = FaultRuntime::new(FaultPlan::new(seed).drop_prob(0, 0.3), 1);
            (0..64).map(|_| rt.on_send(0) == SendAction::Drop).collect()
        };
        assert_eq!(decide(42), decide(42));
        assert_ne!(decide(42), decide(43));
        let hits = decide(42).iter().filter(|&&b| b).count();
        assert!(hits > 5 && hits < 40, "p=0.3 over 64 draws gave {hits}");
    }

    #[test]
    fn corrupt_changes_exactly_one_bit() {
        let mut p: Payload = vec![1.0f32, 2.0].into();
        corrupt_payload(&mut p);
        let v = p.into_f32();
        assert_ne!(v[0], 1.0);
        assert_eq!(v[1], 2.0);

        let mut p: Payload = vec![8u64].into();
        corrupt_payload(&mut p);
        assert_ne!(p.into_u64()[0], 8);
    }

    #[test]
    fn slow_rank_fires_only_inside_its_step_window() {
        let rt = FaultRuntime::new(FaultPlan::new(1).slow_rank(0, 3, 5, 250), 2);
        // Step 0 (never armed): outside the window.
        assert_eq!(rt.on_send(0), SendAction::Deliver);
        rt.set_step(3);
        assert_eq!(rt.on_send(0), SendAction::Delay(Duration::from_micros(250)));
        assert_eq!(rt.on_send(0), SendAction::Delay(Duration::from_micros(250)));
        // The other rank is healthy.
        assert_eq!(rt.on_send(1), SendAction::Deliver);
        rt.set_step(5); // exclusive upper bound: recovered
        assert_eq!(rt.on_send(0), SendAction::Deliver);
        let s = rt.stats();
        assert_eq!((s.slowed, s.delayed), (2, 0));
    }

    #[test]
    fn set_step_is_monotonic() {
        let rt = FaultRuntime::new(FaultPlan::none(), 1);
        rt.set_step(7);
        rt.set_step(3); // a lagging rank cannot move the window backwards
        assert_eq!(rt.current_step(), 7);
    }

    #[test]
    fn flaky_link_drops_only_inside_its_window_and_is_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let rt = FaultRuntime::new(FaultPlan::new(seed).flaky_link(0, 2, 4, 0.5), 1);
            let mut out = Vec::new();
            for step in 0..6 {
                rt.set_step(step);
                for _ in 0..16 {
                    out.push(rt.on_send(0) == SendAction::Drop);
                }
            }
            out
        };
        let a = run(9);
        assert_eq!(a, run(9), "same seed must replay exactly");
        assert!(!a[..32].iter().any(|&b| b), "no drops before the window");
        assert!(!a[64..].iter().any(|&b| b), "no drops after the window");
        let inside = a[32..64].iter().filter(|&&b| b).count();
        assert!(
            inside > 4 && inside < 28,
            "p=0.5 over 32 draws gave {inside}"
        );
    }

    #[test]
    fn one_shot_delay_wins_over_sustained_slowdown_without_double_count() {
        // A DelayNth aimed at a message inside a SlowRank window fires as
        // the one-shot (counted in `delayed`), not as a slowdown.
        let rt = FaultRuntime::new(
            FaultPlan::new(1).delay_nth(0, 0, 7).slow_rank(0, 0, 10, 1),
            1,
        );
        rt.set_step(1);
        assert_eq!(rt.on_send(0), SendAction::Delay(Duration::from_millis(7)));
        assert_eq!(rt.on_send(0), SendAction::Delay(Duration::from_micros(1)));
        let s = rt.stats();
        assert_eq!((s.delayed, s.slowed), (1, 1));
    }

    #[test]
    fn errors_format_usefully() {
        let e = CommError::Timeout {
            src: 3,
            tag: 7,
            waited_ms: 250,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("250 ms"));
        assert!(CommError::PeerDead { peer: 1 }
            .to_string()
            .contains("rank 1"));
    }
}
