//! Collective algorithms over any [`Communicator`].
//!
//! Implemented exactly as they would be over MPI point-to-point:
//!
//! * binomial-tree broadcast,
//! * ring reduce-scatter and ring all-gather, composed into the bandwidth-
//!   optimal ring all-reduce used for data-parallel gradient averaging,
//! * pairwise-exchange all-to-all(v) — the naive baseline,
//! * **hierarchical all-to-all(v)** — the two-phase, supernode-aware
//!   algorithm: bundle by destination local index inside the supernode,
//!   then exchange aggregated bundles between supernodes. This turns
//!   `Θ(n)` small cross-supernode messages per rank into `Θ(n/s)` large
//!   ones, which is the communication contribution this reproduction
//!   studies (experiments E2/E3).

use crate::payload::{Payload, WireDType};
use crate::shm::Communicator;

/// Element-wise reduction applied by reduce collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise addition.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// `acc[i] = op(acc[i], other[i])`.
    pub fn apply(self, acc: &mut [f32], other: &[f32]) {
        assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

/// Reserved tags, one per collective family. The transport classifies
/// traffic by these for [`crate::shm::CommStats`].
pub(crate) mod tags {
    pub const TAG_BCAST: u64 = 101;
    pub const TAG_RING: u64 = 102;
    pub const TAG_AG: u64 = 103;
    pub const TAG_A2A: u64 = 104;
    pub const TAG_H1_HDR: u64 = 105;
    pub const TAG_H1_DAT: u64 = 106;
    pub const TAG_H2_HDR: u64 = 107;
    pub const TAG_H2_DAT: u64 = 108;
    pub const TAG_A2A_U64: u64 = 109;
    pub const TAG_RD: u64 = 110;
    pub const TAG_A2A_U32: u64 = 111;
    /// Tag range for concurrently in-flight bucketed all-reduces; bucket
    /// `i` uses `TAG_BUCKET_BASE + i % (TAG_BUCKET_END - TAG_BUCKET_BASE)`.
    pub const TAG_BUCKET_BASE: u64 = 0x1000;
    pub const TAG_BUCKET_END: u64 = 0x2000;
}

use tags::*;

/// Chunk boundary `i` of a buffer of `len` split across `n` ranks.
#[inline]
fn bound(len: usize, n: usize, i: usize) -> usize {
    len * i / n
}

// ------------------------------------------------------------------ broadcast

/// Binomial-tree broadcast. `msg` must be `Some` exactly at `root`; every
/// rank returns the broadcast buffer.
pub fn broadcast<C: Communicator>(c: &C, root: usize, msg: Option<Vec<f32>>) -> Vec<f32> {
    let n = c.size();
    let rank = c.rank();
    assert_eq!(
        rank == root,
        msg.is_some(),
        "msg must be Some exactly at root"
    );
    if n == 1 {
        return msg.unwrap();
    }
    let vrank = (rank + n - root) % n;
    let real = |v: usize| (v + root) % n;

    let mut buf = msg;
    let mut mask = 1usize;
    if vrank != 0 {
        // Receive at the lowest set bit of vrank.
        while mask < n {
            if vrank & mask != 0 {
                buf = Some(c.recv(real(vrank - mask), TAG_BCAST).into_f32());
                break;
            }
            mask <<= 1;
        }
    } else {
        mask = n.next_power_of_two();
    }
    let buf = buf.expect("broadcast: no data received");
    // Relay to lower-order children.
    mask >>= 1;
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < n && vrank & (mask - 1) == 0 {
            c.send(real(vrank + mask), TAG_BCAST, buf.clone().into());
        }
        mask >>= 1;
    }
    buf
}

// ------------------------------------------------------------------ allreduce

/// An incrementally drivable ring all-reduce: reduce-scatter then
/// all-gather, `2(n-1)` steps, each moving `len/n` elements.
///
/// The classic blocking loop is restructured as a stepper so callers can
/// interleave useful work between steps: [`RingAllreduce::start`] launches
/// step 0, [`RingAllreduce::poll`] advances through every step whose
/// message has already arrived (never blocking), and
/// [`RingAllreduce::finish`] blocks through the remaining steps. Several
/// steppers with distinct tags may be in flight on one communicator — the
/// basis of [`bucketed_allreduce`] and the trainer's overlapped gradient
/// sync.
pub struct RingAllreduce<C: Communicator> {
    data: Vec<f32>,
    op: ReduceOp,
    tag: u64,
    /// Element format on the wire. Each hop packs the outgoing chunk and
    /// expands the incoming one; the reduction itself accumulates in `f32`
    /// (`data` never stores 16-bit values), so compression costs exactly
    /// one rounding per hop — the same behavior a compressing switch or
    /// NIC would exhibit.
    wire: WireDType,
    /// Steps completed so far, in `0..=total`.
    step: usize,
    /// `2(n-1)` for `n > 1`, `0` for a single rank.
    total: usize,
    pending: Option<C::RecvReq>,
}

impl<C: Communicator> RingAllreduce<C> {
    /// Begin the all-reduce: sends this rank's first chunk and posts the
    /// receive for step 0. Single-rank groups complete immediately.
    /// Uncompressed (`f32`) wire; see [`RingAllreduce::start_wire`].
    pub fn start(c: &C, data: Vec<f32>, op: ReduceOp, tag: u64) -> RingAllreduce<C> {
        RingAllreduce::start_wire(c, data, op, tag, WireDType::F32)
    }

    /// [`RingAllreduce::start`] with an explicit wire format: chunks are
    /// packed to `wire` before every send and expanded back to `f32` on
    /// receipt, halving bytes in flight for the 16-bit formats.
    pub fn start_wire(
        c: &C,
        data: Vec<f32>,
        op: ReduceOp,
        tag: u64,
        wire: WireDType,
    ) -> RingAllreduce<C> {
        let n = c.size();
        let total = if n > 1 { 2 * (n - 1) } else { 0 };
        let mut ring = RingAllreduce {
            data,
            op,
            tag,
            wire,
            step: 0,
            total,
            pending: None,
        };
        if total > 0 {
            ring.launch(c);
        }
        ring
    }

    /// All steps completed; `into_data` may be called.
    pub fn is_done(&self) -> bool {
        self.step == self.total
    }

    /// Steps completed so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Total steps this all-reduce runs (`2(n-1)`; 0 when single-rank).
    pub fn steps_total(&self) -> usize {
        self.total
    }

    /// Send the chunk for the current step and post its receive.
    fn launch(&mut self, c: &C) {
        let n = c.size();
        let rank = c.rank();
        let len = self.data.len();
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        let s = self.step;
        // Steps 0..n-1 are the reduce-scatter, n-1..2(n-1) the all-gather;
        // both send one chunk rightward and receive one from the left.
        let cs = if s < n - 1 {
            (rank + 2 * n - 1 - s) % n
        } else {
            (rank + n - (s - (n - 1))) % n
        };
        let chunk = self.data[bound(len, n, cs)..bound(len, n, cs + 1)].to_vec();
        c.send(right, self.tag, Payload::pack(self.wire, chunk));
        self.pending = Some(c.irecv(left, self.tag));
    }

    /// Fold the received chunk into `data` and advance the step counter.
    fn complete(&mut self, c: &C, got: Vec<f32>) {
        let n = c.size();
        let rank = c.rank();
        let len = self.data.len();
        let s = self.step;
        let (reduce, cr) = if s < n - 1 {
            (true, (rank + 2 * n - 2 - s) % n)
        } else {
            (false, (rank + 2 * n - (s - (n - 1)) - 1) % n)
        };
        let dst = &mut self.data[bound(len, n, cr)..bound(len, n, cr + 1)];
        if reduce {
            self.op.apply(dst, &got);
        } else {
            dst.copy_from_slice(&got);
        }
        self.step += 1;
        if self.step < self.total {
            self.launch(c);
        }
    }

    /// Advance through every step whose message has already arrived.
    /// Returns `true` once the all-reduce is complete. Never blocks.
    pub fn poll(&mut self, c: &C) -> bool {
        while let Some(mut req) = self.pending.take() {
            if c.test(&mut req) {
                let got = c.wait(req).into_floats();
                self.complete(c, got);
            } else {
                self.pending = Some(req);
                break;
            }
        }
        self.is_done()
    }

    /// Block through the remaining steps and return the reduced buffer.
    pub fn finish(mut self, c: &C) -> Vec<f32> {
        while let Some(req) = self.pending.take() {
            let got = c.wait(req).into_floats();
            self.complete(c, got);
        }
        debug_assert!(self.is_done());
        self.data
    }

    /// Extract the result of a completed all-reduce.
    pub fn into_data(self) -> Vec<f32> {
        assert!(self.is_done(), "ring all-reduce still has steps pending");
        self.data
    }
}

/// Ring all-reduce, blocking. Thin wrapper over [`RingAllreduce`];
/// bandwidth-optimal, the data-parallel gradient path of the trainer.
pub fn allreduce<C: Communicator>(c: &C, data: Vec<f32>, op: ReduceOp) -> Vec<f32> {
    RingAllreduce::start(c, data, op, TAG_RING).finish(c)
}

/// [`allreduce`] with an explicit wire format — each of the `2(n-1)` hops
/// rounds its chunk to `wire` in flight while the reduction accumulates in
/// `f32`. `WireDType::F32` is bit-identical to [`allreduce`].
pub fn allreduce_wire<C: Communicator>(
    c: &C,
    data: Vec<f32>,
    op: ReduceOp,
    wire: WireDType,
) -> Vec<f32> {
    RingAllreduce::start_wire(c, data, op, TAG_RING, wire).finish(c)
}

/// Tag for bucket index `i` (wraps within the reserved bucket range; the
/// wrap is harmless because at most a handful of buckets are in flight and
/// completion order within a tag is FIFO per sender).
pub fn bucket_tag(i: usize) -> u64 {
    TAG_BUCKET_BASE + (i as u64) % (TAG_BUCKET_END - TAG_BUCKET_BASE)
}

/// Reduce several independent buffers ("buckets") with concurrently
/// in-flight ring all-reduces, each on its own tag. Equivalent to calling
/// [`allreduce`] per bucket, but the rings progress together so one slow
/// chunk does not serialize the rest. Returns reduced buckets in order.
pub fn bucketed_allreduce<C: Communicator>(
    c: &C,
    buckets: Vec<Vec<f32>>,
    op: ReduceOp,
) -> Vec<Vec<f32>> {
    bucketed_allreduce_wire(c, buckets, op, WireDType::F32)
}

/// [`bucketed_allreduce`] with an explicit wire format; every bucket's ring
/// packs each hop to `wire`. `WireDType::F32` is bit-identical to the
/// uncompressed path.
pub fn bucketed_allreduce_wire<C: Communicator>(
    c: &C,
    buckets: Vec<Vec<f32>>,
    op: ReduceOp,
    wire: WireDType,
) -> Vec<Vec<f32>> {
    let mut rings: Vec<RingAllreduce<C>> = buckets
        .into_iter()
        .enumerate()
        .map(|(i, b)| RingAllreduce::start_wire(c, b, op, bucket_tag(i), wire))
        .collect();
    // Round-robin until everything has drained; yield between sweeps so
    // peer rank threads get scheduled.
    loop {
        let mut all_done = true;
        for ring in rings.iter_mut() {
            if !ring.poll(c) {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        std::thread::yield_now();
    }
    rings.into_iter().map(|r| r.into_data()).collect()
}

/// Recursive-doubling all-reduce: `⌈log₂ n⌉` rounds in which partners
/// `vrank ⊕ 2^k` exchange *full* buffers and reduce. Latency-optimal
/// (`Θ(log n)·α` vs the ring's `Θ(n)·α`) at the price of `log n` full-buffer
/// transfers — the right algorithm for the small, frequent reductions
/// (loss scalars, overflow flags, metrics) that pepper a training step.
///
/// Non-power-of-two sizes use the standard fold: the first `2·rem` ranks
/// pair up so `r = 2^⌊log₂ n⌋` virtual ranks run the doubling, then results
/// are sent back to the folded ranks.
pub fn allreduce_recursive_doubling<C: Communicator>(
    c: &C,
    mut data: Vec<f32>,
    op: ReduceOp,
) -> Vec<f32> {
    let n = c.size();
    if n == 1 {
        return data;
    }
    let rank = c.rank();
    let r = n.next_power_of_two() >> if n.is_power_of_two() { 0 } else { 1 };
    let rem = n - r;

    // Fold phase: even ranks below 2·rem hand their contribution to the odd
    // neighbour and sit out.
    let vrank = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            c.send(rank + 1, TAG_RD, data.clone().into());
            None
        } else {
            let got = c.recv(rank - 1, TAG_RD).into_f32();
            op.apply(&mut data, &got);
            Some(rank / 2)
        }
    } else {
        Some(rank - rem)
    };

    if let Some(v) = vrank {
        let real = |v: usize| if v < rem { 2 * v + 1 } else { v + rem };
        let mut mask = 1usize;
        while mask < r {
            let partner = real(v ^ mask);
            c.send(partner, TAG_RD, data.clone().into());
            let got = c.recv(partner, TAG_RD).into_f32();
            op.apply(&mut data, &got);
            mask <<= 1;
        }
    }

    // Unfold: odd ranks send the final result back to their even partner.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            data = c.recv(rank + 1, TAG_RD).into_f32();
        } else {
            c.send(rank - 1, TAG_RD, data.clone().into());
        }
    }
    data
}

/// Ring reduce-scatter: every rank contributes `data` (same length on all
/// ranks); rank `r` returns the fully reduced chunk `r` (the `bound(len,n,r)`
/// to `bound(len,n,r+1)` range).
pub fn reduce_scatter<C: Communicator>(c: &C, mut data: Vec<f32>, op: ReduceOp) -> Vec<f32> {
    let n = c.size();
    let rank = c.rank();
    let len = data.len();
    if n == 1 {
        return data;
    }
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    for s in 0..n - 1 {
        let cs = (rank + 2 * n - 1 - s) % n;
        let cr = (rank + 2 * n - 2 - s) % n;
        let send_chunk = data[bound(len, n, cs)..bound(len, n, cs + 1)].to_vec();
        c.send(right, TAG_RING, send_chunk.into());
        let got = c.recv(left, TAG_RING).into_f32();
        op.apply(&mut data[bound(len, n, cr)..bound(len, n, cr + 1)], &got);
    }
    data[bound(len, n, rank)..bound(len, n, rank + 1)].to_vec()
}

// ------------------------------------------------------------------ allgather

/// Ring all-gather of variable-length per-rank buffers. Returns one buffer
/// per rank, indexed by rank.
pub fn allgather<C: Communicator>(c: &C, local: Vec<f32>) -> Vec<Vec<f32>> {
    let n = c.size();
    let rank = c.rank();
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); n];
    if n == 1 {
        out[0] = local;
        return out;
    }
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    out[rank] = local;
    for s in 0..n - 1 {
        let gs = (rank + n - s) % n;
        let gr = (rank + 2 * n - s - 1) % n;
        c.send(right, TAG_AG, out[gs].clone().into());
        out[gr] = c.recv(left, TAG_AG).into_f32();
    }
    out
}

// ------------------------------------------------------------------ all-to-all

/// Pairwise-exchange all-to-all(v). `parts[d]` is the buffer for rank `d`
/// (lengths may differ). Returns the received buffers indexed by source.
pub fn alltoallv<C: Communicator>(c: &C, parts: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    alltoallv_wire(c, parts, WireDType::F32)
}

/// [`alltoallv`] with an explicit wire format: every sent part is packed to
/// `wire` and expanded on receipt. The self-part never touches the wire and
/// is returned unrounded, as on a real machine where local traffic stays in
/// memory. `WireDType::F32` is bit-identical to [`alltoallv`].
pub fn alltoallv_wire<C: Communicator>(
    c: &C,
    mut parts: Vec<Vec<f32>>,
    wire: WireDType,
) -> Vec<Vec<f32>> {
    let n = c.size();
    assert_eq!(parts.len(), n, "alltoallv: need one part per rank");
    let rank = c.rank();
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); n];
    out[rank] = std::mem::take(&mut parts[rank]);
    for s in 1..n {
        let to = (rank + s) % n;
        let from = (rank + n - s) % n;
        c.send(
            to,
            TAG_A2A,
            Payload::pack(wire, std::mem::take(&mut parts[to])),
        );
        out[from] = c.recv(from, TAG_A2A).into_floats();
    }
    out
}

/// All-to-all with equal-sized parts (asserts the invariant, then delegates
/// to [`alltoallv`]).
pub fn alltoall<C: Communicator>(c: &C, parts: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let len0 = parts.first().map(|p| p.len()).unwrap_or(0);
    assert!(
        parts.iter().all(|p| p.len() == len0),
        "alltoall: unequal part sizes"
    );
    alltoallv(c, parts)
}

/// Hierarchical (two-phase, supernode-aware) all-to-all(v).
///
/// Ranks are grouped into supernodes of `supernode_size` consecutive ranks
/// (`n` must divide evenly). Phase 1 exchanges *bundles* inside the
/// supernode, aggregated by destination local index; phase 2 exchanges
/// aggregated bundles between supernodes among same-local-index ranks.
/// Every message reaches its destination in exactly two hops, and the
/// number of cross-supernode messages per rank drops from `n - s` to
/// `n/s - 1`.
///
/// Semantics are identical to [`alltoallv`]: returns received buffers
/// indexed by source rank.
pub fn alltoallv_hierarchical<C: Communicator>(
    c: &C,
    parts: Vec<Vec<f32>>,
    supernode_size: usize,
) -> Vec<Vec<f32>> {
    alltoallv_hierarchical_wire(c, parts, supernode_size, WireDType::F32)
}

/// [`alltoallv_hierarchical`] with an explicit wire format. Data bundles of
/// *both* phases are packed per message, so a value that crosses supernodes
/// is rounded twice (once per hop) — exactly what compressing each physical
/// transfer implies; headers stay `u64` (they are counts, not tensors).
/// `WireDType::F32` is bit-identical to [`alltoallv_hierarchical`].
pub fn alltoallv_hierarchical_wire<C: Communicator>(
    c: &C,
    parts: Vec<Vec<f32>>,
    supernode_size: usize,
    wire: WireDType,
) -> Vec<Vec<f32>> {
    let n = c.size();
    let s = supernode_size;
    assert!(
        s > 0 && n.is_multiple_of(s),
        "hierarchical a2a: {n} ranks must divide into supernodes of {s}"
    );
    let big_s = n / s; // number of supernodes
    if big_s == 1 {
        return alltoallv_wire(c, parts, wire);
    }
    assert_eq!(parts.len(), n);
    let rank = c.rank();
    let g = rank / s; // my supernode
    let l = rank % s; // my local index

    // ---- Phase 1: intra-supernode exchange, bundled by destination local
    // index. To local peer j send concat(parts[t*s + j] for t in 0..S),
    // with a u64 header of the S lengths.
    for j in 0..s {
        let peer = g * s + j;
        let mut header = Vec::with_capacity(big_s);
        let mut data = Vec::new();
        for t in 0..big_s {
            let p = &parts[t * s + j];
            header.push(p.len() as u64);
            data.extend_from_slice(p);
        }
        c.send(peer, TAG_H1_HDR, header.into());
        c.send(peer, TAG_H1_DAT, Payload::pack(wire, data));
    }
    // Receive the bundle from every local peer (including self).
    let mut h1: Vec<Vec<u64>> = Vec::with_capacity(s);
    let mut d1: Vec<Vec<f32>> = Vec::with_capacity(s);
    for jp in 0..s {
        let peer = g * s + jp;
        h1.push(c.recv(peer, TAG_H1_HDR).into_u64());
        d1.push(c.recv(peer, TAG_H1_DAT).into_floats());
    }

    // ---- Phase 2: inter-supernode exchange among same-local-index ranks.
    // To supernode t (rank t*s + l) send, for each local source jp, the
    // chunk of d1[jp] destined to supernode t.
    // Precompute chunk offsets in d1[jp].
    let offsets: Vec<Vec<usize>> = h1
        .iter()
        .map(|h| {
            let mut off = Vec::with_capacity(big_s + 1);
            let mut acc = 0usize;
            off.push(0);
            for &x in h {
                acc += x as usize;
                off.push(acc);
            }
            off
        })
        .collect();
    for t in 0..big_s {
        let peer = t * s + l;
        let mut header = Vec::with_capacity(s);
        let mut data = Vec::new();
        for jp in 0..s {
            let (lo, hi) = (offsets[jp][t], offsets[jp][t + 1]);
            header.push((hi - lo) as u64);
            data.extend_from_slice(&d1[jp][lo..hi]);
        }
        c.send(peer, TAG_H2_HDR, header.into());
        c.send(peer, TAG_H2_DAT, Payload::pack(wire, data));
    }
    // Receive one bundle per supernode; unpack by source local index.
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); n];
    for t in 0..big_s {
        let peer = t * s + l;
        let header = c.recv(peer, TAG_H2_HDR).into_u64();
        let data = c.recv(peer, TAG_H2_DAT).into_floats();
        let mut off = 0usize;
        for (jp, &len) in header.iter().enumerate() {
            let len = len as usize;
            out[t * s + jp] = data[off..off + len].to_vec();
            off += len;
        }
    }
    out
}

/// Pairwise-exchange all-to-all(v) of `u64` metadata (routing tables,
/// expert ids, counts). Same semantics as [`alltoallv`].
pub fn alltoallv_u64<C: Communicator>(c: &C, mut parts: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    let n = c.size();
    assert_eq!(parts.len(), n, "alltoallv_u64: need one part per rank");
    let rank = c.rank();
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); n];
    out[rank] = std::mem::take(&mut parts[rank]);
    for s in 1..n {
        let to = (rank + s) % n;
        let from = (rank + n - s) % n;
        c.send(to, TAG_A2A_U64, std::mem::take(&mut parts[to]).into());
        out[from] = c.recv(from, TAG_A2A_U64).into_u64();
    }
    out
}

/// Pairwise-exchange all-to-all(v) of `u32` metadata — the compact header
/// channel for expert assignments and other ids that fit 4 bytes, halving
/// header traffic vs [`alltoallv_u64`]. Same semantics as [`alltoallv`].
pub fn alltoallv_u32<C: Communicator>(c: &C, mut parts: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    let n = c.size();
    assert_eq!(parts.len(), n, "alltoallv_u32: need one part per rank");
    let rank = c.rank();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    out[rank] = std::mem::take(&mut parts[rank]);
    for s in 1..n {
        let to = (rank + s) % n;
        let from = (rank + n - s) % n;
        c.send(to, TAG_A2A_U32, std::mem::take(&mut parts[to]).into());
        out[from] = c.recv(from, TAG_A2A_U32).into_u32();
    }
    out
}

/// Sum-reduce a small `u64` vector across all ranks (every rank gets the
/// exact integer totals — no f32 rounding at any count). Each rank
/// broadcasts its vector to every peer and sums what it receives, which is
/// fine for the short control vectors this exists for: the serving
/// scheduler's per-step consensus on `[active, queued, stop]` counts.
/// Saturating adds keep a hostile count from wrapping.
pub fn allreduce_u64<C: Communicator>(c: &C, data: Vec<u64>) -> Vec<u64> {
    let n = c.size();
    let parts: Vec<Vec<u64>> = (0..n).map(|_| data.clone()).collect();
    let got = alltoallv_u64(c, parts);
    let mut out = vec![0u64; data.len()];
    for part in got {
        assert_eq!(
            part.len(),
            out.len(),
            "allreduce_u64: ranks disagree on vector length"
        );
        for (o, v) in out.iter_mut().zip(part) {
            *o = o.saturating_add(v);
        }
    }
    out
}

/// Send `data` from every rank to rank `root`; root returns all buffers in
/// rank order, others return an empty vec. (Linear gather — used for
/// metrics collection, not on the training critical path.)
pub fn gather<C: Communicator>(c: &C, root: usize, data: Vec<f32>) -> Vec<Vec<f32>> {
    let n = c.size();
    if c.rank() == root {
        let mut out = vec![Vec::new(); n];
        out[root] = data;
        for (r, slot) in out.iter_mut().enumerate().take(n) {
            if r != root {
                *slot = c.recv(r, TAG_AG).into_f32();
            }
        }
        out
    } else {
        c.send(root, TAG_AG, data.into());
        Vec::new()
    }
}

// ------------------------------------------------- failure-aware collectives

use crate::fault::{CommError, FtCommunicator};
use std::time::Duration;

/// Recursive-doubling all-reduce that **detects silent peers** instead of
/// hanging: every receive carries `timeout`, and a peer already known dead
/// fails fast with [`CommError::PeerDead`]. Latency-optimal, so it doubles
/// as the per-step heartbeat of the fault-tolerant trainer — a returned
/// error is the signal to abandon the step and recover from a checkpoint.
///
/// The failure mode is detection, not completion: once any receive errors
/// the collective gives up (other ranks either also error or already have
/// their result). Callers must treat an `Err` as "this communicator is
/// compromised" and tear the world down — exactly what the checkpoint
/// restart loop does.
pub fn allreduce_ft<C: FtCommunicator>(
    c: &C,
    mut data: Vec<f32>,
    op: ReduceOp,
    timeout: Duration,
) -> Result<Vec<f32>, CommError> {
    let n = c.size();
    if n == 1 {
        return Ok(data);
    }
    let rank = c.rank();
    let r = n.next_power_of_two() >> if n.is_power_of_two() { 0 } else { 1 };
    let rem = n - r;

    // Fold (non-power-of-two): evens below 2·rem hand off and sit out.
    let vrank = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            c.try_send(rank + 1, TAG_RD, data.clone().into())?;
            None
        } else {
            let got = c.recv_timeout(rank - 1, TAG_RD, timeout)?.into_f32();
            op.apply(&mut data, &got);
            Some(rank / 2)
        }
    } else {
        Some(rank - rem)
    };

    if let Some(v) = vrank {
        let real = |v: usize| if v < rem { 2 * v + 1 } else { v + rem };
        let mut mask = 1usize;
        while mask < r {
            let partner = real(v ^ mask);
            c.try_send(partner, TAG_RD, data.clone().into())?;
            let got = c.recv_timeout(partner, TAG_RD, timeout)?.into_f32();
            op.apply(&mut data, &got);
            mask <<= 1;
        }
    }

    // Unfold: odd ranks return the result to their even partner.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            data = c.recv_timeout(rank + 1, TAG_RD, timeout)?.into_f32();
        } else {
            c.try_send(rank - 1, TAG_RD, data.clone().into())?;
        }
    }
    Ok(data)
}

/// Binomial-tree broadcast with dead/silent-peer detection, the
/// failure-aware twin of [`broadcast`]. Same error contract as
/// [`allreduce_ft`].
pub fn broadcast_ft<C: FtCommunicator>(
    c: &C,
    root: usize,
    msg: Option<Vec<f32>>,
    timeout: Duration,
) -> Result<Vec<f32>, CommError> {
    let n = c.size();
    let rank = c.rank();
    assert_eq!(
        rank == root,
        msg.is_some(),
        "msg must be Some exactly at root"
    );
    if n == 1 {
        return Ok(msg.expect("single-rank broadcast has the message"));
    }
    let vrank = (rank + n - root) % n;
    let real = |v: usize| (v + root) % n;

    let mut buf = msg;
    let mut mask = 1usize;
    if vrank != 0 {
        while mask < n {
            if vrank & mask != 0 {
                buf = Some(
                    c.recv_timeout(real(vrank - mask), TAG_BCAST, timeout)?
                        .into_f32(),
                );
                break;
            }
            mask <<= 1;
        }
    } else {
        mask = n.next_power_of_two();
    }
    let buf = buf.expect("broadcast: no data received");
    mask >>= 1;
    while mask > 0 {
        if vrank & mask == 0 && vrank + mask < n && vrank & (mask - 1) == 0 {
            c.try_send(real(vrank + mask), TAG_BCAST, buf.clone().into())?;
        }
        mask >>= 1;
    }
    Ok(buf)
}

/// Failure-aware barrier: an [`allreduce_ft`] over one scalar. Unlike the
/// transport barrier this cannot hang on a dead rank — it errors.
pub fn barrier_ft<C: FtCommunicator>(c: &C, timeout: Duration) -> Result<(), CommError> {
    allreduce_ft(c, vec![1.0], ReduceOp::Sum, timeout).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_ranks, run_ranks_map};

    #[test]
    fn broadcast_from_every_root() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, n / 2, n - 1] {
                run_ranks(n, |c| {
                    let msg = (c.rank() == root).then(|| vec![3.5f32, -1.0, root as f32]);
                    let got = broadcast(&c, root, msg);
                    assert_eq!(got, vec![3.5, -1.0, root as f32], "n={n} root={root}");
                });
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_reference() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            let len = 23;
            run_ranks(n, |c| {
                let data: Vec<f32> = (0..len).map(|i| (c.rank() * len + i) as f32).collect();
                let out = allreduce(&c, data, ReduceOp::Sum);
                for (i, &v) in out.iter().enumerate() {
                    let expect: f32 = (0..n).map(|r| (r * len + i) as f32).sum();
                    assert_eq!(v, expect, "n={n} i={i}");
                }
            });
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        run_ranks(5, |c| {
            let data = vec![c.rank() as f32, -(c.rank() as f32)];
            let mx = allreduce(&c, data.clone(), ReduceOp::Max);
            assert_eq!(mx, vec![4.0, 0.0]);
            let mn = allreduce(&c, data, ReduceOp::Min);
            assert_eq!(mn, vec![0.0, -4.0]);
        });
    }

    #[test]
    fn recursive_doubling_matches_ring() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 11, 16] {
            let len = 17;
            run_ranks(n, |c| {
                let data: Vec<f32> = (0..len)
                    .map(|i| ((c.rank() * 13 + i * 3) % 7) as f32)
                    .collect();
                let ring = allreduce(&c, data.clone(), ReduceOp::Sum);
                let rd = allreduce_recursive_doubling(&c, data, ReduceOp::Sum);
                for (a, b) in ring.iter().zip(&rd) {
                    assert!((a - b).abs() < 1e-4, "n={n}: {a} vs {b}");
                }
            });
        }
    }

    #[test]
    fn recursive_doubling_max() {
        run_ranks(6, |c| {
            let out = allreduce_recursive_doubling(&c, vec![c.rank() as f32], ReduceOp::Max);
            assert_eq!(out, vec![5.0]);
        });
    }

    #[test]
    fn allreduce_short_buffer() {
        // len < n: some chunks are empty; the ring must still work.
        run_ranks(8, |c| {
            let out = allreduce(&c, vec![1.0f32, 2.0], ReduceOp::Sum);
            assert_eq!(out, vec![8.0, 16.0]);
        });
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_chunk() {
        let n = 4;
        let len = 8;
        let outs = run_ranks_map(n, |c| {
            let data: Vec<f32> = (0..len).map(|i| i as f32).collect();
            reduce_scatter(&c, data, ReduceOp::Sum)
        });
        for (r, out) in outs.iter().enumerate() {
            let lo = len * r / n;
            let hi = len * (r + 1) / n;
            let expect: Vec<f32> = (lo..hi).map(|i| (i * n) as f32).collect();
            assert_eq!(out, &expect, "rank {r}");
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        run_ranks(5, |c| {
            let local = vec![c.rank() as f32; c.rank() + 1];
            let all = allgather(&c, local);
            for (r, buf) in all.iter().enumerate() {
                assert_eq!(buf, &vec![r as f32; r + 1]);
            }
        });
    }

    #[test]
    fn alltoallv_routes_correctly() {
        for n in [1usize, 2, 4, 6] {
            run_ranks(n, |c| {
                // parts[d] = [rank, d] so the receiver can verify both ends.
                let parts: Vec<Vec<f32>> =
                    (0..n).map(|d| vec![c.rank() as f32, d as f32]).collect();
                let got = alltoallv(&c, parts);
                for (src, buf) in got.iter().enumerate() {
                    assert_eq!(buf, &vec![src as f32, c.rank() as f32]);
                }
            });
        }
    }

    #[test]
    fn alltoallv_with_empty_parts() {
        run_ranks(4, |c| {
            // Only send to rank 0.
            let parts: Vec<Vec<f32>> = (0..4)
                .map(|d| {
                    if d == 0 {
                        vec![c.rank() as f32]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let got = alltoallv(&c, parts);
            if c.rank() == 0 {
                for (src, buf) in got.iter().enumerate() {
                    assert_eq!(buf, &vec![src as f32]);
                }
            } else {
                assert!(got.iter().all(|b| b.is_empty()));
            }
        });
    }

    #[test]
    fn hierarchical_matches_flat_alltoallv() {
        // 8 ranks in supernodes of 4, variable message sizes.
        let n = 8;
        run_ranks(n, |c| {
            let parts: Vec<Vec<f32>> = (0..n)
                .map(|d| {
                    let len = (c.rank() + d) % 3; // sizes 0..=2
                    vec![(c.rank() * 100 + d) as f32; len]
                })
                .collect();
            let flat = alltoallv(&c, parts.clone());
            let hier = alltoallv_hierarchical(&c, parts, 4);
            assert_eq!(flat, hier, "rank {}", c.rank());
        });
    }

    #[test]
    fn hierarchical_single_supernode_degenerates() {
        run_ranks(4, |c| {
            let parts: Vec<Vec<f32>> = (0..4).map(|d| vec![d as f32]).collect();
            let got = alltoallv_hierarchical(&c, parts, 4);
            for buf in got.iter() {
                assert_eq!(buf, &vec![c.rank() as f32]);
            }
        });
    }

    #[test]
    fn hierarchical_many_supernodes() {
        // 12 ranks, supernodes of 2 — exercises S > s.
        let n = 12;
        run_ranks(n, |c| {
            let parts: Vec<Vec<f32>> = (0..n).map(|d| vec![(c.rank() * n + d) as f32]).collect();
            let got = alltoallv_hierarchical(&c, parts, 2);
            for (src, buf) in got.iter().enumerate() {
                assert_eq!(buf, &vec![(src * n + c.rank()) as f32]);
            }
        });
    }

    #[test]
    fn hierarchical_sends_fewer_cross_messages() {
        use crate::harness::run_ranks_counted;
        let n = 16;
        let mk_parts =
            |rank: usize| -> Vec<Vec<f32>> { (0..n).map(|_| vec![rank as f32; 4]).collect() };
        let (_, flat_msgs) = run_ranks_counted(n, |c| {
            alltoallv(&c, mk_parts(c.rank()));
        });
        let (_, hier_msgs) = run_ranks_counted(n, |c| {
            alltoallv_hierarchical(&c, mk_parts(c.rank()), 4);
        });
        // Flat: n*(n-1) = 240 payload messages. Hierarchical: n*(s + S) pairs
        // × 2 messages (header+data) = 16*8*2 = 256 — but only n*S = 64 of
        // those transfers cross supernodes vs n*(n-s) = 192 for flat.
        // The headline metric is cross-supernode *transfers*; message count
        // sanity-checks the implementation.
        assert_eq!(flat_msgs, (n * (n - 1)) as u64);
        assert_eq!(hier_msgs, (n * (4 + 4) * 2) as u64);
    }

    #[test]
    fn gather_collects_at_root() {
        run_ranks(6, |c| {
            let out = gather(&c, 2, vec![c.rank() as f32]);
            if c.rank() == 2 {
                for (r, buf) in out.iter().enumerate() {
                    assert_eq!(buf, &vec![r as f32]);
                }
            } else {
                assert!(out.is_empty());
            }
        });
    }

    #[test]
    fn stepper_matches_blocking_allreduce() {
        for n in [1usize, 2, 3, 5, 8] {
            let len = 29;
            run_ranks(n, |c| {
                let data: Vec<f32> = (0..len).map(|i| ((c.rank() * 7 + i) % 11) as f32).collect();
                let blocking = allreduce(&c, data.clone(), ReduceOp::Sum);
                // Drive the stepper purely through poll() to exercise the
                // incremental path end to end.
                let mut ring = RingAllreduce::start(&c, data, ReduceOp::Sum, bucket_tag(0));
                assert_eq!(ring.steps_total(), if n > 1 { 2 * (n - 1) } else { 0 });
                while !ring.poll(&c) {
                    std::thread::yield_now();
                }
                assert_eq!(ring.steps_done(), ring.steps_total());
                assert_eq!(ring.into_data(), blocking, "n={n}");
            });
        }
    }

    #[test]
    fn bucketed_matches_per_bucket_allreduce() {
        for n in [1usize, 2, 4] {
            run_ranks(n, |c| {
                // Buckets of different lengths, incl. an empty one.
                let buckets: Vec<Vec<f32>> = [13usize, 0, 7, 64]
                    .iter()
                    .enumerate()
                    .map(|(b, &len)| {
                        (0..len)
                            .map(|i| (c.rank() * 31 + b * 5 + i) as f32)
                            .collect()
                    })
                    .collect();
                let expect: Vec<Vec<f32>> = buckets
                    .iter()
                    .map(|b| allreduce(&c, b.clone(), ReduceOp::Sum))
                    .collect();
                let got = bucketed_allreduce(&c, buckets, ReduceOp::Sum);
                assert_eq!(got, expect, "n={n}");
            });
        }
    }

    #[test]
    fn concurrent_rings_on_distinct_tags_do_not_cross_talk() {
        run_ranks(4, |c| {
            let a: Vec<f32> = vec![c.rank() as f32; 16];
            let b: Vec<f32> = vec![(c.rank() * 10) as f32; 16];
            let mut ra = RingAllreduce::start(&c, a, ReduceOp::Sum, bucket_tag(0));
            let mut rb = RingAllreduce::start(&c, b, ReduceOp::Sum, bucket_tag(1));
            loop {
                let da = ra.poll(&c);
                let db = rb.poll(&c);
                if da && db {
                    break;
                }
                std::thread::yield_now();
            }
            assert_eq!(ra.into_data(), vec![6.0; 16]);
            assert_eq!(rb.into_data(), vec![60.0; 16]);
        });
    }

    #[test]
    fn allreduce_u64_sums_exactly() {
        for n in [1usize, 2, 3, 4, 7] {
            run_ranks(n, |c| {
                let r = c.rank() as u64;
                // Values above 2^24 would lose bits through an f32 path.
                let out = allreduce_u64(&c, vec![r + 1, 1 << 40, 0]);
                assert_eq!(out[0], (n * (n + 1) / 2) as u64, "n={n}");
                assert_eq!(out[1], (n as u64) << 40);
                assert_eq!(out[2], 0);
            });
        }
    }

    #[test]
    fn reduce_op_apply() {
        let mut a = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.apply(&mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![2.0, 6.0, -1.0]);
        ReduceOp::Max.apply(&mut a, &[0.0, 10.0, 0.0]);
        assert_eq!(a, vec![2.0, 10.0, 0.0]);
        ReduceOp::Min.apply(&mut a, &[3.0, 3.0, 3.0]);
        assert_eq!(a, vec![2.0, 3.0, 0.0]);
    }

    #[test]
    fn ft_collectives_match_plain_ones_without_faults() {
        let t = Duration::from_secs(10);
        for n in [1usize, 2, 3, 4, 7] {
            run_ranks(n, |c| {
                let got = allreduce_ft(&c, vec![c.rank() as f32 + 1.0; 8], ReduceOp::Sum, t)
                    .expect("no faults, must succeed");
                let want = (n * (n + 1) / 2) as f32;
                assert_eq!(got, vec![want; 8], "allreduce_ft n={n}");

                let msg = (c.rank() == 0).then(|| vec![2.5f32; 4]);
                let got = broadcast_ft(&c, 0, msg, t).expect("broadcast_ft");
                assert_eq!(got, vec![2.5; 4]);

                barrier_ft(&c, t).expect("barrier_ft");
            });
        }
    }

    #[test]
    fn ft_allreduce_detects_a_crashed_rank() {
        use crate::harness::{run_ranks_ft, RankOutcome};
        use crate::shm::World;
        let world = World::new(4);
        let outcomes = run_ranks_ft(&world, |c| {
            if c.rank() == 2 {
                panic!("injected crash before the collective");
            }
            allreduce_ft(&c, vec![1.0; 4], ReduceOp::Sum, Duration::from_secs(5))
        });
        assert!(matches!(outcomes[2], RankOutcome::Crashed(_)));
        // Every survivor detects the failure (PeerDead directly, or a
        // timeout if its partner aborted mid-collective) — nobody hangs.
        for (r, o) in outcomes.iter().enumerate() {
            if r != 2 {
                assert!(
                    matches!(o, RankOutcome::TimedOut(_)),
                    "rank {r} should have detected the crash: {o:?}"
                );
            }
        }
    }

    #[test]
    fn alltoallv_u32_routes_correctly() {
        for n in [1usize, 2, 5] {
            run_ranks(n, |c| {
                let parts: Vec<Vec<u32>> =
                    (0..n).map(|d| vec![c.rank() as u32, d as u32]).collect();
                let got = alltoallv_u32(&c, parts);
                for (src, buf) in got.iter().enumerate() {
                    assert_eq!(buf, &vec![src as u32, c.rank() as u32]);
                }
            });
        }
    }

    #[test]
    fn wire_f32_is_bit_identical_to_plain_paths() {
        run_ranks(4, |c| {
            let data: Vec<f32> = (0..33)
                .map(|i| (c.rank() * 33 + i) as f32 * 0.013)
                .collect();
            let plain = allreduce(&c, data.clone(), ReduceOp::Sum);
            let wired = allreduce_wire(&c, data, ReduceOp::Sum, WireDType::F32);
            assert_eq!(plain, wired);

            let parts: Vec<Vec<f32>> = (0..4).map(|d| vec![(c.rank() + d) as f32; d]).collect();
            let a = alltoallv(&c, parts.clone());
            let b = alltoallv_wire(&c, parts, WireDType::F32);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn compressed_allreduce_tracks_f32_within_rounding() {
        // Values in [-2, 2): bf16 carries an 8-bit significand, so each of
        // the ≤ 2(n-1)+1 roundings a summand can see contributes ≲ 2^-8
        // relative error.
        for n in [2usize, 3, 5, 8] {
            run_ranks(n, |c| {
                let data: Vec<f32> = (0..50)
                    .map(|i| ((c.rank() * 7 + i * 3) % 32) as f32 / 8.0 - 2.0)
                    .collect();
                let exact = allreduce(&c, data.clone(), ReduceOp::Sum);
                for wire in [WireDType::F16, WireDType::BF16] {
                    let approx = allreduce_wire(&c, data.clone(), ReduceOp::Sum, wire);
                    let eps = match wire {
                        WireDType::F16 => f32::exp2(-11.0),
                        _ => f32::exp2(-8.0),
                    };
                    let hops = (2 * (n - 1) + 1) as f32;
                    for (e, a) in exact.iter().zip(&approx) {
                        let tol = hops * eps * (2.0 * n as f32) + 1e-6;
                        assert!(
                            (e - a).abs() <= tol,
                            "n={n} wire={wire}: exact={e} approx={a} tol={tol}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn hierarchical_wire_matches_single_round_trip_per_value_or_two() {
        // Every element routed through the compressed hierarchical a2a is
        // the result of at most two wire round trips of its original value
        // (phase 1 and phase 2); values already representable in bf16 must
        // come back bit-exact.
        let n = 8;
        run_ranks(n, |c| {
            // Values < 128 fit bf16's 8-bit significand exactly, so even
            // two per-hop roundings must return them unchanged.
            let parts: Vec<Vec<f32>> = (0..n)
                .map(|d| vec![(c.rank() * 16 + d) as f32; (c.rank() + d) % 3])
                .collect();
            let exact = alltoallv(&c, parts.clone());
            let wired = alltoallv_hierarchical_wire(&c, parts, 4, WireDType::BF16);
            for (src, (e, w)) in exact.iter().zip(&wired).enumerate() {
                assert_eq!(e.len(), w.len(), "src {src}");
                for (x, y) in e.iter().zip(w) {
                    assert_eq!(x, y, "src {src}");
                }
            }
        });
    }

    #[test]
    fn compressed_ring_halves_payload_bytes() {
        use crate::shm::World;
        let n = 4;
        let len = 64; // divisible by n → equal 16-element chunks
        for (wire, per_elem) in [(WireDType::F32, 4u64), (WireDType::BF16, 2u64)] {
            let world = World::new(n);
            let comms = world.comms();
            std::thread::scope(|s| {
                for c in comms {
                    s.spawn(move || {
                        let data = vec![c.rank() as f32; len];
                        allreduce_wire(&c, data, ReduceOp::Sum, wire);
                    });
                }
            });
            // 2(n-1) hops per rank, len/n elements per hop.
            let expect = (n as u64) * 2 * (n as u64 - 1) * (len as u64 / n as u64) * per_elem;
            assert_eq!(world.bytes_sent(), expect, "wire={wire}");
        }
    }

    #[test]
    fn ft_allreduce_times_out_on_a_dropped_message() {
        use crate::fault::FaultPlan;
        use crate::harness::{run_ranks_ft, RankOutcome};
        use crate::shm::World;
        use std::sync::Arc;
        // Drop rank 1's first message: rank 0's receive must time out (or
        // see rank 1 abort), never hang.
        let rt = crate::fault::FaultRuntime::new(FaultPlan::new(3).drop_nth(1, 0), 2);
        let world = World::new_with_faults(2, Arc::new(rt));
        let outcomes = run_ranks_ft(&world, |c| {
            allreduce_ft(&c, vec![1.0], ReduceOp::Sum, Duration::from_millis(200))
        });
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, RankOutcome::TimedOut(_))),
            "a dropped message must surface as a timeout: {outcomes:?}"
        );
        assert_eq!(world.fault_stats().expect("plan armed").dropped, 1);
    }
}
