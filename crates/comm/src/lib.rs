//! Rank-to-rank communication substrate.
//!
//! The original system runs one MPI process per SW26010-Pro core group. We
//! substitute a **shared-memory communicator**: every rank is an OS thread,
//! point-to-point messages go through per-rank mailboxes (mutex + condvar,
//! per the project's atomics-and-locks guide), and the collective
//! *algorithms* — ring reduce-scatter/all-gather, binomial trees, pairwise
//! and hierarchical all-to-all — are implemented on top of plain
//! send/receive exactly as they would be over MPI point-to-point. The
//! algorithms are therefore the object of study; only the transport is
//! substituted.
//!
//! Layers:
//!
//! * [`payload`] — typed message payloads (`f32` tensors, integer
//!   metadata) plus the [`WireDType`] knob that compresses tensor traffic
//!   to 16-bit FP16/BF16 elements in flight,
//! * [`shm`] — the mailbox transport, [`ShmComm`], and communicator
//!   splitting into sub-groups,
//! * [`collectives`] — the collective algorithms, generic over any
//!   [`Communicator`],
//! * [`timed`] — [`TimedComm`], a wrapper that charges an analytical link
//!   cost ([`LinkCost`] / [`TwoLevelCost`]) to a virtual clock, for
//!   topology studies without real network hardware,
//! * [`harness`] — `run_ranks`, which spawns one thread per rank and joins
//!   them, propagating panics,
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the
//!   error-carrying surface ([`CommError`], [`FtCommunicator`]) that turns
//!   dead/silent peers into prompt errors instead of hangs; the harness's
//!   [`harness::run_ranks_ft`] collects per-rank [`harness::RankOutcome`]s.
//!
//! Observability: the transport reports per-family traffic through
//! [`CommStats`] and, when a `bagualu-trace` collector is installed on the
//! calling thread, mirrors every send/receive into per-family trace
//! counters (`comm.sent.<family>.*` / `comm.recv.<family>.*`) and counts
//! injected fault events. See `docs/OBSERVABILITY.md` at the repo root.

#![warn(missing_docs)]

pub mod collectives;
pub mod fault;
pub mod harness;
pub mod payload;
pub mod shm;
pub mod timed;

pub use collectives::{
    allgather, allreduce, allreduce_ft, allreduce_recursive_doubling, allreduce_wire, alltoall,
    alltoallv, alltoallv_hierarchical, alltoallv_hierarchical_wire, alltoallv_u32, alltoallv_u64,
    alltoallv_wire, barrier_ft, broadcast, broadcast_ft, bucket_tag, bucketed_allreduce,
    bucketed_allreduce_wire, gather, reduce_scatter, ReduceOp, RingAllreduce,
};
pub use fault::{CommError, FaultPlan, FaultRuntime, FaultSpec, FaultStats, FtCommunicator};
pub use harness::{run_ranks, run_ranks_deadline, run_ranks_ft, RankOutcome};
pub use payload::{Payload, WireDType};
pub use shm::{
    CommFamily, CommStats, Communicator, FamilyStats, SendRequest, ShmComm, ShmRecv, World,
};
pub use timed::{LinkCost, TimedComm, TimedRecv, TwoLevelCost};
