//! Rank-to-rank communication substrate.
//!
//! The original system runs one MPI process per SW26010-Pro core group. We
//! substitute a **shared-memory communicator**: every rank is an OS thread,
//! point-to-point messages go through per-rank mailboxes (mutex + condvar,
//! per the project's atomics-and-locks guide), and the collective
//! *algorithms* — ring reduce-scatter/all-gather, binomial trees, pairwise
//! and hierarchical all-to-all — are implemented on top of plain
//! send/receive exactly as they would be over MPI point-to-point. The
//! algorithms are therefore the object of study; only the transport is
//! substituted.
//!
//! Layers:
//!
//! * [`payload`] — typed message payloads (`f32` tensors, `u64` metadata),
//! * [`shm`] — the mailbox transport, [`ShmComm`], and communicator
//!   splitting into sub-groups,
//! * [`collectives`] — the collective algorithms, generic over any
//!   [`Communicator`],
//! * [`harness`] — `run_ranks`, which spawns one thread per rank and joins
//!   them, propagating panics.

pub mod collectives;
pub mod harness;
pub mod payload;
pub mod shm;
pub mod timed;

pub use collectives::{
    allgather, allreduce, allreduce_recursive_doubling, alltoall, alltoallv,
    alltoallv_hierarchical, alltoallv_u64, broadcast, bucket_tag, bucketed_allreduce, gather,
    reduce_scatter, ReduceOp, RingAllreduce,
};
pub use harness::run_ranks;
pub use payload::Payload;
pub use shm::{
    CommFamily, CommStats, Communicator, FamilyStats, SendRequest, ShmComm, ShmRecv, World,
};
pub use timed::{LinkCost, TimedComm, TimedRecv, TwoLevelCost};
