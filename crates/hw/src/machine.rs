//! Whole-machine configuration: nodes, supernodes, and network constants.

use crate::processor::{Precision, ProcessorSpec};

/// Link-level constants of the two-level Sunway interconnect.
///
/// Inside a *supernode* (256 nodes) the network provides full bisection;
/// between supernodes the fat tree is tapered, so the per-node share of
/// cross-supernode bandwidth is lower and the latency higher. These four
/// numbers drive every collective cost model in `bagualu-net`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Per-node injection bandwidth for intra-supernode traffic, bytes/s.
    pub intra_bw: f64,
    /// Per-node share of inter-supernode bandwidth, bytes/s (taper applied).
    pub inter_bw: f64,
    /// One-way latency between nodes in the same supernode, seconds.
    pub intra_lat: f64,
    /// One-way latency between nodes in different supernodes, seconds.
    pub inter_lat: f64,
    /// Fixed per-message software overhead (MPI stack), seconds.
    pub sw_overhead: f64,
}

impl NetworkParams {
    /// Documented-approximation defaults for the New Generation Sunway:
    /// 16 GB/s injection inside a supernode, 4:1 taper between supernodes,
    /// microsecond-scale latencies.
    pub fn sunway() -> NetworkParams {
        NetworkParams {
            intra_bw: 16.0e9,
            inter_bw: 4.0e9,
            intra_lat: 1.5e-6,
            inter_lat: 3.5e-6,
            sw_overhead: 1.0e-6,
        }
    }

    /// Latency between two nodes given whether they share a supernode.
    pub fn latency(&self, same_supernode: bool) -> f64 {
        self.sw_overhead
            + if same_supernode {
                self.intra_lat
            } else {
                self.inter_lat
            }
    }

    /// Point-to-point time for `bytes` between two nodes (α–β model).
    pub fn p2p_time(&self, bytes: usize, same_supernode: bool) -> f64 {
        let bw = if same_supernode {
            self.intra_bw
        } else {
            self.inter_bw
        };
        self.latency(same_supernode) + bytes as f64 / bw
    }
}

/// A full machine: `nodes` × [`ProcessorSpec`], grouped into supernodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    pub nodes: usize,
    /// Nodes per supernode (256 on the New Generation Sunway).
    pub supernode_size: usize,
    pub processor: ProcessorSpec,
    pub network: NetworkParams,
    /// Sustained fraction of peak a tuned GEMM achieves (kernel efficiency).
    pub gemm_efficiency: f64,
}

impl MachineConfig {
    /// The full New Generation Sunway: 96,000 nodes in supernodes of 256.
    pub fn new_generation_sunway() -> MachineConfig {
        MachineConfig {
            nodes: 96_000,
            supernode_size: 256,
            processor: ProcessorSpec::sw26010_pro(),
            network: NetworkParams::sunway(),
            gemm_efficiency: 0.60,
        }
    }

    /// A scaled-down machine with the same per-node specs and topology rules.
    pub fn sunway_subset(nodes: usize) -> MachineConfig {
        MachineConfig {
            nodes,
            ..MachineConfig::new_generation_sunway()
        }
    }

    /// Total hardware cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.processor.cores()
    }

    /// Number of supernodes (last one may be partial).
    pub fn supernodes(&self) -> usize {
        self.nodes.div_ceil(self.supernode_size)
    }

    /// Supernode index of a node.
    pub fn supernode_of(&self, node: usize) -> usize {
        node / self.supernode_size
    }

    /// Whether two nodes share a supernode.
    pub fn same_supernode(&self, a: usize, b: usize) -> bool {
        self.supernode_of(a) == self.supernode_of(b)
    }

    /// Machine-wide peak rate at a precision, FLOP/s.
    pub fn peak(&self, p: Precision) -> f64 {
        self.processor.peak(p) * self.nodes as f64
    }

    /// Machine-wide sustained GEMM rate at a precision, FLOP/s.
    pub fn sustained(&self, p: Precision) -> f64 {
        self.peak(p) * self.gemm_efficiency
    }

    /// Total DRAM capacity, bytes.
    pub fn total_memory(&self) -> usize {
        self.nodes * self.processor.mem_capacity
    }

    /// Ranks when running one process per core group (BaGuaLu's layout).
    pub fn ranks(&self) -> usize {
        self.nodes * self.processor.core_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_has_over_37m_cores() {
        let m = MachineConfig::new_generation_sunway();
        assert_eq!(m.total_cores(), 37_440_000);
        assert!(m.total_cores() > 37_000_000);
    }

    #[test]
    fn supernode_mapping() {
        let m = MachineConfig::new_generation_sunway();
        assert_eq!(m.supernodes(), 375);
        assert_eq!(m.supernode_of(0), 0);
        assert_eq!(m.supernode_of(255), 0);
        assert_eq!(m.supernode_of(256), 1);
        assert!(m.same_supernode(0, 255));
        assert!(!m.same_supernode(255, 256));
    }

    #[test]
    fn half_precision_peak_near_exaflops() {
        let m = MachineConfig::new_generation_sunway();
        // 9.2 TF/CG × 6 × 96k = 5.3 EF peak; sustained headline ~1 EF is a
        // fraction of that once communication is charged (see perf model).
        assert!(m.peak(Precision::Half) > 1.0e18);
    }

    #[test]
    fn p2p_time_respects_taper() {
        let n = NetworkParams::sunway();
        let near = n.p2p_time(1 << 20, true);
        let far = n.p2p_time(1 << 20, false);
        assert!(
            far > near * 2.0,
            "inter-supernode must be slower: {near} vs {far}"
        );
        // Latency dominates tiny messages.
        assert!(n.p2p_time(8, true) < 4.0e-6);
    }

    #[test]
    fn subset_machines_scale_linearly() {
        let a = MachineConfig::sunway_subset(1000);
        let b = MachineConfig::sunway_subset(2000);
        assert!((b.peak(Precision::FP32) / a.peak(Precision::FP32) - 2.0).abs() < 1e-9);
        assert_eq!(a.ranks(), 6000);
    }
}
