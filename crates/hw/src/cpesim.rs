//! Kernel-level simulation of a core group executing a tiled GEMM.
//!
//! The roofline model in [`crate::roofline`] assumes a sustained fraction
//! of peak (`gemm_efficiency ≈ 0.6`). This module *derives* that number
//! instead of asserting it, by simulating how an SW26010-Pro core group
//! actually runs a GEMM — the way the hand-written SWDNN kernels do:
//!
//! * the 64 CPEs tile the output; each CPE's working set must fit its
//!   256 KiB LDM (an A-panel, a B-panel, and a C-tile, double-buffered),
//! * panels stream from DRAM by DMA at the core group's share of memory
//!   bandwidth, overlapped with compute (double buffering hides the
//!   shorter of the two phases),
//! * each fused-multiply-add pipeline issues `vector_width` lanes per
//!   cycle, and a tile pays a fixed startup (pipeline fill + DMA descriptor
//!   setup) per panel iteration.
//!
//! The simulated efficiency across tile shapes peaks near the configured
//! roofline constant — experiment E19 prints the sweep.

use crate::processor::CoreGroup;

/// A GEMM tiling: each CPE computes an `mc × nc` C-tile, streaming
/// `kc`-deep panels of A and B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    pub mc: usize,
    pub nc: usize,
    pub kc: usize,
}

/// Result of simulating one GEMM on one core group.
#[derive(Debug, Clone, Copy)]
pub struct GemmSim {
    /// Wall time, seconds.
    pub time: f64,
    /// Fraction of the core group's peak achieved.
    pub efficiency: f64,
    /// Whether DMA (true) or compute (false) dominated the steady state.
    pub dma_bound: bool,
    /// Bytes of LDM used per CPE (double-buffered panels + C-tile).
    pub ldm_bytes: usize,
}

/// Fixed per-panel-iteration overhead: DMA descriptor setup + pipeline
/// fill, in seconds (≈ a few hundred cycles at ~2 GHz).
const PANEL_OVERHEAD: f64 = 0.2e-6;

/// Fraction of FMA issue slots the inner loop actually fills (the rest go
/// to LDM loads/stores, address arithmetic, and loop control) — the
/// irreducible inner-loop tax even hand-written kernels pay.
const ISSUE_EFFICIENCY: f64 = 0.8;

/// Bytes per element (FP32 lanes; half precision packs two per lane slot).
fn elem_bytes(half: bool) -> usize {
    if half {
        2
    } else {
        4
    }
}

/// LDM footprint of a tiling (A-panel + B-panel double-buffered, C-tile
/// resident once).
pub fn ldm_footprint(t: Tiling, half: bool) -> usize {
    let e = elem_bytes(half);
    2 * (t.mc * t.kc + t.kc * t.nc) * e + t.mc * t.nc * 4 // C accumulates in FP32
}

/// Simulate `m×k×n` on one core group with tiling `t`.
///
/// `mesh_sharing` models the SW26010's **register communication**: the 8×8
/// CPE mesh broadcasts each A-panel along its row and each B-panel along
/// its column, so every panel is DMA'd from DRAM once per row/column
/// instead of once per CPE — an 8× cut in memory traffic that is the
/// difference between DMA-bound and compute-bound kernels (see E19).
///
/// Returns `None` when the tiling does not fit the LDM.
pub fn simulate_gemm(
    cg: &CoreGroup,
    m: usize,
    k: usize,
    n: usize,
    t: Tiling,
    half: bool,
    mesh_sharing: bool,
) -> Option<GemmSim> {
    let ldm = ldm_footprint(t, half);
    if ldm > cg.ldm_bytes || t.mc == 0 || t.nc == 0 || t.kc == 0 {
        return None;
    }
    let peak = if half { cg.peak_half } else { cg.peak_fp32 };
    let per_cpe_peak = peak / cg.cpes as f64 * ISSUE_EFFICIENCY;

    // Tile grid across the CPE mesh: tiles of C, distributed round-robin.
    let tiles_m = m.div_ceil(t.mc);
    let tiles_n = n.div_ceil(t.nc);
    let total_tiles = tiles_m * tiles_n;
    let tiles_per_cpe = total_tiles.div_ceil(cg.cpes);
    let k_panels = k.div_ceil(t.kc);

    // Per panel iteration on one CPE:
    let flops = 2.0 * t.mc as f64 * t.nc as f64 * t.kc as f64;
    let t_compute = flops / per_cpe_peak;
    // DMA: each CPE pulls its A and B panels; bandwidth is shared across
    // the 64 CPEs. With register communication each panel is fetched once
    // per mesh row/column and broadcast, cutting DRAM traffic 8×.
    let mesh_dim = (cg.cpes as f64).sqrt();
    let share = if mesh_sharing { mesh_dim } else { 1.0 };
    let bytes = ((t.mc * t.kc + t.kc * t.nc) * elem_bytes(half)) as f64 / share;
    let per_cpe_bw = cg.mem_bw / cg.cpes as f64;
    let t_dma = bytes / per_cpe_bw;

    // Double buffering overlaps compute with the *next* panel's DMA: the
    // steady-state iteration costs max(compute, dma) + fixed overhead.
    let t_iter = t_compute.max(t_dma) + PANEL_OVERHEAD;
    let time = tiles_per_cpe as f64
        * (k_panels as f64 * t_iter
        // C-tile writeback per tile.
        + (t.mc * t.nc * 4) as f64 / per_cpe_bw);

    let useful = 2.0 * m as f64 * k as f64 * n as f64;
    Some(GemmSim {
        time,
        efficiency: useful / peak / time,
        dma_bound: t_dma > t_compute,
        ldm_bytes: ldm,
    })
}

/// Search square-ish tilings and return the best simulation for this GEMM.
pub fn best_tiling(
    cg: &CoreGroup,
    m: usize,
    k: usize,
    n: usize,
    half: bool,
    mesh_sharing: bool,
) -> (Tiling, GemmSim) {
    let mut best: Option<(Tiling, GemmSim)> = None;
    for &mc in &[16usize, 32, 48, 64, 96, 128] {
        for &nc in &[16usize, 32, 48, 64, 96, 128] {
            for &kc in &[32usize, 64, 128, 256] {
                let t = Tiling { mc, nc, kc };
                if let Some(sim) = simulate_gemm(cg, m, k, n, t, half, mesh_sharing) {
                    if best
                        .as_ref()
                        .map(|(_, b)| sim.efficiency > b.efficiency)
                        .unwrap_or(true)
                    {
                        best = Some((t, sim));
                    }
                }
            }
        }
    }
    best.expect("at least one tiling fits the LDM")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ProcessorSpec;

    fn cg() -> CoreGroup {
        ProcessorSpec::sw26010_pro().cg
    }

    #[test]
    fn oversized_tilings_are_rejected() {
        let t = Tiling {
            mc: 512,
            nc: 512,
            kc: 512,
        };
        assert!(simulate_gemm(&cg(), 4096, 4096, 4096, t, false, true).is_none());
        assert!(ldm_footprint(t, false) > cg().ldm_bytes);
    }

    #[test]
    fn best_tiling_reaches_roofline_ballpark() {
        // A big square GEMM with a tuned tiling should land in the 50–85%
        // band — consistent with (and justifying) gemm_efficiency = 0.6.
        let (t, sim) = best_tiling(&cg(), 4096, 4096, 4096, false, true);
        assert!(
            sim.efficiency > 0.5 && sim.efficiency < 0.9,
            "eff {} with {t:?}",
            sim.efficiency
        );
        assert!(sim.ldm_bytes <= cg().ldm_bytes);
    }

    #[test]
    fn tiny_tiles_are_overhead_bound() {
        let small = simulate_gemm(
            &cg(),
            4096,
            4096,
            4096,
            Tiling {
                mc: 16,
                nc: 16,
                kc: 32,
            },
            false,
            true,
        )
        .unwrap();
        let (_, tuned) = best_tiling(&cg(), 4096, 4096, 4096, false, true);
        assert!(
            small.efficiency < tuned.efficiency * 0.75,
            "{} vs {}",
            small.efficiency,
            tuned.efficiency
        );
    }

    #[test]
    fn half_precision_is_dma_bound_sooner() {
        // 4× the arithmetic rate with the same bandwidth pushes the balance
        // point toward DMA.
        let t = Tiling {
            mc: 64,
            nc: 64,
            kc: 128,
        };
        let f32_sim = simulate_gemm(&cg(), 2048, 2048, 2048, t, false, true).unwrap();
        let half_sim = simulate_gemm(&cg(), 2048, 2048, 2048, t, true, true).unwrap();
        assert!(half_sim.time <= f32_sim.time);
        if !f32_sim.dma_bound {
            // Whenever fp32 was compute-bound, half either stays faster or
            // flips to DMA-bound.
            assert!(half_sim.dma_bound || half_sim.time < f32_sim.time);
        }
    }

    #[test]
    fn register_communication_rescues_half_precision() {
        // Without mesh sharing, half-precision GEMMs starve on DMA; with
        // the 8× row/column broadcast they approach compute bound.
        let (_, private) = best_tiling(&cg(), 4096, 4096, 4096, true, false);
        let (_, shared) = best_tiling(&cg(), 4096, 4096, 4096, true, true);
        assert!(
            shared.efficiency > private.efficiency * 1.5,
            "sharing must pay: {} vs {}",
            shared.efficiency,
            private.efficiency
        );
        assert!(shared.efficiency > 0.5, "eff {}", shared.efficiency);
    }

    #[test]
    fn small_gemms_lose_efficiency() {
        let (_, big) = best_tiling(&cg(), 4096, 4096, 4096, false, true);
        let (_, small) = best_tiling(&cg(), 128, 128, 128, false, true);
        assert!(
            small.efficiency < big.efficiency,
            "{} vs {}",
            small.efficiency,
            big.efficiency
        );
    }
}
