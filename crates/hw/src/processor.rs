//! SW26010-Pro processor model.
//!
//! One SW26010-Pro has six *core groups* (CGs). Each CG couples one
//! management processing element (MPE) with an 8×8 mesh of 64 compute
//! processing elements (CPEs), each CPE owning a 256 KiB software-managed
//! local data memory (LDM). BaGuaLu-style training runs one MPI process per
//! core group; the CPEs execute the dense kernels.

/// Arithmetic precision a kernel executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    FP64,
    FP32,
    /// FP16 or BF16 — the SW26010-Pro vector unit runs both at the same rate.
    Half,
}

/// Static description of one core group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreGroup {
    /// Compute processing elements per core group (8×8 mesh).
    pub cpes: usize,
    /// Software-managed local data memory per CPE, in bytes.
    pub ldm_bytes: usize,
    /// Peak FP64 rate of the whole core group, in FLOP/s.
    pub peak_fp64: f64,
    /// Peak FP32 rate, FLOP/s.
    pub peak_fp32: f64,
    /// Peak FP16/BF16 rate, FLOP/s.
    pub peak_half: f64,
    /// Main-memory bandwidth available to this core group, bytes/s.
    pub mem_bw: f64,
}

impl CoreGroup {
    /// Peak rate for a given precision.
    pub fn peak(&self, p: Precision) -> f64 {
        match p {
            Precision::FP64 => self.peak_fp64,
            Precision::FP32 => self.peak_fp32,
            Precision::Half => self.peak_half,
        }
    }
}

/// Static description of one processor/node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorSpec {
    /// Core groups per processor (one processor per node).
    pub core_groups: usize,
    /// MPEs per core group (always 1 on SW26010-Pro).
    pub mpes_per_cg: usize,
    pub cg: CoreGroup,
    /// DRAM capacity per node, bytes.
    pub mem_capacity: usize,
}

impl ProcessorSpec {
    /// The SW26010-Pro, with documented-approximation constants:
    /// 6 CGs × (1 MPE + 64 CPEs) = 390 cores; ~14 TFLOPS FP64/FP32 per node
    /// (≈2.3 TFLOPS per CG), 4× that in half precision; ~51 GB/s of DRAM
    /// bandwidth per CG; 96 GiB DRAM per node.
    pub fn sw26010_pro() -> ProcessorSpec {
        ProcessorSpec {
            core_groups: 6,
            mpes_per_cg: 1,
            cg: CoreGroup {
                cpes: 64,
                ldm_bytes: 256 * 1024,
                peak_fp64: 2.3e12,
                peak_fp32: 2.3e12,
                peak_half: 9.2e12,
                mem_bw: 51.2e9,
            },
            mem_capacity: 96 * (1usize << 30),
        }
    }

    /// Total hardware cores (MPEs + CPEs) on the processor.
    pub fn cores(&self) -> usize {
        self.core_groups * (self.mpes_per_cg + self.cg.cpes)
    }

    /// Peak rate of the whole processor for a precision, FLOP/s.
    pub fn peak(&self, p: Precision) -> f64 {
        self.cg.peak(p) * self.core_groups as f64
    }

    /// Aggregate DRAM bandwidth of the node, bytes/s.
    pub fn mem_bw(&self) -> f64 {
        self.cg.mem_bw * self.core_groups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw26010_pro_has_390_cores() {
        let p = ProcessorSpec::sw26010_pro();
        assert_eq!(p.cores(), 390);
    }

    #[test]
    fn node_peaks_scale_with_core_groups() {
        let p = ProcessorSpec::sw26010_pro();
        assert!((p.peak(Precision::FP32) - 6.0 * 2.3e12).abs() < 1.0);
        assert!(p.peak(Precision::Half) > p.peak(Precision::FP32) * 3.9);
        assert!((p.mem_bw() - 6.0 * 51.2e9).abs() < 1.0);
    }

    #[test]
    fn ldm_is_256k() {
        let p = ProcessorSpec::sw26010_pro();
        assert_eq!(p.cg.ldm_bytes, 262_144);
    }
}
