//! Machine power model and training-energy accounting.
//!
//! The New Generation Sunway draws tens of megawatts; at that scale
//! *energy per token* is as real a metric as tokens per second, and
//! communication-bound steps burn power while the vector units idle. The
//! model is deliberately simple: per-node power interpolates between an
//! idle floor and a full-compute ceiling with compute utilization, plus a
//! constant network/infrastructure share.

/// Per-node power parameters, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static node power (DRAM refresh, MPEs, leakage).
    pub node_idle_w: f64,
    /// Additional dynamic power at 100% CPE compute utilization.
    pub node_compute_w: f64,
    /// Per-node share of the interconnect + cooling overhead.
    pub infra_w: f64,
}

impl PowerModel {
    /// Documented-approximation Sunway constants: ~35 MW machine power at
    /// full load over 96,000 nodes ⇒ ≈365 W/node, split as 140 W idle +
    /// 170 W dynamic compute + 55 W interconnect/cooling share.
    pub fn sunway() -> PowerModel {
        PowerModel {
            node_idle_w: 140.0,
            node_compute_w: 170.0,
            infra_w: 55.0,
        }
    }

    /// Node power at a given compute utilization ∈ [0, 1].
    pub fn node_power(&self, compute_util: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&compute_util),
            "utilization out of range"
        );
        self.node_idle_w + self.node_compute_w * compute_util + self.infra_w
    }

    /// Whole-machine power at a given utilization, watts.
    pub fn machine_power(&self, nodes: usize, compute_util: f64) -> f64 {
        self.node_power(compute_util) * nodes as f64
    }

    /// Energy for one training step, joules.
    pub fn step_energy(&self, nodes: usize, step_time: f64, compute_util: f64) -> f64 {
        self.machine_power(nodes, compute_util) * step_time
    }

    /// Energy per token, joules, for a step processing `tokens`.
    pub fn energy_per_token(
        &self,
        nodes: usize,
        step_time: f64,
        compute_util: f64,
        tokens: f64,
    ) -> f64 {
        assert!(tokens > 0.0);
        self.step_energy(nodes, step_time, compute_util) / tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_machine_is_tens_of_megawatts() {
        let p = PowerModel::sunway();
        let mw = p.machine_power(96_000, 1.0) / 1e6;
        assert!((30.0..40.0).contains(&mw), "machine power {mw} MW");
    }

    #[test]
    fn idle_power_is_substantial() {
        // Communication-bound steps still burn most of the power budget —
        // the economic argument for fixing the collectives.
        let p = PowerModel::sunway();
        let idle = p.machine_power(96_000, 0.0);
        let busy = p.machine_power(96_000, 1.0);
        assert!(idle / busy > 0.5, "idle share {}", idle / busy);
    }

    #[test]
    fn energy_scales_with_time_and_nodes() {
        let p = PowerModel::sunway();
        assert!(p.step_energy(2000, 1.0, 0.5) > p.step_energy(1000, 1.0, 0.5));
        assert!((p.step_energy(1000, 2.0, 0.5) / p.step_energy(1000, 1.0, 0.5) - 2.0).abs() < 1e-9);
        let e = p.energy_per_token(1000, 1.0, 0.5, 1e6);
        assert!(e > 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization out of range")]
    fn rejects_bad_utilization() {
        PowerModel::sunway().node_power(1.5);
    }
}
