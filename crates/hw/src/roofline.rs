//! Roofline kernel-time estimation.
//!
//! At 37-million-core scale we cannot execute the training step functionally;
//! the performance-projection experiments instead charge each kernel the
//! classic roofline time — the maximum of its compute time at the sustained
//! arithmetic rate and its memory time at DRAM bandwidth — plus a fixed
//! launch overhead. The same accounting the original system's performance
//! section relies on.

use crate::machine::MachineConfig;
use crate::processor::Precision;

/// Cost summary of one kernel invocation on one core group.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved between DRAM and the core group.
    pub bytes: f64,
    /// Estimated wall time, seconds.
    pub time: f64,
}

impl KernelCost {
    /// Aggregate two kernel costs executed back to back.
    pub fn then(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            time: self.time + other.time,
        }
    }
}

/// Roofline evaluator for one core group of a machine.
#[derive(Debug, Clone, Copy)]
pub struct Roofline {
    /// Sustained FLOP/s for compute-bound kernels at each precision.
    sustained_fp32: f64,
    sustained_half: f64,
    sustained_fp64: f64,
    /// DRAM bytes/s available to the core group.
    mem_bw: f64,
    /// Fixed kernel launch/synchronization overhead, seconds.
    pub launch_overhead: f64,
}

impl Roofline {
    /// Build from a machine config (per core group — the unit a rank owns).
    pub fn per_core_group(m: &MachineConfig) -> Roofline {
        let cg = m.processor.cg;
        Roofline {
            sustained_fp32: cg.peak_fp32 * m.gemm_efficiency,
            sustained_half: cg.peak_half * m.gemm_efficiency,
            sustained_fp64: cg.peak_fp64 * m.gemm_efficiency,
            mem_bw: cg.mem_bw,
            launch_overhead: 5.0e-6,
        }
    }

    /// Build from explicit sustained rates, for hosts that are not any
    /// `MachineConfig` — e.g. the E26 kernel bench reporting
    /// percent-of-roofline against an approximate model of the CI runner.
    /// All rates are FLOP/s (or bytes/s for `mem_bw`); `launch_overhead`
    /// is seconds and may be zero for in-process kernel calls.
    pub fn from_rates(
        sustained_fp32: f64,
        sustained_half: f64,
        sustained_fp64: f64,
        mem_bw: f64,
        launch_overhead: f64,
    ) -> Roofline {
        Roofline {
            sustained_fp32,
            sustained_half,
            sustained_fp64,
            mem_bw,
            launch_overhead,
        }
    }

    /// Sustained rate for a precision, FLOP/s.
    pub fn sustained(&self, p: Precision) -> f64 {
        match p {
            Precision::FP64 => self.sustained_fp64,
            Precision::FP32 => self.sustained_fp32,
            Precision::Half => self.sustained_half,
        }
    }

    /// Roofline time for a kernel with the given work and traffic.
    pub fn kernel(&self, flops: f64, bytes: f64, p: Precision) -> KernelCost {
        let t_compute = flops / self.sustained(p);
        let t_memory = bytes / self.mem_bw;
        KernelCost {
            flops,
            bytes,
            time: self.launch_overhead + t_compute.max(t_memory),
        }
    }

    /// Cost of a GEMM `[m,k]·[k,n]` at precision `p`: `2mkn` FLOPs and the
    /// streaming traffic of both operands plus the output.
    pub fn gemm(&self, m: usize, k: usize, n: usize, p: Precision) -> KernelCost {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let elt = match p {
            Precision::Half => 2.0,
            Precision::FP32 => 4.0,
            Precision::FP64 => 8.0,
        };
        let bytes = elt * (m * k + k * n + m * n) as f64;
        self.kernel(flops, bytes, p)
    }

    /// Cost of an element-wise pass over `n` elements (memory bound by
    /// construction: read + write).
    pub fn elementwise(&self, n: usize, p: Precision) -> KernelCost {
        let elt = match p {
            Precision::Half => 2.0,
            Precision::FP32 => 4.0,
            Precision::FP64 => 8.0,
        };
        self.kernel(n as f64, 2.0 * elt * n as f64, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl() -> Roofline {
        Roofline::per_core_group(&MachineConfig::new_generation_sunway())
    }

    #[test]
    fn big_gemm_is_compute_bound() {
        let r = rl();
        let c = r.gemm(4096, 4096, 4096, Precision::FP32);
        let t_compute = c.flops / r.sustained(Precision::FP32);
        // Within 10% of pure compute time (launch overhead is negligible).
        assert!(
            (c.time - t_compute) / t_compute < 0.1,
            "time {} vs {}",
            c.time,
            t_compute
        );
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let r = rl();
        let c = r.elementwise(1 << 24, Precision::FP32);
        let t_mem = c.bytes / 51.2e9;
        assert!((c.time - r.launch_overhead - t_mem).abs() / t_mem < 1e-6);
    }

    #[test]
    fn half_precision_gemm_is_faster() {
        let r = rl();
        let full = r.gemm(2048, 2048, 2048, Precision::FP32);
        let half = r.gemm(2048, 2048, 2048, Precision::Half);
        assert!(
            full.time / half.time > 3.0,
            "{} vs {}",
            full.time,
            half.time
        );
    }

    #[test]
    fn tiny_kernel_pays_launch_overhead() {
        let r = rl();
        let c = r.gemm(4, 4, 4, Precision::FP32);
        assert!(c.time >= r.launch_overhead);
        assert!(c.time < 2.0 * r.launch_overhead);
    }

    #[test]
    fn from_rates_matches_explicit_arithmetic() {
        let r = Roofline::from_rates(64.0e9, 128.0e9, 32.0e9, 10.0e9, 0.0);
        assert_eq!(r.sustained(Precision::FP32), 64.0e9);
        assert_eq!(r.sustained(Precision::Half), 128.0e9);
        assert_eq!(r.sustained(Precision::FP64), 32.0e9);
        // Compute-bound kernel: 64e9 flops at 64 GFLOP/s = 1 s.
        let c = r.kernel(64.0e9, 8.0, Precision::FP32);
        assert!((c.time - 1.0).abs() < 1e-9, "time {}", c.time);
        // Memory-bound kernel: 100e9 bytes at 10 GB/s = 10 s.
        let c = r.kernel(1.0, 100.0e9, Precision::FP32);
        assert!((c.time - 10.0).abs() < 1e-9, "time {}", c.time);
    }

    #[test]
    fn then_accumulates() {
        let r = rl();
        let a = r.gemm(128, 128, 128, Precision::FP32);
        let b = r.elementwise(1024, Precision::FP32);
        let c = a.then(b);
        assert!((c.time - (a.time + b.time)).abs() < 1e-12);
        assert!((c.flops - (a.flops + b.flops)).abs() < 1.0);
    }
}
