//! Machine model of the New Generation Sunway supercomputer.
//!
//! The original BaGuaLu system ran on hardware we cannot access: ~96,000
//! nodes of SW26010-Pro processors (6 core groups per node, each one
//! management processing element plus 64 compute processing elements —
//! 390 cores per node, over 37 million cores machine-wide), connected by a
//! two-level network (full-bisection *supernodes* of 256 nodes under a
//! tapered fat tree).
//!
//! This crate substitutes a *parameterized analytical model* of that
//! machine: peak arithmetic rates per precision, memory capacity and
//! bandwidth, and the link-level constants the network simulator and the
//! collective cost models in `bagualu-net` consume. All constants are
//! documented approximations of publicly known figures; every experiment
//! that uses them reports *shape* (scaling curves, crossovers), not absolute
//! reproduction of testbed numbers.

pub mod cpesim;
pub mod machine;
pub mod memory;
pub mod power;
pub mod processor;
pub mod roofline;

pub use cpesim::{best_tiling, simulate_gemm, GemmSim, Tiling};
pub use machine::{MachineConfig, NetworkParams};
pub use memory::MemoryBudget;
pub use power::PowerModel;
pub use processor::{CoreGroup, Precision, ProcessorSpec};
pub use roofline::{KernelCost, Roofline};
