//! Per-node memory accounting for brain-scale model states.
//!
//! Whether a 174-trillion-parameter model *fits* is a bookkeeping question:
//! parameters, gradients, and optimizer states, split between per-rank
//! expert shards (never replicated) and dense parameters (replicated per
//! rank unless optimizer-state sharding is enabled). This module answers it
//! and backs experiment E7.

/// Bytes of model/optimizer state each node must hold.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryBudget {
    /// Half-precision working parameters.
    pub params: f64,
    /// Half-precision gradients.
    pub grads: f64,
    /// FP32 master weights + Adam first/second moments.
    pub optimizer: f64,
    /// Activations for one micro-batch (checkpointed).
    pub activations: f64,
}

impl MemoryBudget {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.params + self.grads + self.optimizer + self.activations
    }

    /// Human-readable GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() / (1u64 << 30) as f64
    }

    /// Memory per node for a model with `dense_params` replicated parameters
    /// and `expert_params_total` expert parameters spread evenly over
    /// `nodes` (expert parallelism never replicates experts).
    ///
    /// * `param_bytes` — working precision (2 for half).
    /// * `shard_dense_optimizer` — ZeRO-style sharding of the *dense*
    ///   optimizer states across `nodes`; expert optimizer states are
    ///   already unique per node.
    /// * `activation_bytes` — per-node activation footprint.
    pub fn per_node(
        dense_params: f64,
        expert_params_total: f64,
        nodes: usize,
        param_bytes: f64,
        shard_dense_optimizer: bool,
        activation_bytes: f64,
    ) -> MemoryBudget {
        let expert_local = expert_params_total / nodes as f64;
        let params = (dense_params + expert_local) * param_bytes;
        let grads = (dense_params + expert_local) * param_bytes;
        // Adam: fp32 master + m + v = 12 bytes per parameter.
        const OPT_BYTES: f64 = 12.0;
        let dense_opt = if shard_dense_optimizer {
            dense_params * OPT_BYTES / nodes as f64
        } else {
            dense_params * OPT_BYTES
        };
        let optimizer = dense_opt + expert_local * OPT_BYTES;
        MemoryBudget {
            params,
            grads,
            optimizer,
            activations: activation_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_params_are_sharded_not_replicated() {
        let b = MemoryBudget::per_node(0.0, 96_000.0 * 1e9, 96_000, 2.0, false, 0.0);
        // Each node holds exactly 1e9 expert params at 2 bytes.
        assert!((b.params - 2e9).abs() < 1.0);
        assert!((b.optimizer - 12e9).abs() < 1.0);
    }

    #[test]
    fn sharding_divides_dense_optimizer() {
        let dense = 1e9;
        let rep = MemoryBudget::per_node(dense, 0.0, 1000, 2.0, false, 0.0);
        let shard = MemoryBudget::per_node(dense, 0.0, 1000, 2.0, true, 0.0);
        assert!((rep.optimizer / shard.optimizer - 1000.0).abs() < 1e-6);
        // Params and grads are unaffected by optimizer sharding.
        assert_eq!(rep.params, shard.params);
        assert_eq!(rep.grads, shard.grads);
    }

    #[test]
    fn brain_scale_fits_with_expert_parallelism() {
        // 174T parameters, ~all in experts, over 96k nodes:
        let b = MemoryBudget::per_node(2e9, 174e12, 96_000, 2.0, true, 8e9);
        // 174T/96k ≈ 1.81e9 expert params/node → ~3.6 GB params + ~21.8 GB opt.
        assert!(b.total_gib() < 96.0, "per-node GiB = {}", b.total_gib());
        assert!(b.total_gib() > 20.0);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let b = MemoryBudget {
            params: 1.0,
            grads: 2.0,
            optimizer: 3.0,
            activations: 4.0,
        };
        assert_eq!(b.total(), 10.0);
    }
}
