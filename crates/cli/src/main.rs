//! `bagualu` — the command-line face of the reproduction.
//!
//! ```text
//! bagualu info                                # machine + preset tables
//! bagualu train --ranks 4 --steps 100 --dtype bf16 --csv out.csv
//! bagualu project --preset 174t --nodes 96000 --precision half
//! bagualu generate --steps 300 --prompt 3,4,5 --tokens 8
//! bagualu serve --ranks 4 --max-batch 8 --kv-blocks 64 --requests 32 --qps 200
//! ```

mod args;
mod config;

use args::Args;
use bagualu::comm::FaultPlan;
use bagualu::data::TokenDistribution;
use bagualu::hw::{MachineConfig, Precision};
use bagualu::metrics::{format_flops, format_params, format_si};
use bagualu::model::config::ModelConfig;
use bagualu::model::param::HasParams;
use bagualu::model::transformer::Transformer;
use bagualu::optim::adam::{Adam, AdamConfig};
use bagualu::parallel::moe_dist::A2aKind;
use bagualu::perfmodel::{project, PerfInput};
use bagualu::tensor::rng::Rng;
use bagualu::trainer::Trainer;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => die(&e),
    };
    let result = match args.command.as_str() {
        "info" => cmd_info(&args),
        "train" => cmd_train(&args),
        "project" => cmd_project(&args),
        "generate" => cmd_generate(&args),
        "serve" => cmd_serve(&args),
        "tune" => cmd_tune(&args),
        "" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    if let Err(e) = result {
        die(&e);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    print_help();
    std::process::exit(2);
}

fn print_help() {
    eprintln!("usage: bagualu <command> [--flags]");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  info      machine model and brain-scale preset tables");
    eprintln!("  train     run the functional MoDa trainer");
    eprintln!("            --config FILE (TOML RunConfig; defaults < file < flags)");
    eprintln!("            --dump-config (print the resolved config as TOML and exit)");
    eprintln!("            --preset tiny|1.93t|14.5t|174t (model shape; default tiny)");
    eprintln!("            --ranks N --steps N --batch N --seq N --lr F --dtype fp32|bf16|fp16");
    eprintln!("            --wire-dtype f32|f16|bf16 (compress comm traffic to 16-bit in flight)");
    eprintln!(
        "            --compute-backend reference|tiled|tiled:fma|half (GEMM kernels; \
         default tiled. tiled:fma is faster but not bit-identical)"
    );
    eprintln!("            --compute-dtype fp16|bf16 (half-compute storage format; default bf16)");
    eprintln!("            --experts N --gate top1|top2|balanced|noisy --skew F");
    eprintln!("            --hierarchical (a2a) --supernode-size S (0 = auto ranks/2)");
    eprintln!("            --zero (sharded optimizer) --csv PATH");
    eprintln!("            --placement roundrobin|block|supernode[:S] (expert↔rank mapping)");
    eprintln!("            --locality-bias B (gate bonus toward intra-supernode experts)");
    eprintln!("            --no-overlap (blocking grad sync) --bucket-kib N (overlap bucket)");
    eprintln!("            --trace FILE (write Chrome trace JSON + per-rank summary)");
    eprintln!("            --ckpt-dir PATH --ckpt-every N (checkpoint/restart recovery)");
    eprintln!("            --crash R@S[,R@S…] (inject rank R crash at step S) --max-restarts N");
    eprintln!("            --slow R@A..B:USEC[,…] (rank R stalls USEC µs per send on steps A..B)");
    eprintln!(
        "            --elastic (continue on R-1 ranks after a crash instead of full restore)"
    );
    eprintln!("            --straggler-factor F (flag ranks over F x median send occupancy)");
    eprintln!("            --straggler-window N (samples averaged before flagging; default 3)");
    eprintln!("  project   performance projection on the simulated machine");
    eprintln!("            --preset 1.93t|14.5t|174t --nodes N --precision fp32|half");
    eprintln!("            --naive (collectives) --overlap F --tokens-per-node N --two-level-gate");
    eprintln!("  generate  train a tiny model and decode from it");
    eprintln!("            --steps N --prompt a,b,c --tokens N");
    eprintln!("  tune      auto-tune the comm knobs against the cost model (see docs/TUNING.md)");
    eprintln!("            takes every train flag as the base config, plus:");
    eprintln!("            --scale-nodes N (machine scale the model targets; default 4096)");
    eprintln!("            --top-k N (modeled candidates to validate with real runs; default 3)");
    eprintln!("            --measure-steps N (steps per validation run) --no-measure (model only)");
    eprintln!("            --out FILE (write the winning config TOML; feed to train --config)");
    eprintln!("  serve     continuous-batching expert-parallel inference (see docs/SERVING.md)");
    eprintln!("            --ranks N --max-batch N --kv-blocks N --block-tokens N");
    eprintln!("            --requests N --qps F (0 = all at once) --prompt-len N --tokens N");
    eprintln!("            --experts N --hierarchical --placement roundrobin|block|supernode[:S]");
    eprintln!("            --locality-bias B (trades exact logits for intra-supernode a2a)");
}

fn preset(name: &str) -> Result<ModelConfig, String> {
    match name {
        "tiny" => Ok(ModelConfig::tiny()),
        "1.93t" => Ok(ModelConfig::bagualu_1_93t()),
        "14.5t" => Ok(ModelConfig::bagualu_14_5t()),
        "174t" => Ok(ModelConfig::bagualu_174t()),
        other => Err(format!(
            "unknown preset: {other} (tiny | 1.93t | 14.5t | 174t)"
        )),
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    args.assert_known(&[])?;
    let m = MachineConfig::new_generation_sunway();
    println!("machine: New Generation Sunway (model)");
    println!(
        "  nodes: {}  supernodes: {}  cores: {}",
        m.nodes,
        m.supernodes(),
        m.total_cores()
    );
    println!(
        "  peak: {} fp32, {} half",
        format_flops(m.peak(Precision::FP32)),
        format_flops(m.peak(Precision::Half))
    );
    println!("\npresets:");
    for (name, cfg) in [
        ("1.93t", ModelConfig::bagualu_1_93t()),
        ("14.5t", ModelConfig::bagualu_14_5t()),
        ("174t", ModelConfig::bagualu_174t()),
    ] {
        println!(
            "  {name:>6}: {} params ({} experts x {} MoE blocks, d={}, L={})",
            format_params(cfg.count_params()),
            cfg.n_experts,
            cfg.n_moe_blocks(),
            cfg.d_model,
            cfg.n_layers
        );
    }
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let mut known = vec!["csv", "trace", "crash", "slow"];
    known.extend_from_slice(config::TRAIN_CONFIG_FLAGS);
    args.assert_known(&known)?;
    // Defaults < --config FILE < explicit flags, all through one
    // RunConfig: the run is fully described by `--dump-config`'s output.
    let rc = config::train_run_config(args)?;
    if args.switch("dump-config") {
        print!("{}", rc.to_toml());
        return Ok(());
    }
    let trace_path = args.get("trace", "");
    let mut cfg = rc.to_train_config()?;
    cfg.trace = !trace_path.is_empty();
    let nranks = cfg.nranks;
    println!(
        "training {} params on {} ranks, {} steps, {} (wire {}, placement {}, compute {}) …",
        cfg.model.count_params(),
        cfg.nranks,
        cfg.steps,
        cfg.dtype,
        cfg.wire,
        cfg.resolved_placement(),
        cfg.compute
    );

    // Fault-tolerant path: an enabled [ft] section (any checkpoint or
    // degradation flag sets it) or an injected fault routes through
    // run_ft. Contradictory combinations were already rejected by
    // `to_train_config`'s validation, each with the fix spelled out.
    let crash_spec = args.get("crash", "");
    let slow_spec = args.get("slow", "");
    let ft_requested = rc.ft.enabled || !crash_spec.is_empty() || !slow_spec.is_empty();
    let report = if ft_requested {
        let mut plan = FaultPlan::new(cfg.seed);
        for part in crash_spec.split(',').filter(|s| !s.is_empty()) {
            let (r, s) = part
                .split_once('@')
                .ok_or_else(|| format!("bad --crash spec: {part} (want rank@step)"))?;
            let rank: usize = r.trim().parse().map_err(|_| format!("bad rank: {r}"))?;
            let step: usize = s.trim().parse().map_err(|_| format!("bad step: {s}"))?;
            if rank >= cfg.nranks {
                return Err(format!(
                    "--crash rank {rank} out of range (ranks={nranks}); ranks are \
                     numbered 0..{}",
                    nranks - 1
                ));
            }
            if step >= cfg.steps {
                return Err(format!(
                    "--crash at step {step} can never fire: the run only has {} steps \
                     (0..{})",
                    cfg.steps,
                    cfg.steps - 1
                ));
            }
            plan = plan.crash(rank, step);
        }
        for part in slow_spec.split(',').filter(|s| !s.is_empty()) {
            let bad = || format!("bad --slow spec: {part} (want rank@from..to:usec)");
            let (r, rest) = part.split_once('@').ok_or_else(bad)?;
            let (range, usec) = rest.split_once(':').ok_or_else(bad)?;
            let (a, b) = range.split_once("..").ok_or_else(bad)?;
            let rank: usize = r.trim().parse().map_err(|_| format!("bad rank: {r}"))?;
            let from: usize = a.trim().parse().map_err(|_| format!("bad step: {a}"))?;
            let to: usize = b.trim().parse().map_err(|_| format!("bad step: {b}"))?;
            let delay: u64 = usec
                .trim()
                .parse()
                .map_err(|_| format!("bad delay: {usec}"))?;
            if rank >= cfg.nranks {
                return Err(format!(
                    "--slow rank {rank} out of range (ranks={nranks}); ranks are \
                     numbered 0..{}",
                    nranks - 1
                ));
            }
            if from >= to {
                return Err(format!(
                    "--slow step range {from}..{to} is empty (want from < to)"
                ));
            }
            plan = plan.slow_rank(rank, from, to, delay);
        }
        // The fault *plan* is injection tooling, not part of the run
        // description — --crash/--slow opt into the recovery driver
        // without writing an [ft] section of their own.
        let mut ft_rc = rc.clone();
        ft_rc.ft.enabled = true;
        let mut ft = ft_rc.to_ft_config().expect("just enabled");
        ft.plan = plan;
        let report = Trainer::new(cfg).run_ft(&ft);
        if report.restarts > 0 {
            println!(
                "recovered from {} failure(s): {} step(s) re-executed, {:.2}s lost{}",
                report.restarts,
                report.lost_steps,
                report.recovery_time_s,
                if report.resizes > 0 {
                    format!(", world shrunk {} time(s)", report.resizes)
                } else {
                    String::new()
                }
            );
        }
        if report.migrations > 0 {
            println!(
                "straggler mitigation: {} expert-load migration(s), final placement {}",
                report.migrations, report.placement
            );
        }
        report
    } else {
        Trainer::new(cfg).run()
    };
    for (i, l) in report.loss_curve.iter().enumerate() {
        if i % 10 == 0 || i + 1 == report.loss_curve.len() {
            println!(
                "  step {i:>4}: loss {l:.4}  imbalance {:.2}",
                report.imbalance_curve[i]
            );
        }
    }
    let overlap = match report.overlap_fraction {
        Some(f) => format!("overlap {:.0}%", f * 100.0),
        None => "overlap n/a".to_string(),
    };
    println!(
        "final loss {:.4} | {} | skipped {} | {}",
        report.final_loss(),
        format_si(report.tokens_per_sec, "tok/s"),
        report.skipped_steps,
        overlap
    );
    if let Some(stats) = report.comm_stats {
        print!(
            "comm traffic: {} total",
            format_si(stats.total_bytes as f64, "B")
        );
        for (family, f) in stats.families() {
            if f.bytes > 0 {
                print!(" | {:?} {}", family, format_si(f.bytes as f64, "B"));
            }
        }
        if let Some(f) = stats.a2a_local_fraction() {
            print!(" | a2a intra-supernode {:.0}%", f * 100.0);
        }
        println!();
    }
    if !trace_path.is_empty() {
        let trace = report.trace.as_ref().expect("trace was enabled");
        std::fs::write(&trace_path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
        println!("wrote Chrome trace to {trace_path} (open at https://ui.perfetto.dev)");
        print!("{}", trace.summary());
    }
    if let Some(path) = {
        let p = args.get("csv", "");
        (!p.is_empty()).then_some(p)
    } {
        std::fs::write(&path, report.to_csv()).map_err(|e| e.to_string())?;
        println!("wrote per-step metrics to {path}");
    }
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let mut known = vec!["scale-nodes", "top-k", "measure-steps", "no-measure", "out"];
    known.extend_from_slice(config::TRAIN_CONFIG_FLAGS);
    args.assert_known(&known)?;
    // Every train flag works here and fixes the base config the tuner
    // anchors to; the tuner only searches the communication-side axes.
    let rc = config::train_run_config(args)?;
    if args.switch("dump-config") {
        print!("{}", rc.to_toml());
        return Ok(());
    }
    let defaults = bagualu_tune::TuneOptions::default();
    let opts = bagualu_tune::TuneOptions {
        scale_nodes: args.get_parse("scale-nodes", defaults.scale_nodes)?,
        top_k: args.get_parse("top-k", defaults.top_k)?,
        measure_steps: args.get_parse("measure-steps", defaults.measure_steps)?,
        measure: !args.switch("no-measure"),
    };
    let env = bagualu_tune::CostEnv::sunway(opts.scale_nodes);
    let space = bagualu_tune::SearchSpace::default();
    println!(
        "tuning over {} knob combinations at {} modeled nodes ({} measured validation \
         run(s) of {} step(s) each) …",
        space.grid_points(),
        opts.scale_nodes,
        if opts.measure { opts.top_k + 1 } else { 0 },
        opts.measure_steps
    );
    let report = bagualu_tune::tune(&rc, &space, &env, &opts)?;
    print!("{}", report.table());
    let w = report.winner();
    println!(
        "winner: {} (modeled {:.3} ms/step, {}, {:.2}x over the roofline floor)",
        w.name,
        w.cost.step_s * 1e3,
        match w.measured_step_s {
            Some(t) => format!("measured {:.3} ms/step", t * 1e3),
            None => "not measured".into(),
        },
        w.cost.roofline_distance
    );
    let out = args.get("out", "");
    if out.is_empty() {
        println!("\n# winning config (save and replay with: bagualu train --config FILE)");
        print!("{}", report.winning_toml());
    } else {
        std::fs::write(&out, report.winning_toml()).map_err(|e| format!("--out {out}: {e}"))?;
        println!("wrote winning config to {out} (replay with: bagualu train --config {out})");
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut known = vec!["requests", "qps", "prompt-len", "tokens", "seed"];
    known.extend_from_slice(config::SERVE_CONFIG_FLAGS);
    args.assert_known(&known)?;
    use bagualu::serve::run;
    use bagualu::trace::names;
    use std::time::{Duration, Instant};

    let rc = config::serve_run_config(args)?;
    if args.switch("dump-config") {
        print!("{}", rc.to_toml());
        return Ok(());
    }
    rc.validate()?;
    let nranks = rc.train.ranks;
    let requests = args.get_parse("requests", 32usize)?;
    let qps: f64 = args.get_parse("qps", 0.0f64)?;
    let prompt_len = args.get_parse("prompt-len", 4usize)?;
    let max_new = args.get_parse("tokens", 8usize)?;
    let seed = args.get_parse("seed", 42u64)?;
    let locality_bias = rc.placement.locality_bias;
    let engine = rc.to_engine_config();
    let model_cfg = ModelConfig {
        n_experts: rc.model.experts,
        gate: rc.model.gate,
        ..bagualu::runconfig::preset(&rc.model.preset)?
    };
    let a2a = rc.a2a();
    let placement = rc.placement.policy;
    if requests == 0 || prompt_len == 0 {
        return Err("--requests and --prompt-len must both be >= 1".into());
    }
    if max_new == 0 {
        return Err("--tokens must be >= 1 (there is nothing to decode otherwise)".into());
    }
    if prompt_len + max_new > model_cfg.max_seq {
        return Err(format!(
            "--prompt-len {prompt_len} + --tokens {max_new} exceeds the model's max_seq \
             ({}); shorten one of them",
            model_cfg.max_seq
        ));
    }
    let supernode_size = match a2a {
        A2aKind::Hierarchical { supernode_size } => supernode_size,
        A2aKind::Pairwise => nranks,
    };
    if locality_bias > 0.0 {
        println!(
            "note: --locality-bias trades bit-exact logits for cheaper decode a2a \
             (see docs/SERVING.md)"
        );
    }

    println!(
        "serving on {nranks} rank(s): {} experts, batch {} / {} KV blocks x {} tokens, \
         {} requests of {}+{} tokens at {} …",
        model_cfg.n_experts,
        engine.max_batch,
        engine.kv_blocks,
        engine.block_tokens,
        requests,
        prompt_len,
        max_new,
        if qps > 0.0 {
            format!("{qps} req/s")
        } else {
            "full blast".to_string()
        }
    );
    let opts = rc.to_server_options(true);
    let started = Instant::now();
    let report = run(
        opts,
        |rank| {
            let mut m = bagualu::parallel::DistTransformer::new_placed(
                model_cfg, seed, rank, nranks, a2a, placement,
            );
            if locality_bias > 0.0 {
                m.set_locality_bias(locality_bias, supernode_size);
            }
            m
        },
        |client| {
            // Open-loop load generator: fixed inter-arrival gap of 1/qps
            // (0 = submit everything immediately), deterministic prompts.
            let mut rng = Rng::seed_from(seed ^ 0x5e2e);
            let gap = (qps > 0.0).then(|| Duration::from_secs_f64(1.0 / qps));
            let tickets: Vec<_> = (0..requests)
                .map(|i| {
                    if let (Some(gap), true) = (gap, i > 0) {
                        std::thread::sleep(gap);
                    }
                    let prompt: Vec<usize> = (0..prompt_len)
                        .map(|_| rng.below(model_cfg.vocab))
                        .collect();
                    client.submit(prompt, max_new)
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("generated requests are always valid"))
                .collect::<Vec<_>>()
        },
    );
    let wall = started.elapsed();
    let responses = report.output;
    let trace = report.trace.expect("serve always traces");

    let mut totals_ms: Vec<f64> = responses
        .iter()
        .map(|r| r.total_ns() as f64 / 1e6)
        .collect();
    totals_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| totals_ms[((totals_ms.len() - 1) as f64 * p).round() as usize];
    let generated: usize = responses.iter().map(|r| r.generated().len()).sum();
    let decode_steps = trace.span_count(names::SERVE_DECODE_STEP);
    let occupancy = if decode_steps > 0 {
        trace.counter_total(names::SERVE_BATCH_OCCUPANCY) as f64 / decode_steps as f64
    } else {
        0.0
    };
    println!(
        "completed {} requests in {:.2}s: {} generated",
        responses.len(),
        wall.as_secs_f64(),
        format_si(generated as f64 / wall.as_secs_f64(), "tok/s"),
    );
    println!(
        "latency p50 {:.2}ms  p99 {:.2}ms  (queue+prefill+decode)",
        pct(0.50),
        pct(0.99)
    );
    println!(
        "mean batch occupancy {:.2}/{} | re-queued admissions {} | KV blocks reserved {} \
         (all {} returned)",
        occupancy,
        engine.max_batch,
        trace.counter_total(names::SERVE_REQUEUED),
        trace.counter_total(names::SERVE_KV_BLOCKS_USED),
        trace.counter_total(names::SERVE_KV_BLOCKS_FREE),
    );
    Ok(())
}

fn cmd_project(args: &Args) -> Result<(), String> {
    args.assert_known(&[
        "preset",
        "nodes",
        "precision",
        "naive",
        "overlap",
        "tokens-per-node",
        "two-level-gate",
    ])?;
    let model = preset(&args.get("preset", "14.5t"))?;
    let nodes = args.get_parse("nodes", 96_000usize)?;
    let naive = args.switch("naive");
    let input = PerfInput {
        precision: match args.get("precision", "half").as_str() {
            "half" => Precision::Half,
            "fp32" => Precision::FP32,
            other => return Err(format!("unknown precision: {other}")),
        },
        hierarchical_a2a: !naive,
        hierarchical_allreduce: !naive,
        overlap: args.get_parse("overlap", 0.0f64)?,
        tokens_per_node: args.get_parse("tokens-per-node", 2048usize)?,
        two_level_gate: args.switch("two-level-gate"),
        ..PerfInput::sunway_nodes(model, nodes)
    };
    let p = project(&input);
    let b = p.breakdown;
    println!(
        "{} params on {} nodes ({} cores):",
        format_params(model.count_params()),
        nodes,
        nodes * 390
    );
    println!(
        "  step {:.3}s = dense {:.3} + gate {:.3} + experts {:.3} + a2a {:.3} + allreduce {:.3}",
        p.step_time, b.dense_compute, b.gate_compute, b.expert_compute, b.a2a, b.allreduce
    );
    println!(
        "  {} | sustained {} ({:.1}% of sustained peak) | comm {:.0}%",
        format_si(p.tokens_per_sec, "tok/s"),
        format_flops(p.sustained_flops),
        100.0 * p.efficiency,
        100.0 * b.comm_fraction()
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    args.assert_known(&["steps", "prompt", "tokens", "seed"])?;
    let steps = args.get_parse("steps", 300usize)?;
    let n: usize = args.get_parse("tokens", 8usize)?;
    let cfg = ModelConfig {
        vocab: 32,
        ..ModelConfig::tiny()
    };
    let prompt: Vec<usize> = args
        .get("prompt", "3,4")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad prompt token: {s}"))
        })
        .collect::<Result<_, _>>()?;
    if prompt.iter().any(|&t| t >= cfg.vocab) {
        return Err(format!("prompt tokens must be < {}", cfg.vocab));
    }

    let mut rng = Rng::seed_from(args.get_parse("seed", 7u64)?);
    let mut model = Transformer::new(cfg, &mut rng);
    let task = bagualu::data::SyntheticLM::new(cfg.vocab, TokenDistribution::Uniform, 7);
    let mut opt = Adam::new(AdamConfig {
        lr: 1e-2,
        ..Default::default()
    });
    println!("training {} params for {steps} steps…", model.num_params());
    for step in 0..steps {
        let (tokens, targets) = task.batch(4, 8, 0, step);
        model.train_batch(&tokens, &targets, 4, 8);
        opt.step(&mut model);
        model.zero_grad();
    }
    let out = model.generate_cached(&prompt, n.min(cfg.max_seq - prompt.len()));
    println!(
        "prompt {:?} → {}",
        prompt,
        out.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    Ok(())
}
