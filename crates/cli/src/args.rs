//! A small `--key value` argument parser (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: String,
    flags: HashMap<String, String>,
    /// `--key` with no value (boolean switches).
    switches: Vec<String>,
}

impl Args {
    /// Parse `argv[1..]`. The first non-flag token is the subcommand; flags
    /// are `--key value` or bare `--switch`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name".into());
                }
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().unwrap();
                        if out.flags.insert(key.to_string(), v).is_some() {
                            return Err(format!("duplicate flag --{key}"));
                        }
                    }
                    _ => out.switches.push(key.to_string()),
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                return Err(format!("unexpected positional argument: {tok}"));
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed flag with a default; errors name the flag.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// True when `--key` was passed bare.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Flags the program never consumed (typo detection).
    pub fn assert_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys().chain(self.switches.iter()) {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_flags_switches() {
        let a = parse("train --steps 50 --verbose --lr 0.01").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get_parse("steps", 0usize).unwrap(), 50);
        assert_eq!(a.get_parse("lr", 0.0f32).unwrap(), 0.01);
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("project").unwrap();
        assert_eq!(a.get("preset", "14.5t"), "14.5t");
        assert_eq!(a.get_parse("nodes", 96_000usize).unwrap(), 96_000);
    }

    #[test]
    fn rejects_duplicates_and_positionals() {
        assert!(parse("train --steps 1 --steps 2").is_err());
        assert!(parse("train oops").is_err());
    }

    #[test]
    fn rejects_bad_values_and_unknown_flags() {
        let a = parse("train --steps banana").unwrap();
        assert!(a.get_parse("steps", 0usize).is_err());
        let a = parse("train --stepz 5").unwrap();
        assert!(a.assert_known(&["steps"]).is_err());
        assert!(a.assert_known(&["stepz"]).is_ok());
    }
}
