//! Flags → [`RunConfig`]: the CLI's half of the unified config layer.
//!
//! Every flag default here is *derived from* [`RunConfig::default`] — the
//! CLI holds no default literals of its own, so the flag surface and the
//! TOML schema can never drift (a test below pins this). Precedence is
//! `RunConfig::default()` < `--config FILE` < explicit flags, which makes
//! a config file a named set of overrides and a flag a one-off tweak on
//! top of it.

use crate::args::Args;
use bagualu::runconfig::RunConfig;
use bagualu::tensor::{ComputeBackend, DType};

/// Parse a flag through its knob's own `FromStr`, keeping the knob's
/// error text (which lists the accepted spellings) but naming the flag.
fn flag<T: std::str::FromStr<Err = String>>(
    args: &Args,
    key: &str,
    current: T,
) -> Result<T, String> {
    match args.get(key, "") {
        s if s.is_empty() => Ok(current),
        s => s.parse().map_err(|e: String| format!("--{key}: {e}")),
    }
}

/// Read `--config FILE` into a [`RunConfig`], or start from defaults.
fn base(args: &Args) -> Result<RunConfig, String> {
    let path = args.get("config", "");
    if path.is_empty() {
        return Ok(RunConfig::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("--config {path}: {e}"))?;
    RunConfig::from_toml(&text).map_err(|e| format!("--config {path}: {e}"))
}

/// The flags [`train_run_config`] consumes (for `assert_known`).
pub const TRAIN_CONFIG_FLAGS: &[&str] = &[
    "config",
    "dump-config",
    "preset",
    "experts",
    "gate",
    "ranks",
    "steps",
    "batch",
    "seq",
    "lr",
    "dtype",
    "seed",
    "skew",
    "zero",
    "wire-dtype",
    "hierarchical",
    "supernode-size",
    "no-overlap",
    "bucket-kib",
    "placement",
    "locality-bias",
    "compute-backend",
    "compute-dtype",
    "ckpt-dir",
    "ckpt-every",
    "max-restarts",
    "elastic",
    "straggler-factor",
    "straggler-window",
];

/// The flags [`serve_run_config`] consumes.
pub const SERVE_CONFIG_FLAGS: &[&str] = &[
    "config",
    "dump-config",
    "ranks",
    "experts",
    "hierarchical",
    "supernode-size",
    "placement",
    "locality-bias",
    "max-batch",
    "kv-blocks",
    "block-tokens",
];

/// Overlay the training-side flags onto `--config`/defaults. The result
/// is *not* yet validated — `RunConfig::to_train_config` validates, so
/// `--dump-config` can still print a config the user is mid-way through
/// assembling.
pub fn train_run_config(args: &Args) -> Result<RunConfig, String> {
    let mut rc = base(args)?;

    // [model]
    let p = args.get("preset", "");
    if !p.is_empty() {
        bagualu::runconfig::preset(&p).map_err(|e| format!("--preset: {e}"))?;
        rc.model.preset = p;
    }
    rc.model.experts = args.get_parse("experts", rc.model.experts)?;
    rc.model.gate = flag(args, "gate", rc.model.gate)?;

    // [train]
    rc.train.ranks = args.get_parse("ranks", rc.train.ranks)?;
    rc.train.steps = args.get_parse("steps", rc.train.steps)?;
    rc.train.batch = args.get_parse("batch", rc.train.batch)?;
    rc.train.seq = args.get_parse("seq", rc.train.seq)?;
    rc.train.lr = args.get_parse("lr", rc.train.lr)?;
    rc.train.dtype = flag(args, "dtype", rc.train.dtype)?;
    rc.train.seed = args.get_parse("seed", rc.train.seed)?;
    rc.train.skew = args.get_parse("skew", rc.train.skew)?;
    if args.switch("zero") {
        rc.train.zero = true;
    }

    // [comm]
    rc.comm.wire_dtype = flag(args, "wire-dtype", rc.comm.wire_dtype)?;
    if args.switch("hierarchical") {
        rc.comm.hierarchical = true;
    }
    rc.comm.supernode_size = args.get_parse("supernode-size", rc.comm.supernode_size)?;
    if args.switch("no-overlap") {
        rc.comm.overlap = false;
    }
    rc.comm.bucket_kib = args.get_parse("bucket-kib", rc.comm.bucket_kib)?;

    // [placement]
    rc.placement.policy = flag(args, "placement", rc.placement.policy)?;
    rc.placement.locality_bias = args.get_parse("locality-bias", rc.placement.locality_bias)?;

    // [compute] — `--compute-dtype` refines a `half` backend in place.
    rc.compute.backend = flag(args, "compute-backend", rc.compute.backend)?;
    let compute_dtype = args.get("compute-dtype", "");
    if !compute_dtype.is_empty() {
        let dt: DType = compute_dtype
            .parse()
            .map_err(|e| format!("--compute-dtype: {e}"))?;
        match (rc.compute.backend, dt) {
            (_, DType::F32) => {
                return Err("--compute-dtype wants a 16-bit format (fp16 | bf16)".into())
            }
            (ComputeBackend::Half(_), dt) => rc.compute.backend = ComputeBackend::Half(dt),
            _ => {
                return Err(
                    "--compute-dtype only applies to --compute-backend half (reference, \
                     tiled, and tiled:fma always compute in fp32)"
                        .into(),
                )
            }
        }
    }

    // [ft] — any recovery-side flag opts the run into the fault-tolerant
    // driver, matching the historical CLI behavior.
    let ckpt_dir = args.get("ckpt-dir", "");
    if !ckpt_dir.is_empty() {
        rc.ft.ckpt_dir = ckpt_dir;
        rc.ft.enabled = true;
    }
    rc.ft.ckpt_every = args.get_parse("ckpt-every", rc.ft.ckpt_every)?;
    rc.ft.max_restarts = args.get_parse("max-restarts", rc.ft.max_restarts)?;
    if args.switch("elastic") {
        rc.ft.elastic = true;
        rc.ft.enabled = true;
    }
    let sf = args.get("straggler-factor", "");
    if !sf.is_empty() {
        rc.ft.straggler_factor = sf
            .parse()
            .map_err(|_| format!("bad --straggler-factor: {sf}"))?;
        rc.ft.enabled = true;
    }
    rc.ft.straggler_window = args.get_parse("straggler-window", rc.ft.straggler_window)?;

    Ok(rc)
}

/// Overlay the serving-side flags onto `--config`/defaults. Serving uses
/// `[model]`, `[serve]`, the comm topology, and placement; `[train]`'s
/// `ranks` doubles as the serving world size (one world size per run).
pub fn serve_run_config(args: &Args) -> Result<RunConfig, String> {
    let mut rc = base(args)?;
    rc.train.ranks = args.get_parse("ranks", rc.train.ranks)?;
    rc.model.experts = args.get_parse("experts", rc.model.experts)?;
    if args.switch("hierarchical") {
        rc.comm.hierarchical = true;
    }
    rc.comm.supernode_size = args.get_parse("supernode-size", rc.comm.supernode_size)?;
    rc.placement.policy = flag(args, "placement", rc.placement.policy)?;
    rc.placement.locality_bias = args.get_parse("locality-bias", rc.placement.locality_bias)?;
    rc.serve.max_batch = args.get_parse("max-batch", rc.serve.max_batch)?;
    rc.serve.kv_blocks = args.get_parse("kv-blocks", rc.serve.kv_blocks)?;
    rc.serve.block_tokens = args.get_parse("block-tokens", rc.serve.block_tokens)?;
    Ok(rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagualu::parallel::ExpertPlacement;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    /// The anti-drift pin: a bare `bagualu train` must mean exactly
    /// `RunConfig::default()`. If a default literal ever sneaks back into
    /// the CLI layer, this fails.
    #[test]
    fn bare_train_is_exactly_the_default_run_config() {
        assert_eq!(
            train_run_config(&parse("train")).unwrap(),
            RunConfig::default()
        );
        assert_eq!(
            serve_run_config(&parse("serve")).unwrap(),
            RunConfig::default()
        );
    }

    #[test]
    fn flags_override_defaults() {
        let rc = train_run_config(&parse(
            "train --ranks 4 --steps 7 --wire-dtype bf16 --hierarchical \
             --supernode-size 2 --placement supernode:2 --no-overlap --zero \
             --compute-backend tiled:fma --gate balanced --skew 1.1",
        ))
        .unwrap();
        assert_eq!(rc.train.ranks, 4);
        assert_eq!(rc.train.steps, 7);
        assert!(rc.comm.hierarchical && !rc.comm.overlap && rc.train.zero);
        assert_eq!(rc.comm.supernode_size, 2);
        assert_eq!(
            rc.placement.policy,
            ExpertPlacement::Supernode { supernode_size: 2 }
        );
        assert_eq!(rc.compute.backend, ComputeBackend::TiledFma);
    }

    #[test]
    fn flags_override_config_file() {
        let dir = std::env::temp_dir().join(format!("bagualu-cli-cfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.toml");
        let mut file_rc = RunConfig::default();
        file_rc.train.steps = 99;
        file_rc.train.ranks = 4;
        std::fs::write(&path, file_rc.to_toml()).unwrap();
        let rc = train_run_config(&parse(&format!(
            "train --config {} --steps 11",
            path.display()
        )))
        .unwrap();
        assert_eq!(rc.train.steps, 11, "flag beats file");
        assert_eq!(rc.train.ranks, 4, "file beats default");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ft_flags_enable_the_recovery_driver() {
        let rc = train_run_config(&parse("train --elastic --ckpt-every 4")).unwrap();
        assert!(rc.ft.enabled && rc.ft.elastic);
        assert_eq!(rc.ft.ckpt_every, 4);
        let rc = train_run_config(&parse("train --straggler-factor 1.5")).unwrap();
        assert!(rc.ft.enabled);
        assert_eq!(rc.ft.straggler_factor, 1.5);
        assert!(!train_run_config(&parse("train")).unwrap().ft.enabled);
    }

    #[test]
    fn knob_errors_name_the_flag_and_the_choices() {
        let e = train_run_config(&parse("train --gate top9")).unwrap_err();
        assert!(e.contains("--gate") && e.contains("balanced"), "{e}");
        let e = train_run_config(&parse("train --compute-dtype fp32")).unwrap_err();
        assert!(e.contains("16-bit"), "{e}");
        let e = train_run_config(&parse("train --config /no/such/file.toml")).unwrap_err();
        assert!(e.contains("--config"), "{e}");
    }

    #[test]
    fn config_flag_surface_matches_the_flag_lists() {
        // Every flag the builders read must be declared, or `assert_known`
        // would reject it at the command layer.
        for f in ["config", "supernode-size", "preset", "dump-config"] {
            assert!(TRAIN_CONFIG_FLAGS.contains(&f), "{f} missing");
        }
        for f in ["config", "max-batch", "kv-blocks", "block-tokens"] {
            assert!(SERVE_CONFIG_FLAGS.contains(&f), "{f} missing");
        }
    }
}
