//! Semantic equivalence: an R-rank MoDa-parallel step must reproduce the
//! single-rank step over the concatenated global batch.
//!
//! This is the load-bearing correctness property of the whole runtime: the
//! all-to-all dispatch/combine, the expert sharding, and the gradient
//! synchronization rules are all exercised at once, with the local
//! `MoELayer`-based `Transformer` as the oracle.

use bagualu_comm::harness::{run_ranks, run_ranks_map};
use bagualu_comm::shm::Communicator;
use bagualu_model::config::ModelConfig;
use bagualu_model::moe::GateKind;
use bagualu_model::param::HasParams;
use bagualu_model::transformer::Transformer;
use bagualu_parallel::model_dist::DistTransformer;
use bagualu_parallel::moe_dist::A2aKind;
use bagualu_parallel::sync::{check_replica_consistency, sync_grads};
use bagualu_tensor::rng::Rng;
use bagualu_tensor::Tensor;

/// Config with loose capacity and no aux loss so local and distributed
/// routing agree exactly (capacity is computed over local token counts).
fn cfg() -> ModelConfig {
    ModelConfig {
        vocab: 31,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_seq: 8,
        n_experts: 4,
        moe_every: 2,
        gate: GateKind::Top2,
        capacity_factor: 64.0,
        aux_weight: 0.0,
        router_groups: 0,
        rope: false,
        tie_embeddings: false,
    }
}

fn global_batch(
    cfg: &ModelConfig,
    nranks: usize,
    per_rank: usize,
    seq: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = Rng::seed_from(99);
    let n = nranks * per_rank * seq;
    let tokens: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    let targets: Vec<usize> = (0..n).map(|_| rng.below(cfg.vocab)).collect();
    (tokens, targets)
}

fn rank_shard(all: &[usize], rank: usize, per_rank: usize, seq: usize) -> Vec<usize> {
    let lo = rank * per_rank * seq;
    all[lo..lo + per_rank * seq].to_vec()
}

#[test]
fn forward_matches_local_model() {
    let cfg = cfg();
    let (nranks, per_rank, seq) = (2usize, 2usize, 4usize);
    let (tokens, _) = global_batch(&cfg, nranks, per_rank, seq);

    // Oracle: single model over the whole batch.
    let mut rng = Rng::seed_from(7);
    let mut local = Transformer::new(cfg, &mut rng);
    let expect = local.forward(&tokens, nranks * per_rank, seq);

    let tokens_ref = &tokens;
    let local_ref = &local;
    run_ranks(nranks, move |c| {
        let mut dist = DistTransformer::from_local(local_ref, c.rank(), nranks, A2aKind::Pairwise);
        let shard = rank_shard(tokens_ref, c.rank(), per_rank, seq);
        let logits = dist.forward(&shard, per_rank, seq, &c);
        let expect_shard =
            expect.slice_rows(c.rank() * per_rank * seq, (c.rank() + 1) * per_rank * seq);
        assert!(
            logits.approx_eq(&expect_shard, 1e-4),
            "rank {} logits diverge from local oracle",
            c.rank()
        );
    });
}

#[test]
fn hierarchical_a2a_matches_pairwise() {
    let cfg = cfg();
    let (nranks, per_rank, seq) = (4usize, 1usize, 4usize);
    let (tokens, _) = global_batch(&cfg, nranks, per_rank, seq);

    let mut rng = Rng::seed_from(8);
    let local = Transformer::new(cfg, &mut rng);
    let tokens_ref = &tokens;
    let local_ref = &local;

    let flat = run_ranks_map(nranks, move |c| {
        let mut dist = DistTransformer::from_local(local_ref, c.rank(), nranks, A2aKind::Pairwise);
        let shard = rank_shard(tokens_ref, c.rank(), per_rank, seq);
        dist.forward(&shard, per_rank, seq, &c).into_vec()
    });
    let hier = run_ranks_map(nranks, move |c| {
        let mut dist = DistTransformer::from_local(
            local_ref,
            c.rank(),
            nranks,
            A2aKind::Hierarchical { supernode_size: 2 },
        );
        let shard = rank_shard(tokens_ref, c.rank(), per_rank, seq);
        dist.forward(&shard, per_rank, seq, &c).into_vec()
    });
    for (a, b) in flat.iter().zip(&hier) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "a2a algorithms disagree: {x} vs {y}");
        }
    }
}

#[test]
fn synced_gradients_match_local_model() {
    let cfg = cfg();
    let (nranks, per_rank, seq) = (2usize, 2usize, 4usize);
    let (tokens, targets) = global_batch(&cfg, nranks, per_rank, seq);

    // Oracle gradients over the global batch.
    let mut rng = Rng::seed_from(9);
    let mut local = Transformer::new(cfg, &mut rng);
    local.train_batch(&tokens, &targets, nranks * per_rank, seq);
    let mut oracle: Vec<(String, Tensor)> = Vec::new();
    local.visit_params(&mut |p| oracle.push((p.name.clone(), p.grad.clone())));
    let oracle_map: std::collections::HashMap<String, Tensor> = oracle.into_iter().collect();

    let (tokens_ref, targets_ref, local_ref, oracle_ref) = (&tokens, &targets, &local, &oracle_map);
    run_ranks(nranks, move |c| {
        let mut dist = DistTransformer::from_local(local_ref, c.rank(), nranks, A2aKind::Pairwise);
        let tok = rank_shard(tokens_ref, c.rank(), per_rank, seq);
        let tgt = rank_shard(targets_ref, c.rank(), per_rank, seq);
        dist.train_batch(&tok, &tgt, per_rank, seq, &c);
        sync_grads(&mut dist, &c);

        // Every parameter this rank holds must now carry the oracle's
        // global-batch gradient.
        dist.visit_params(&mut |p| {
            let want = &oracle_ref[&p.name];
            let max_diff = p
                .grad
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                p.grad.approx_eq(want, 5e-3),
                "rank {}: grad mismatch for {} (|Δ|max = {max_diff}, ‖want‖ = {})",
                c.rank(),
                p.name,
                want.norm()
            );
        });
    });
}

#[test]
fn multi_step_training_keeps_replicas_consistent_and_learns() {
    let cfg = cfg();
    let (nranks, per_rank, seq) = (4usize, 1usize, 8usize);
    let (tokens, targets) = global_batch(&cfg, nranks, per_rank, seq);
    let (tokens_ref, targets_ref) = (&tokens, &targets);

    let losses = run_ranks_map(nranks, move |c| {
        let mut dist = DistTransformer::new(cfg, 1234, c.rank(), nranks, A2aKind::Pairwise);
        let tok = rank_shard(tokens_ref, c.rank(), per_rank, seq);
        let tgt = rank_shard(targets_ref, c.rank(), per_rank, seq);
        let mut first = 0.0f32;
        let mut last = 0.0f32;
        for step in 0..25 {
            let stats = dist.train_batch(&tok, &tgt, per_rank, seq, &c);
            sync_grads(&mut dist, &c);
            // Plain SGD, identical on every rank for dense params.
            dist.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.5, &g);
            });
            dist.zero_grad();
            if step == 0 {
                first = stats.ce_loss;
            }
            last = stats.ce_loss;
        }
        let divergence = check_replica_consistency(&mut dist, &c);
        assert!(divergence < 1e-4, "replicas diverged by {divergence}");
        (first, last)
    });

    // Every rank's loss must drop substantially on its memorizable batch.
    for (rank, (first, last)) in losses.iter().enumerate() {
        assert!(
            last < &(first * 0.7),
            "rank {rank} did not learn: {first} -> {last}"
        );
    }
}

#[test]
fn expert_shards_partition_the_expert_set() {
    let cfg = cfg();
    let mut rng = Rng::seed_from(11);
    let local = Transformer::new(cfg, &mut rng);
    let total: usize = (0..2)
        .map(|r| {
            let dist = DistTransformer::from_local(&local, r, 2, A2aKind::Pairwise);
            dist.local_experts_per_block()
        })
        .sum();
    assert_eq!(total, cfg.n_experts);
}

#[test]
fn dense_param_order_is_rank_invariant() {
    let cfg = cfg();
    let mut rng = Rng::seed_from(12);
    let local = Transformer::new(cfg, &mut rng);
    let names: Vec<Vec<String>> = (0..3)
        .map(|r| {
            let mut dist = DistTransformer::from_local(&local, r, 3, A2aKind::Pairwise);
            let mut v = Vec::new();
            dist.visit_dense_params(&mut |p| v.push(p.name.clone()));
            v
        })
        .collect();
    assert_eq!(names[0], names[1]);
    assert_eq!(names[1], names[2]);
}
