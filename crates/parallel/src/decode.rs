//! Batched expert-parallel decode: one continuous-batching step over a
//! [`DistTransformer`].
//!
//! Training runs `[batch·seq, d]` forwards; serving runs *decode steps*: a
//! batch of single positions, one per in-flight sequence, each attending to
//! its own KV history. [`decode_step`] is that forward. Three properties
//! make it the serving workhorse:
//!
//! * **Row-wise purity.** Embedding lookup, LayerNorm, the FFN/expert
//!   GEMMs, the LM head, and dropless inference routing
//!   (`Gate::route_infer`) are all per-row operations, and attention runs
//!   per sequence against that sequence's own history. Adding or removing
//!   rows (sequences joining or leaving the batch) therefore cannot change
//!   any other row's bits — the invariant that makes continuous batching
//!   safe.
//! * **Collective alignment.** Each call runs exactly one
//!   `DistMoELayer::forward_infer` per MoE block, whatever the local row
//!   count — ranks with *zero* active sequences pass an empty batch and
//!   still join every dispatch/combine exchange, so expert parallelism
//!   never deadlocks under skewed load.
//! * **Store independence.** KV history is read through the
//!   [`KvStore`] trait, so the growable [`KvCache`] and the paged
//!   block-pool store of `bagualu-serve` produce identical bits.
//!
//! The KV history of a whole batch is abstracted as a [`KvProvider`]:
//! `decode_step` asks it for the store of (sequence, layer) pairs as it
//! walks the blocks. [`VecKvBatch`] is the naive reference provider.

use crate::model_dist::{DistFfn, DistTransformer};
use bagualu_comm::shm::Communicator;
use bagualu_model::attention::{KvCache, KvStore};
use bagualu_tensor::Tensor;

/// Source of per-(sequence, layer) KV stores for a decode batch.
///
/// `decode_step` calls [`with_store`](Self::with_store) once per row per
/// block, passing the absolute position the row is about to occupy; the
/// provider must hand over a store currently holding exactly `pos`
/// positions (the attention kernel appends position `pos` to it).
pub trait KvProvider {
    /// Run `f` against the KV store of sequence `seq` at layer `layer`,
    /// which holds exactly `pos` cached positions, and return its result.
    fn with_store(
        &mut self,
        seq: usize,
        layer: usize,
        pos: usize,
        f: &mut dyn FnMut(&mut dyn KvStore) -> Tensor,
    ) -> Tensor;
}

/// The reference [`KvProvider`]: one growable [`KvCache`] per
/// (sequence, layer). Used by tests as the oracle the paged pool of
/// `bagualu-serve` is pinned against.
#[derive(Debug, Clone)]
pub struct VecKvBatch {
    d_model: usize,
    n_layers: usize,
    caches: Vec<Vec<KvCache>>,
}

impl VecKvBatch {
    /// An empty provider for sequences of a model with `n_layers` blocks of
    /// width `d_model`.
    pub fn new(d_model: usize, n_layers: usize) -> VecKvBatch {
        VecKvBatch {
            d_model,
            n_layers,
            caches: Vec::new(),
        }
    }

    /// Register a new sequence; returns its provider id.
    pub fn add_seq(&mut self) -> usize {
        self.caches.push(
            (0..self.n_layers)
                .map(|_| KvCache::new(self.d_model))
                .collect(),
        );
        self.caches.len() - 1
    }

    /// Cached positions of sequence `seq` (layer 0's view).
    pub fn seq_len(&self, seq: usize) -> usize {
        self.caches[seq][0].len()
    }
}

impl KvProvider for VecKvBatch {
    fn with_store(
        &mut self,
        seq: usize,
        layer: usize,
        pos: usize,
        f: &mut dyn FnMut(&mut dyn KvStore) -> Tensor,
    ) -> Tensor {
        let store = &mut self.caches[seq][layer];
        assert_eq!(
            KvStore::len(store),
            pos,
            "sequence {seq} layer {layer}: store holds {} positions, row expects {pos}",
            KvStore::len(store)
        );
        f(store)
    }
}

/// One batched decode step over `tokens[i]` at absolute `positions[i]` for
/// provider sequence `seqs[i]`. Returns `[n, vocab]` logits, one row per
/// input row. Collective: every rank must call it in the same program
/// position each step, with `n = 0` when it has no active rows.
///
/// Rows are processed in order; a sequence may contribute several
/// *consecutive* rows at consecutive positions (chunked prefill), each
/// appended to its KV history before the next is read. The math per row is
/// exactly `Transformer::generate_cached`'s per-step math — LayerNorm, the
/// attention kernel, residuals, FFN, final norm, head — so single-rank
/// decode through this function is bit-identical to the local oracle, and
/// (because f32 addition of the ≤ 2 expert contributions per token is
/// commutative) any rank count produces the same bits as one rank.
pub fn decode_step<C: Communicator>(
    model: &mut DistTransformer,
    tokens: &[usize],
    positions: &[usize],
    seqs: &[usize],
    kv: &mut dyn KvProvider,
    comm: &C,
) -> Tensor {
    let n = tokens.len();
    assert_eq!(positions.len(), n, "one position per token row");
    assert_eq!(seqs.len(), n, "one sequence id per token row");
    for &p in positions {
        assert!(
            p < model.cfg.max_seq,
            "absolute position {p} exceeds max_seq {}",
            model.cfg.max_seq
        );
    }
    let d = model.cfg.d_model;

    let mut x = model.tok.forward(tokens);
    if !model.cfg.rope {
        x.add_assign(&model.pos.forward(positions));
    }
    for (li, b) in model.blocks.iter_mut().enumerate() {
        let a = b.ln1.forward(&x);
        // Per-row incremental attention against the row's own KV history.
        let mut att = Tensor::zeros(&[n, d]);
        for i in 0..n {
            let row = a.slice_rows(i, i + 1);
            let attn = &mut b.attn;
            let out = kv.with_store(seqs[i], li, positions[i], &mut |store| {
                attn.forward_incremental_store(&row, store)
            });
            att.row_mut(i).copy_from_slice(out.row(0));
        }
        let mut h = x.clone();
        h.add_assign(&att);
        let f = b.ln2.forward(&h);
        let f = match &mut b.ffn {
            DistFfn::Dense(ffn) => ffn.forward(&f),
            DistFfn::MoE(moe) => moe.forward_infer(&f, comm),
        };
        x = h;
        x.add_assign(&f);
    }
    let xf = model.ln_f.forward(&x);
    let logits = model.head.forward(&xf);
    model.head.clear_cache();
    logits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moe_dist::A2aKind;
    use bagualu_comm::harness::run_ranks_map;
    use bagualu_model::config::ModelConfig;
    use bagualu_model::transformer::Transformer;
    use bagualu_tensor::rng::Rng;

    /// Greedy KV-cached generation driven through `decode_step`, one
    /// position per step.
    fn generate_via_decode_step<C: Communicator>(
        model: &mut DistTransformer,
        prompt: &[usize],
        n: usize,
        comm: &C,
    ) -> Vec<usize> {
        let mut kv = VecKvBatch::new(model.cfg.d_model, model.blocks.len());
        let s = kv.add_seq();
        let mut seq = prompt.to_vec();
        let total = prompt.len() + n;
        for pos in 0..total - 1 {
            let logits = decode_step(model, &[seq[pos]], &[pos], &[s], &mut kv, comm);
            if pos + 1 >= prompt.len() {
                seq.push(logits.argmax_rows()[0]);
            }
        }
        seq
    }

    #[test]
    fn single_rank_decode_matches_generate_cached() {
        let cfg = ModelConfig::tiny(); // Top2 MoE every other block
        let mut rng = Rng::seed_from(510);
        let mut local = Transformer::new(cfg, &mut rng);
        let expected = local.generate_cached(&[3, 7, 1], 8);

        let got = run_ranks_map(1, move |comm| {
            let mut rng = Rng::seed_from(510);
            let local = Transformer::new(cfg, &mut rng);
            let mut dist = DistTransformer::from_local(&local, 0, 1, A2aKind::Pairwise);
            generate_via_decode_step(&mut dist, &[3, 7, 1], 8, &comm)
        });
        assert_eq!(got[0], expected, "decode_step diverged from the oracle");
    }

    #[test]
    fn distributed_decode_matches_single_rank() {
        let cfg = ModelConfig::tiny();
        let prompt = [5usize, 2, 9];
        let single = run_ranks_map(1, move |comm| {
            let mut dist = DistTransformer::new(cfg, 511, 0, 1, A2aKind::Pairwise);
            generate_via_decode_step(&mut dist, &prompt, 8, &comm)
        });
        // 4 ranks: the sequence lives on rank 0; other ranks join every
        // step with empty batches.
        let multi = run_ranks_map(4, move |comm| {
            let rank = comm.rank();
            let mut dist = DistTransformer::new(
                cfg,
                511,
                rank,
                4,
                A2aKind::Hierarchical { supernode_size: 2 },
            );
            let mut kv = VecKvBatch::new(cfg.d_model, cfg.n_layers);
            let s = kv.add_seq();
            let mut seq = prompt.to_vec();
            let total = prompt.len() + 8;
            for pos in 0..total - 1 {
                let logits = if rank == 0 {
                    decode_step(&mut dist, &[seq[pos]], &[pos], &[s], &mut kv, &comm)
                } else {
                    decode_step(&mut dist, &[], &[], &[], &mut kv, &comm)
                };
                if rank == 0 && pos + 1 >= prompt.len() {
                    seq.push(logits.argmax_rows()[0]);
                }
            }
            seq
        });
        assert_eq!(multi[0], single[0], "distributed decode diverged");
    }

    #[test]
    fn batched_rows_are_bit_identical_to_solo_rows() {
        let cfg = ModelConfig::tiny();
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[9, 4], &[7, 7, 7, 7]];
        run_ranks_map(1, move |comm| {
            // Solo: each sequence decoded alone.
            let mut solo_logits: Vec<Vec<Vec<u32>>> = Vec::new();
            for p in prompts {
                let mut m = DistTransformer::new(cfg, 512, 0, 1, A2aKind::Pairwise);
                let mut kv = VecKvBatch::new(cfg.d_model, cfg.n_layers);
                let s = kv.add_seq();
                let mut rows = Vec::new();
                for (pos, &t) in p.iter().enumerate() {
                    let lg = decode_step(&mut m, &[t], &[pos], &[s], &mut kv, &comm);
                    rows.push(lg.as_slice().iter().map(|v| v.to_bits()).collect());
                }
                solo_logits.push(rows);
            }
            // Batched: all three advance together; shorter ones drop out of
            // the batch when exhausted (continuous-batching shape).
            let mut m = DistTransformer::new(cfg, 512, 0, 1, A2aKind::Pairwise);
            let mut kv = VecKvBatch::new(cfg.d_model, cfg.n_layers);
            let ids: Vec<usize> = prompts.iter().map(|_| kv.add_seq()).collect();
            let max_len = prompts.iter().map(|p| p.len()).max().unwrap();
            for pos in 0..max_len {
                let mut tokens = Vec::new();
                let mut positions = Vec::new();
                let mut seqs = Vec::new();
                let mut live = Vec::new();
                for (i, p) in prompts.iter().enumerate() {
                    if pos < p.len() {
                        tokens.push(p[pos]);
                        positions.push(pos);
                        seqs.push(ids[i]);
                        live.push(i);
                    }
                }
                let lg = decode_step(&mut m, &tokens, &positions, &seqs, &mut kv, &comm);
                for (row, &i) in live.iter().enumerate() {
                    let got: Vec<u32> = lg.row(row).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(
                        got, solo_logits[i][pos],
                        "sequence {i} position {pos}: batched bits diverged"
                    );
                }
            }
        });
    }
}
