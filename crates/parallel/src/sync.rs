//! Gradient synchronization for MoDa parallelism.
//!
//! After each rank's local backward:
//!
//! * **dense gradients** (replicated parameters) are averaged with a ring
//!   all-reduce — standard data parallelism;
//! * **expert gradients** are *not* communicated (each expert lives on one
//!   rank only) but are rescaled by `1/R`, because each rank's loss is the
//!   mean over its `1/R`-sized micro-batch while an expert accumulates
//!   contributions from all ranks' tokens.
//!
//! With both rules, an `R`-rank step is numerically equivalent to a
//! single-rank step over the concatenated global batch (up to all-reduce
//! summation order) — the property the integration tests pin down.

use crate::model_dist::DistTransformer;
use bagualu_comm::collectives::{allreduce, ReduceOp};
use bagualu_comm::shm::Communicator;

/// Synchronize gradients across the data-parallel group. Returns the number
/// of dense gradient scalars reduced (for communication-volume accounting).
pub fn sync_grads<C: Communicator>(model: &mut DistTransformer, comm: &C) -> usize {
    let r = comm.size() as f32;

    // Flatten dense grads in the deterministic visit order.
    let mut flat = Vec::new();
    model.visit_dense_params(&mut |p| flat.extend_from_slice(p.grad.as_slice()));
    let count = flat.len();

    let mut reduced = allreduce(comm, flat, ReduceOp::Sum);
    let inv = 1.0 / r;
    for g in &mut reduced {
        *g *= inv;
    }

    let mut off = 0usize;
    model.visit_dense_params(&mut |p| {
        let n = p.grad.len();
        p.grad.as_mut_slice().copy_from_slice(&reduced[off..off + n]);
        off += n;
    });

    // Experts: rescale only.
    model.visit_expert_params(&mut |p| p.grad.scale(1.0 / r));
    count
}

/// Debug/validation helper: confirm every rank holds identical dense
/// parameter *values* (they must, since updates are deterministic on
/// identical gradients). Returns the maximum absolute divergence from the
/// rank-0 replica.
pub fn check_replica_consistency<C: Communicator>(
    model: &mut DistTransformer,
    comm: &C,
) -> f32 {
    let mut flat = Vec::new();
    model.visit_dense_params(&mut |p| flat.extend_from_slice(p.value.as_slice()));
    // Max-reduce |x_r − x_0|: broadcast rank 0's copy, compare locally, then
    // max-allreduce the scalar.
    let reference = bagualu_comm::collectives::broadcast(
        comm,
        0,
        (comm.rank() == 0).then(|| flat.clone()),
    );
    let local_max = flat
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let out = allreduce(comm, vec![local_max], ReduceOp::Max);
    out[0]
}
